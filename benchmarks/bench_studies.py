"""Benchmarks for the scaling, strategy and learning studies."""

from repro.experiments import (
    format_learning_eval,
    format_scaling,
    format_strategy_eval,
    run_learning_eval,
    run_scaling,
    run_strategy_eval,
)


class TestScaling:
    def test_scaling_sweep(self, benchmark, emit):
        rows = benchmark.pedantic(
            run_scaling, kwargs={"stage_counts": (2, 4, 6, 8)}, rounds=2, iterations=1
        )
        assert all(r.fuzzy_detected for r in rows)
        emit("scaling", format_scaling(rows))


class TestStrategy:
    def test_sequential_isolation(self, benchmark, emit):
        from repro.experiments.strategy_eval import DEFAULT_FAULTS

        outcomes = benchmark.pedantic(
            run_strategy_eval,
            kwargs={"faults": DEFAULT_FAULTS[:3]},
            rounds=1,
            iterations=1,
        )
        assert outcomes
        emit("strategy", format_strategy_eval(outcomes))


class TestLearning:
    def test_episode_replay(self, benchmark, emit):
        rows = benchmark.pedantic(run_learning_eval, rounds=2, iterations=1)
        assert rows
        emit("learning", format_learning_eval(rows))


class TestMultiFault:
    def test_double_fault_candidates(self, benchmark, emit):
        from repro.experiments import format_multifault, run_multifault

        outcomes = benchmark.pedantic(run_multifault, rounds=2, iterations=1)
        by_size = {o.max_size: o for o in outcomes}
        assert by_size[2].pair_found
        emit("multifault", format_multifault(outcomes))


class TestDynamicMode:
    def test_step_response_diagnosis(self, benchmark, emit):
        from repro.experiments import format_dynamic_eval, run_dynamic_eval

        rows = benchmark.pedantic(run_dynamic_eval, rounds=2, iterations=1)
        assert all(r.dynamic_detects for r in rows)
        emit("dynamic", format_dynamic_eval(rows))


class TestStrategyLadder:
    def test_ladder_isolation(self, benchmark, emit):
        from repro.experiments import format_strategy_eval, run_strategy_eval_ladder

        outcomes = benchmark.pedantic(run_strategy_eval_ladder, rounds=1, iterations=1)
        planners = {o.planner for o in outcomes}
        assert planners == {"fuzzy-entropy", "gde-probabilistic", "random"}
        emit("strategy-ladder", format_strategy_eval(outcomes))


class TestDictionary:
    def test_dictionary_vs_flames(self, benchmark, emit):
        from repro.experiments import format_dictionary_eval, run_dictionary_eval

        rows = benchmark.pedantic(run_dictionary_eval, rounds=1, iterations=1)
        assert any(not r.dictionary_correct and r.flames_covers for r in rows)
        emit("dictionary", format_dictionary_eval(rows))
