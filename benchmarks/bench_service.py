"""Fleet-service throughput benchmarks.

A repair-shop workload on the paper's three-stage amplifier: N seeded
faulty units (a few distinct defects, each recurring — the common case)
pushed through the :class:`~repro.service.FleetEngine`.  Reported:

* worker scaling — wall-clock and units/s at workers in {1, 4, 8}
  over a process pool (diagnosis is pure CPU);
* cache-hit speedup — a cold pass (every distinct defect pays one full
  fuzzy-propagation pass, repeats replay in-batch) against a warm
  second pass (everything replays from the content-addressed cache).

The worker-scaling *assertion* (workers=4 beats workers=1) needs real
parallel hardware; on a single-CPU box a CPU-bound fleet cannot speed
up, so the check is skipped there while the table is still emitted.
"""

import os
import time

import pytest

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.service import DiagnosisJob, FleetEngine

PROBES = ("vs", "v2", "v1")

#: The shop's recurring defects: distinct faults on the golden design.
FAULTS = [
    Fault(FaultKind.SHORT, "R2"),
    Fault(FaultKind.OPEN, "R3"),
    Fault(FaultKind.PARAM, "R2", parameter="resistance", value=12.18e3),
    Fault(FaultKind.PARAM, "T2", parameter="beta", value=194.0),
    Fault(FaultKind.PARAM, "R4", parameter="resistance", value=3.6e3),
    Fault(FaultKind.PARAM, "R6", parameter="resistance", value=1.5e3),
    Fault(FaultKind.SHORT, "R5"),
    Fault(FaultKind.PARAM, "R1", parameter="resistance", value=240e3),
]


def _seeded_fleet(units: int, distinct: int = len(FAULTS)):
    """``units`` faulty units drawn round-robin from ``distinct`` defects."""
    golden = three_stage_amplifier()
    benches = []
    for fault in FAULTS[:distinct]:
        op = DCSolver(apply_fault(golden, fault)).solve()
        benches.append(probe_all(op, PROBES, imprecision=0.02))
    return [
        DiagnosisJob.build(f"unit-{i:03d}", golden, benches[i % len(benches)])
        for i in range(units)
    ]


def _distinct_fleet(units: int):
    """All-distinct content: R2 drifts a little differently per unit."""
    golden = three_stage_amplifier()
    jobs = []
    for i in range(units):
        fault = Fault(
            FaultKind.PARAM, "R2", parameter="resistance", value=12e3 * (1.05 + 0.01 * i)
        )
        op = DCSolver(apply_fault(golden, fault)).solve()
        jobs.append(
            DiagnosisJob.build(f"unit-{i:03d}", golden, probe_all(op, PROBES, 0.02))
        )
    return jobs


def _timed_batch(engine: FleetEngine, jobs):
    start = time.perf_counter()
    report = engine.run_batch(jobs)
    return time.perf_counter() - start, report


class TestWorkerScaling:
    UNITS = 16

    def test_parallel_beats_serial(self, emit):
        jobs = _distinct_fleet(self.UNITS)
        times = {}
        for workers in (1, 4, 8):
            engine = FleetEngine(workers=workers, executor="process")
            times[workers], report = _timed_batch(engine, jobs)
            assert all(r.ok for r in report.results)
        lines = [f"fleet worker scaling ({self.UNITS} distinct units, process pool)"]
        for workers, elapsed in times.items():
            lines.append(
                f"  workers={workers}: {elapsed:6.2f}s  "
                f"{self.UNITS / elapsed:6.1f} units/s  "
                f"speedup x{times[1] / elapsed:.2f}"
            )
        emit("service-scaling", "\n".join(lines))
        cpus = os.cpu_count() or 1
        if cpus < 2:
            pytest.skip(
                f"only {cpus} CPU available: a CPU-bound fleet cannot "
                "parallelise; scaling table emitted above"
            )
        assert times[4] < times[1]


class TestCacheSpeedup:
    UNITS = 24
    DISTINCT = 8

    def test_warm_pass_beats_cold(self, emit):
        jobs = _seeded_fleet(self.UNITS, self.DISTINCT)
        engine = FleetEngine(workers=4, executor="process")
        cold, cold_report = _timed_batch(engine, jobs)
        warm, warm_report = _timed_batch(engine, jobs)

        # Cold pass: one propagation per distinct defect, repeats replay.
        assert engine.telemetry.counter("propagation_passes") == self.DISTINCT
        assert cold_report.cache_hits == self.UNITS - self.DISTINCT
        # Warm pass: pure cache.
        assert all(r.cache_hit for r in warm_report.results)
        assert engine.cache.hits > 0
        assert warm < cold

        emit(
            "service-cache",
            "\n".join(
                [
                    f"fleet cache speedup ({self.UNITS} units, "
                    f"{self.DISTINCT} distinct defects, workers=4)",
                    f"  cold pass: {cold:6.2f}s "
                    f"({self.DISTINCT} propagation passes, "
                    f"{cold_report.cache_hits} in-batch replays)",
                    f"  warm pass: {warm:6.4f}s "
                    f"({warm_report.cache_hits} cache hits)  "
                    f"speedup x{cold / warm:.0f}",
                ]
            ),
        )


class TestReplayThroughput:
    def test_warm_replay_rate(self, benchmark):
        """Steady-state service rate once the fleet content is cached."""
        jobs = _seeded_fleet(12, 4)
        engine = FleetEngine(workers=1, executor="serial")
        engine.run_batch(jobs)  # warm the cache

        report = benchmark(engine.run_batch, jobs)
        assert all(r.cache_hit for r in report.results)
