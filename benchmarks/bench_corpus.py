"""Corpus accuracy/latency benchmark and the committed floor gate.

The pytest leg runs a small fixed corpus through both kernels and
regenerates the EXPERIMENTS.md accuracy table (rank-of-true-fault and
latency percentiles per scenario class).  The module entry point runs
the same recipe the CI smoke gate uses and, under
``REPRO_BENCH_STRICT=1``, enforces the committed accuracy floor:

    REPRO_BENCH_STRICT=1 PYTHONPATH=src python -m benchmarks.bench_corpus

CI keeps the cheap leg in the test matrix (`bench_corpus.py` via
pytest) and the floor gate in `scripts/corpus_smoke.py`; the strict
entry point is for paper-scale local runs (``--seed 7``-sized corpora).
"""

import json
import os
from pathlib import Path

from repro.corpus import check_floor, generate_corpus, run_corpus

FLOOR_PATH = Path(__file__).resolve().parent / "corpus_floor.json"

#: The CI smoke recipe — small enough for the bench leg, big enough to
#: cover every (class, family) pair at least once.
SEED = 101
PER_CLASS = 8


def format_table(report):
    lines = []
    stats = report.stats()
    for kernel in sorted(stats):
        lines.append(f"kernel {kernel}:")
        lines.append(f"  {'class':<20}{'n':>5}{'top1':>7}{'top3':>7}{'top5':>7}"
                     f"{'mrank':>7}{'lowdeg':>8}{'p50ms':>8}{'p95ms':>8}")
        classes = stats[kernel]
        ordered = sorted(c for c in classes if c != "overall") + ["overall"]
        for name in ordered:
            acc = classes[name].accuracy_dict()
            lat = classes[name].latency_dict()
            mean_rank = acc["mean_rank"]
            lines.append(
                f"  {name:<20}{acc['n']:>5}"
                f"{acc.get('top1', 0.0):>7.3f}{acc.get('top3', 0.0):>7.3f}"
                f"{acc.get('top5', 0.0):>7.3f}"
                f"{(f'{mean_rank:.2f}' if mean_rank is not None else '-'):>7}"
                f"{acc['low_degree_rate']:>8.3f}"
                f"{lat['p50_ms']:>8.1f}{lat['p95_ms']:>8.1f}"
            )
    return "\n".join(lines)


class TestCorpusAccuracy:
    def test_accuracy_table_and_floor(self, emit):
        # Smaller than the smoke gate: the bench leg shares a CI job
        # with every other benchmark, so it covers each class once per
        # family pair and leaves the full floor run to corpus_smoke.py.
        manifest = generate_corpus(SEED, 4)
        report = run_corpus(manifest, workers=2, executor="thread")
        emit("corpus-accuracy", format_table(report))

        table = report.to_dict()["kernels"]
        assert table["reference"] == table["fast"], "kernel accuracy tables diverge"
        for kernel, classes in table.items():
            assert classes["overall"]["accuracy"]["failures"] == 0
            assert classes["intermittent"]["accuracy"]["low_degree_rate"] == 1.0
            assert classes["tolerance-stackup"]["accuracy"]["top1"] >= 0.75, (
                f"{kernel}: stackup scenarios indicting certain culprits"
            )


def main():  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_corpus",
        description="corpus accuracy/latency benchmark (CI smoke recipe)",
    )
    parser.add_argument(
        "--seed", type=int, default=SEED, help=f"corpus seed (default {SEED})"
    )
    parser.add_argument(
        "--per-class", dest="per_class", type=int, default=PER_CLASS,
        help=f"scenarios per class (default {PER_CLASS})",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker pool width (default 4)"
    )
    parser.add_argument(
        "--json-out", default="",
        help="also write the full report as JSON here (e.g. BENCH_corpus.json)",
    )
    args = parser.parse_args()
    manifest = generate_corpus(args.seed, args.per_class)
    report = run_corpus(manifest, workers=args.workers)
    print(format_table(report))
    if args.json_out:
        payload = {
            "benchmark": "corpus",
            "seed": args.seed,
            "per_class": args.per_class,
            "report": report.to_dict(),
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    if os.environ.get("REPRO_BENCH_STRICT"):
        floor = json.loads(FLOOR_PATH.read_text())
        breaches = check_floor(report, floor)
        for breach in breaches:
            print(f"FLOOR BREACH: {breach}")
        assert not breaches, f"{len(breaches)} floor breach(es)"
        print("strict gate ok: committed accuracy floor holds on both kernels")


if __name__ == "__main__":  # pragma: no cover
    main()
