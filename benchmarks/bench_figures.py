"""Benchmarks regenerating the paper's figures 2, 5 and 7.

Each benchmark times one driver end-to-end and prints the reproduced
table (run with ``-s`` to see them).
"""

from repro.experiments import (
    format_figure2,
    format_figure5,
    format_figure7,
    run_figure2,
    run_figure2_masking,
    run_figure5,
    run_figure7,
)


class TestFigure2:
    def test_propagation_table(self, benchmark, emit):
        rows = benchmark(run_figure2)
        assert len(rows) == 3
        emit("figure2", format_figure2())

    def test_masking_demonstration(self, benchmark):
        outcomes = benchmark(run_figure2_masking)
        crisp, fuzzy = outcomes
        assert crisp.fault_masked and not fuzzy.fault_masked


class TestFigure5:
    def test_diode_example(self, benchmark, emit):
        result = benchmark(run_figure5)
        assert result.paper_nogoods_found
        emit("figure5", format_figure5())


class TestFigure7:
    def test_all_defect_scenarios(self, benchmark, emit):
        rows = benchmark.pedantic(run_figure7, rounds=3, iterations=1)
        assert all(row.detected for row in rows)
        emit("figure7", format_figure7(rows))

    def test_single_hard_fault_scenario(self, benchmark):
        from repro.experiments.figure7 import FIGURE7_SCENARIOS

        rows = benchmark.pedantic(
            run_figure7,
            args=([FIGURE7_SCENARIOS[0]],),
            rounds=3,
            iterations=1,
        )
        assert rows[0].stage_localised
