"""Ablation benchmarks over the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    format_ablation,
    run_entropy_form_ablation,
    run_granularity_ablation,
    run_threshold_ablation,
    run_tnorm_ablation,
)


class TestAblations:
    def test_conflict_threshold_sweep(self, benchmark, emit):
        rows = benchmark.pedantic(
            run_threshold_ablation,
            kwargs={"thresholds": (0.05, 0.5)},
            rounds=1,
            iterations=1,
        )
        assert rows
        emit("ablations", format_ablation())

    def test_tnorm_sweep(self, benchmark):
        rows = benchmark.pedantic(run_tnorm_ablation, rounds=1, iterations=1)
        assert all(detected == 5 for _, detected, _ in rows)

    def test_entropy_form(self, benchmark):
        rows = benchmark(run_entropy_form_ablation)
        assert len(rows) == 2

    def test_granularity(self, benchmark):
        rows = benchmark.pedantic(
            run_granularity_ablation, kwargs={"granularities": (3, 5, 7)},
            rounds=1, iterations=1,
        )
        assert len(rows) == 3


class TestEnvelopeValidation:
    def test_envelope_vs_monte_carlo(self, benchmark):
        from repro.experiments import run_envelope_validation

        rows = benchmark.pedantic(run_envelope_validation, rounds=1, iterations=1)
        assert all(cov == 1.0 for _, _, _, _, cov in rows)
