"""Cluster-mode throughput benchmarks: the replica-scaling sweep.

A real :class:`~repro.cluster.ClusterGateway` fronting a subprocess
:class:`~repro.cluster.ReplicaManager` fleet (each replica its own
interpreter — its own GIL), driven through the gateway over real
sockets.  Reported:

* **req/s vs replica count** — warm-cache throughput at fixed client
  concurrency as the fleet grows 1 → 2 → 4 replicas (the EXPERIMENTS.md
  scaling table);
* **zero dropped** — every request answered 200 at every fleet size;
* **warm shards** — repeat content must hit its shard owner's cache.

Throughput *assertions* are lenient (zero dropped + correctness only):
the hosted CI runner may expose a single core, where extra replicas
cannot add CPU.  ``REPRO_BENCH_STRICT=1`` (module entry point) arms the
paper-claim assertion — ≥3x aggregate req/s going 1 → 4 replicas on
CPU-bound traffic — for multicore machines:

    REPRO_BENCH_STRICT=1 PYTHONPATH=src python -m benchmarks.bench_cluster
"""

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.circuit.spice import write_netlist
from repro.cluster import ClusterConfig, ClusterGateway
from repro.server import DiagnosisClient
from repro.service.jobs import measurement_to_dict

PROBES = ("vs", "v2", "v1")

FAULTS = [
    Fault(FaultKind.SHORT, "R2"),
    Fault(FaultKind.OPEN, "R3"),
    Fault(FaultKind.PARAM, "R2", parameter="resistance", value=12.18e3),
    Fault(FaultKind.PARAM, "R4", parameter="resistance", value=3.6e3),
    Fault(FaultKind.SHORT, "R5"),
    Fault(FaultKind.OPEN, "R1"),
]


def demo_specs(count: int, distinct: bool = False):
    """``count`` job specs over the demo amplifier.

    With ``distinct=True`` every spec gets a unique content hash (a
    per-index imprecision jitter) so each request is a *cold*,
    CPU-bound diagnosis — the workload where extra replicas can help.
    The default cycles six defects, so repeats hit warm shards.
    """
    golden = three_stage_amplifier()
    netlist = write_netlist(golden)
    ops = [DCSolver(apply_fault(golden, f)).solve() for f in FAULTS]
    specs = []
    for i in range(count):
        imprecision = 0.02 + (i * 1e-4 if distinct else 0.0)
        bench = probe_all(ops[i % len(ops)], PROBES, imprecision=imprecision)
        specs.append(
            {
                "unit": f"unit-{i:03d}",
                "netlist_text": netlist,
                "measurements": [measurement_to_dict(m) for m in bench],
            }
        )
    return specs


class ClusterHarness:
    """A gateway + subprocess replica fleet on a background thread."""

    def __init__(self, replicas: int, **overrides):
        options = dict(
            port=0,
            replicas=replicas,
            workers=2,
            queue_size=64,
            timeout=60.0,
            poll_interval=30.0,  # benchmarks drive traffic, not chaos
            gossip_interval=30.0,
            drain_grace=30.0,
        )
        options.update(overrides)
        self.gateway = ClusterGateway(ClusterConfig(**options))
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.gateway.serve())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 180
        while self.gateway.port is None and time.time() < deadline:
            time.sleep(0.05)
        assert self.gateway.port, "gateway did not bind"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.gateway.request_shutdown)
        self.thread.join(timeout=90)

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 120.0)
        kwargs.setdefault("retries", 4)
        kwargs.setdefault("backoff", 0.05)
        return DiagnosisClient(port=self.gateway.port, **kwargs)


def fire_concurrent(harness, specs, concurrency):
    """All specs through ``concurrency`` client threads; (wall, results)."""

    def one(spec):
        with harness.client() as client:
            return client.diagnose(spec)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        results = list(pool.map(one, specs))
    return time.perf_counter() - start, results


def run_replica_sweep(replica_counts=(1, 2, 4), requests=18, concurrency=8):
    """Cold-cache (CPU-bound) req/s as the fleet grows; (table, rates).

    Every request carries unique content, so nothing is a cache hit —
    throughput is bounded by diagnosis CPU, which is exactly what
    additional replica processes add (one GIL each).
    """
    specs = demo_specs(requests, distinct=True)
    lines = [
        f"cluster scaling ({requests} cold diagnoses, client concurrency "
        f"{concurrency}, 2 workers/replica)",
        f"  {'replicas':>8}  {'wall (s)':>9}  {'req/s':>7}  {'dropped':>7}",
    ]
    rates = {}
    for count in replica_counts:
        with ClusterHarness(count) as harness:
            wall, results = fire_concurrent(harness, specs, concurrency)
        dropped = [r for r in results if r.get("status") != "ok"]
        assert not dropped, f"{len(dropped)} dropped at {count} replica(s)"
        rates[count] = len(results) / wall
        lines.append(
            f"  {count:>8}  {wall:>9.3f}  {rates[count]:>7.1f}  {len(dropped):>7}"
        )
    base = min(replica_counts)
    for count in replica_counts:
        if count != base:
            lines.append(
                f"  speedup x{rates[count] / rates[base]:.2f} at {count} replicas "
                f"(vs {base})"
            )
    return "\n".join(lines), rates


def run_warm_shard_check(replicas=2):
    """Repeat content must land on its shard owner's warm cache."""
    specs = demo_specs(6)
    with ClusterHarness(replicas) as harness:
        fire_concurrent(harness, specs, 4)  # prime every shard
        wall, results = fire_concurrent(harness, specs, 4)
    hits = sum(1 for r in results if r.get("cache_hit"))
    lines = [
        f"cluster warm shards ({replicas} replicas, {len(specs)} distinct contents)",
        f"  repeat pass: {hits}/{len(results)} cache hits in {wall:.3f}s",
    ]
    return "\n".join(lines), hits, results


class TestClusterScaling:
    def test_sweep_zero_dropped(self, emit):
        # 1→2 replicas keeps CI wall-clock sane; the module entry point
        # runs the full 1→2→4 sweep with the strict scaling assertion.
        table, rates = run_replica_sweep(replica_counts=(1, 2), requests=12)
        emit("cluster-sweep", table)
        assert all(rate > 0 for rate in rates.values())

    def test_warm_shards_all_hit(self, emit):
        table, hits, results = run_warm_shard_check()
        emit("cluster-shards", table)
        # Sticky routing means the repeat pass is all cache hits —
        # the shard owner already computed every answer.
        assert hits == len(results)


def main():  # pragma: no cover - manual entry point
    table, rates = run_replica_sweep()
    print(table)
    if os.environ.get("REPRO_BENCH_STRICT"):
        scale = rates[max(rates)] / rates[min(rates)]
        assert scale >= 3.0, (
            f"aggregate throughput scaled only x{scale:.2f} from "
            f"{min(rates)} to {max(rates)} replicas (need >=3x)"
        )
        print(f"strict scaling ok: x{scale:.2f}")
    print()
    table, hits, results = run_warm_shard_check()
    print(table)
    assert hits == len(results), "repeat pass missed a warm shard"


if __name__ == "__main__":  # pragma: no cover
    main()
