"""Diagnosis-server throughput benchmarks.

The server-mode counterpart of ``bench_service.py``: a
:class:`~repro.server.DiagnosisServer` on an ephemeral port, driven
over real sockets by :class:`~repro.server.DiagnosisClient` threads.
Reported:

* **sustained concurrency** — 50 concurrent in-flight ``POST
  /v1/diagnose`` requests on the demo three-stage amplifier, zero
  dropped (every accepted request answered 200, none errored);
* **requests/sec vs concurrency** — warm-cache throughput at client
  concurrency 1/8/25/50;
* **cold vs warm cache** — the first diagnosis of a given content pays
  the full fuzzy-propagation pass; the repeat replays from the
  content-addressed cache and must be measurably faster.

Timing *assertions* are lenient (warm < cold only) so slow CI runners
emit the tables without flaking; run as a module for the tables alone:

    PYTHONPATH=src python -m benchmarks.bench_server
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.circuit.spice import write_netlist
from repro.server import DiagnosisClient, DiagnosisServer, ServerConfig
from repro.service.jobs import measurement_to_dict

PROBES = ("vs", "v2", "v1")

#: Recurring demo-circuit defects (a realistic warm-cache mix).
FAULTS = [
    Fault(FaultKind.SHORT, "R2"),
    Fault(FaultKind.OPEN, "R3"),
    Fault(FaultKind.PARAM, "R2", parameter="resistance", value=12.18e3),
    Fault(FaultKind.PARAM, "R4", parameter="resistance", value=3.6e3),
    Fault(FaultKind.SHORT, "R5"),
]


def demo_specs(count: int):
    """``count`` job specs drawn round-robin from the demo defects."""
    golden = three_stage_amplifier()
    netlist = write_netlist(golden)
    benches = []
    for fault in FAULTS:
        op = DCSolver(apply_fault(golden, fault)).solve()
        benches.append(probe_all(op, PROBES, imprecision=0.02))
    return [
        {
            "unit": f"unit-{i:03d}",
            "netlist_text": netlist,
            "measurements": [
                measurement_to_dict(m) for m in benches[i % len(benches)]
            ],
        }
        for i in range(count)
    ]


class ServerHarness:
    """A server on a background thread, for benchmarks and the smoke run."""

    def __init__(self, **overrides):
        options = dict(port=0, workers=4, queue_size=64, timeout=60.0)
        options.update(overrides)
        self.server = DiagnosisServer(ServerConfig(**options))
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.serve())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 10
        while self.server.port is None and time.time() < deadline:
            time.sleep(0.01)
        assert self.server.port, "server did not bind"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self.thread.join(timeout=30)

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 120.0)
        kwargs.setdefault("retries", 4)
        kwargs.setdefault("backoff", 0.05)
        return DiagnosisClient(port=self.server.port, **kwargs)


def fire_concurrent(harness, specs):
    """One request per spec, all in flight together; returns (wall, results)."""
    barrier = threading.Barrier(len(specs))

    def one(spec):
        with harness.client() as client:
            barrier.wait(timeout=60)
            return client.diagnose(spec)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        results = list(pool.map(one, specs))
    return time.perf_counter() - start, results


def run_sustained_concurrency(inflight: int = 50):
    """The acceptance drill: ``inflight`` concurrent diagnoses, zero dropped."""
    specs = demo_specs(inflight)
    with ServerHarness(workers=4, queue_size=max(64, inflight)) as harness:
        wall, results = fire_concurrent(harness, specs)
        depth = harness.server.admission.depth()
    dropped = [r for r in results if r.get("status") != "ok"]
    lines = [
        f"server sustained concurrency ({inflight} in-flight POST /v1/diagnose, "
        "workers=4)",
        f"  wall-clock: {wall:6.2f}s  ({inflight / wall:6.1f} req/s)",
        f"  ok: {len(results) - len(dropped)}/{len(results)}  dropped: {len(dropped)}",
        f"  peak active/waiting: {depth['peak_active']}/{depth['peak_waiting']}  "
        f"shed (503): {depth['rejected']}",
    ]
    return "\n".join(lines), results, dropped


def run_concurrency_sweep(levels=(1, 8, 25, 50)):
    """Warm-cache requests/sec at increasing client concurrency."""
    specs = demo_specs(max(levels))
    lines = ["server throughput vs concurrency (warm cache, workers=4)"]
    with ServerHarness(workers=4, queue_size=max(levels)) as harness:
        with harness.client() as warmup:
            for spec in demo_specs(len(FAULTS)):
                warmup.diagnose(spec)
        for level in levels:
            wall, results = fire_concurrent(harness, specs[:level])
            assert all(r["status"] == "ok" for r in results)
            lines.append(
                f"  concurrency={level:3d}: {wall:7.3f}s  {level / wall:7.1f} req/s"
            )
    return "\n".join(lines)


def run_cold_vs_warm():
    """First-touch latency vs cached repeat, through the full HTTP stack."""
    spec = demo_specs(1)[0]
    with ServerHarness() as harness:
        with harness.client() as client:
            start = time.perf_counter()
            cold_result = client.diagnose(spec)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            warm_result = client.diagnose(spec)
            warm = time.perf_counter() - start
    lines = [
        "server cold vs warm cache (same request repeated, full HTTP stack)",
        f"  cold: {cold * 1000:8.2f} ms  (cache_hit={cold_result['cache_hit']})",
        f"  warm: {warm * 1000:8.2f} ms  (cache_hit={warm_result['cache_hit']})",
        f"  speedup: x{cold / warm:.1f}",
    ]
    return "\n".join(lines), cold, warm, cold_result, warm_result


class TestSustainedConcurrency:
    def test_50_concurrent_diagnoses_zero_dropped(self, emit):
        table, results, dropped = run_sustained_concurrency(50)
        emit("server-concurrency", table)
        assert len(results) == 50
        assert not dropped

    def test_throughput_sweep(self, emit):
        emit("server-sweep", run_concurrency_sweep())


class TestColdVsWarm:
    def test_warm_repeat_measurably_faster(self, emit):
        table, cold, warm, cold_result, warm_result = run_cold_vs_warm()
        emit("server-cache", table)
        assert not cold_result["cache_hit"]
        assert warm_result["cache_hit"]
        assert warm_result["diagnosis"] == cold_result["diagnosis"]
        assert warm < cold


def main():  # pragma: no cover - manual entry point
    table, _, dropped = run_sustained_concurrency(50)
    print(table)
    assert not dropped, f"{len(dropped)} requests dropped"
    print()
    print(run_concurrency_sweep())
    print()
    table, cold, warm, *_ = run_cold_vs_warm()
    print(table)
    assert warm < cold, "warm repeat was not faster than the cold request"


if __name__ == "__main__":  # pragma: no cover
    main()
