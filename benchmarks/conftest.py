"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §4) and prints it once, so running

    pytest benchmarks/ --benchmark-only -s

both times the pipeline and emits the reproduced tables for
EXPERIMENTS.md.
"""

import pytest


@pytest.fixture(scope="session")
def emit():
    """Print a reproduced table exactly once per benchmark session."""
    printed = set()

    def _emit(key: str, text: str) -> None:
        if key not in printed:
            printed.add(key)
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _emit
