"""Streaming re-diagnosis latency: incremental tick vs cold re-run.

The streaming plane's reason to exist is the warm tick: after one net
drifts, the prefix-checkpoint chain re-asserts a single measurement
instead of replaying the whole snapshot.  This benchmark times the
steady-state warm tick (the same net keeps drifting, which is what a
degrading unit looks like) against both cold baselines:

* **chain-cold** — a fresh ``IncrementalDiagnosisEngine`` absorbing the
  same sequence in the same order (the semantically identical baseline;
  the differential suite pins the equality);
* **one-shot** — ``Flames.diagnose`` of the final measurement set (the
  batch path a non-streaming caller would use).

The pytest cases are CI smoke (small ladder, sanity ratios).  The
module entry point runs the paper-scale ladder and, under
``REPRO_BENCH_STRICT=1``, enforces the ≥5x acceptance gate on both
kernels against the chain-cold baseline:

    REPRO_BENCH_STRICT=1 PYTHONPATH=src python -m benchmarks.bench_stream

``--json-out BENCH_stream.json`` additionally writes the rows as a
machine-readable file for trend tracking.
"""

import os
import time

from repro.circuit.generators import resistor_ladder
from repro.circuit.measurements import Measurement, probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.fuzzy import FuzzyInterval
from repro.stream.incremental import IncrementalDiagnosisEngine

IMPRECISION = 0.05
#: The drifting net sags to 90% of nominal — inconsistent enough that a
#: real diagnosis happens every tick, mild enough that conflict-set
#: extraction does not drown out the propagation cost being compared.
DRIFT_FACTOR = 0.9


def _measurements(circuit, nets):
    return probe_all(DCSolver(circuit).solve(), nets, imprecision=IMPRECISION)


def _with_value(measurements, point, volts):
    return [
        Measurement(m.point, FuzzyInterval.number(volts, IMPRECISION))
        if m.point == point
        else m
        for m in measurements
    ]


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def run_tick_comparison(sections, kernel, reps=5):
    """Median warm / chain-cold / one-shot milliseconds for one drift."""
    circuit = resistor_ladder(sections)
    nets = [f"n{i}" for i in range(1, sections + 1)]
    healthy = _measurements(circuit, nets)
    drift_point = f"V(n{sections // 2})"
    nominal = dict((m.point, m) for m in healthy)[drift_point].value.centroid
    drift_volts = nominal * DRIFT_FACTOR

    warm = IncrementalDiagnosisEngine(Flames(circuit, FlamesConfig(kernel=kernel)))
    warm.diagnose(healthy)
    # First drift pays the reorder; steady state starts on the second.
    warm.diagnose(_with_value(healthy, drift_point, drift_volts))

    warm_ms, chain_ms, oneshot_ms = [], [], []
    for rep in range(reps):
        # Keep the value moving so every tick really re-asserts it.
        snapshot = _with_value(
            healthy, drift_point, drift_volts * (1 + 0.005 * (rep + 1))
        )
        started = time.perf_counter()
        warm_result = warm.diagnose(snapshot)
        warm_ms.append((time.perf_counter() - started) * 1e3)
        assert warm.last_stats.incremental
        assert warm.last_stats.recomputed == 1

        order = warm.order
        by_point = {m.point: m for m in snapshot}
        started = time.perf_counter()
        cold = IncrementalDiagnosisEngine(Flames(circuit, FlamesConfig(kernel=kernel)))
        cold_result = cold.diagnose([by_point[p] for p in order])
        chain_ms.append((time.perf_counter() - started) * 1e3)
        assert not warm_result.is_consistent, "the drift must actually diagnose"
        assert warm_result.ranked_components() == cold_result.ranked_components()

        started = time.perf_counter()
        Flames(circuit, FlamesConfig(kernel=kernel)).diagnose(snapshot)
        oneshot_ms.append((time.perf_counter() - started) * 1e3)

    return _median(warm_ms), _median(chain_ms), _median(oneshot_ms)


def format_table(rows):
    lines = [
        "streaming tick latency: incremental vs cold (median ms, one drifting net)",
        f"  {'kernel':<10} {'sections':>8} {'warm':>8} {'chain-cold':>11} "
        f"{'one-shot':>9} {'vs chain':>9} {'vs shot':>8}",
    ]
    for kernel, sections, warm, chain, oneshot in rows:
        lines.append(
            f"  {kernel:<10} {sections:>8} {warm:>8.1f} {chain:>11.1f} "
            f"{oneshot:>9.1f} {chain / warm:>8.1f}x {oneshot / warm:>7.1f}x"
        )
    return "\n".join(lines)


class TestStreamTick:
    def test_warm_tick_beats_cold_baselines(self, emit):
        rows = []
        for kernel in ("reference", "fast"):
            warm, chain, oneshot = run_tick_comparison(8, kernel, reps=3)
            rows.append((kernel, 8, warm, chain, oneshot))
        emit("stream-tick", format_table(rows))
        for kernel, _, warm, chain, oneshot in rows:
            # CI smoke keeps a loose floor; the strict 5x acceptance
            # gate runs at paper scale via the module entry point.
            assert chain > warm, f"{kernel}: warm tick slower than chain-cold"
            assert oneshot > warm, f"{kernel}: warm tick slower than one-shot"


def main():  # pragma: no cover - manual entry point
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="bench_stream",
        description="streaming warm-tick latency vs cold baselines",
    )
    parser.add_argument(
        "--sections", type=int, default=12,
        help="ladder sections, paper scale (default 12)",
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="drift ticks per median (default 5)"
    )
    parser.add_argument(
        "--json-out", default="",
        help="also write the rows as JSON here (e.g. BENCH_stream.json)",
    )
    args = parser.parse_args()
    sections = args.sections
    rows = []
    for kernel in ("reference", "fast"):
        warm, chain, oneshot = run_tick_comparison(sections, kernel, reps=args.reps)
        rows.append((kernel, sections, warm, chain, oneshot))
    print(format_table(rows))
    if args.json_out:
        payload = {
            "benchmark": "stream",
            "sections": sections,
            "reps": args.reps,
            "rows": [
                {
                    "kernel": kernel,
                    "sections": secs,
                    "warm_ms": round(warm, 3),
                    "chain_cold_ms": round(chain, 3),
                    "one_shot_ms": round(oneshot, 3),
                    "speedup_vs_chain": round(chain / warm, 3),
                    "speedup_vs_oneshot": round(oneshot / warm, 3),
                }
                for kernel, secs, warm, chain, oneshot in rows
            ],
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    if os.environ.get("REPRO_BENCH_STRICT"):
        # The gate compares against the semantically identical baseline
        # (chain-cold); one-shot is reported for context — it answers a
        # different, order-insensitive contract.
        for kernel, _, warm, chain, _oneshot in rows:
            speedup = chain / warm
            assert speedup >= 5.0, (
                f"{kernel}: warm tick only x{speedup:.1f} vs chain-cold "
                f"(need >=5x)"
            )
        print("strict gate ok: every warm tick >=5x the cold re-run")


if __name__ == "__main__":  # pragma: no cover
    main()
