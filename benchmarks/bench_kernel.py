"""Micro-benchmarks of the FLAMES kernel pieces.

These time the substrates the paper's runtime claims rest on: fuzzy
interval arithmetic, Dc evaluation, ATMS label propagation, weighted
hitting sets, the DC simulator and one full diagnosis cycle — plus a
reference-vs-fast kernel comparison on the repeated-measurement
workloads the fast kernel was built for (the ``test_*_speedup`` cases
double as the CI perf-regression guard: they fail when the fast kernel
drops below 2x on the worklist workload).

The module entry point runs just the kernel comparison and can write a
machine-readable result for trend tracking:

    PYTHONPATH=src python -m benchmarks.bench_kernel --json-out BENCH_kernel.json
"""

import argparse
import json
import time

from repro.atms import ATMS, Environment, minimal_diagnoses
from repro.atms.assumptions import Assumption
from repro.atms.nogood import WeightedNogood
from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.circuit.constraints import ConstraintNetwork
from repro.circuit.generators import resistor_ladder
from repro.circuit.measurements import probe
from repro.core import Flames
from repro.core.predict import predict_nominal
from repro.core.propagation import FuzzyPropagator, PropagatorConfig
from repro.fuzzy import FuzzyInterval, consistency, fuzzy_entropy


class TestFuzzyArithmetic:
    def test_multiply_chain(self, benchmark):
        a = FuzzyInterval(3.0, 3.0, 0.05, 0.05)
        gains = [FuzzyInterval(g, g, 0.05, 0.05) for g in (1.0, 2.0, 3.0, 0.5)] * 5

        def chain():
            v = a
            for g in gains:
                v = v * g
            return v

        result = benchmark(chain)
        assert result.m1 > 0

    def test_consistency_degree(self, benchmark):
        measured = FuzzyInterval(1.05, 1.05, 0.02, 0.02)
        nominal = FuzzyInterval(1.0, 1.0, 0.08, 0.08)
        c = benchmark(consistency, measured, nominal)
        assert 0.0 <= c.degree <= 1.0

    def test_fuzzy_entropy_ten_components(self, benchmark):
        estimations = [FuzzyInterval(0.1 * i, 0.1 * i, 0.05, 0.05) for i in range(10)]
        ent = benchmark(fuzzy_entropy, estimations)
        assert ent.centroid >= 0.0


class TestATMSKernel:
    def _build(self, n):
        atms = ATMS()
        assumptions = [atms.create_assumption(f"A{i}") for i in range(n)]
        previous = None
        for i, a in enumerate(assumptions):
            node = atms.create_node(f"x{i}")
            ants = [a] if previous is None else [a, previous]
            atms.justify(f"j{i}", ants, node)
            previous = node
        return atms, assumptions

    def test_label_propagation_chain(self, benchmark):
        def run():
            atms, _ = self._build(30)
            return atms.stats()["label_environments"]

        assert benchmark(run) > 0

    def test_nogood_retraction(self, benchmark):
        def run():
            atms, assumptions = self._build(20)
            atms.declare_nogood("n", assumptions[:2])
            return len(atms.minimal_nogoods())

        assert benchmark(run) == 1

    def test_weighted_hitting_sets(self, benchmark):
        names = [Assumption(f"c{i}", f"c{i}") for i in range(10)]
        nogoods = [
            WeightedNogood(Environment(frozenset(names[i : i + 3])), 1.0 - 0.05 * i)
            for i in range(7)
        ]
        diagnoses = benchmark(minimal_diagnoses, nogoods)
        assert diagnoses


class TestSimulatorAndEngine:
    def test_dc_solve_three_stage(self, benchmark):
        golden = three_stage_amplifier()
        op = benchmark(lambda: DCSolver(golden).solve())
        assert op.device_states["T2"] == "active"

    def test_prediction_unit(self, benchmark):
        from repro.core.predict import predict_nominal

        golden = three_stage_amplifier()
        predictions = benchmark.pedantic(
            predict_nominal, args=(golden,), rounds=3, iterations=1
        )
        assert "V(vs)" in predictions

    def test_full_diagnosis_cycle(self, benchmark):
        golden = three_stage_amplifier()
        engine = Flames(golden)
        engine.predictions()  # warm the cache: time the diagnosis itself
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        result = benchmark.pedantic(
            engine.diagnose, args=(measurements,), rounds=3, iterations=1
        )
        assert not result.is_consistent


def _measurement_stream(circuit, probes):
    """A persistent propagator fed one measurement at a time (fault-shop
    cadence: predictions first, then probe / run / probe / run ...)."""
    op = DCSolver(circuit).solve()
    nets = [n for n in sorted(op.voltages) if n != "0"][:probes]
    network = ConstraintNetwork(circuit, False)
    nominal = predict_nominal(circuit)

    def run(kernel):
        prop = FuzzyPropagator(network, config=PropagatorConfig(kernel=kernel))
        for name, pred in nominal.items():
            if name in network.variables:
                prop.set_value(name, pred.value, pred.support, source="prediction")
        prop.run()
        for net in nets:
            m = probe(op, net, 0.02)
            prop.set_value(m.point, m.value)
            prop.run()
        return prop

    return run


def _time(fn, *args, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


class TestKernelComparison:
    """Reference vs fast kernel on the workloads the ISSUE targets.

    The speedup assertion is deliberately below the typical figure
    (~4x on the ladder) so it trips on real regressions — a fast kernel
    slower than 2x the reference on its flagship workload is a bug —
    without flaking on machine noise.
    """

    def test_repeated_measurement_speedup(self, emit):
        rows = []
        for label, circuit, probes in (
            ("ladder-40 x12 probes", resistor_ladder(40), 12),
            ("three-stage x6 probes", three_stage_amplifier(), 6),
        ):
            run = _measurement_stream(circuit, probes)
            run("fast")  # touch everything once so both timings are warm
            ref = _time(run, "reference")
            fast = _time(run, "fast")
            rows.append((label, ref, fast))
        table = ["kernel comparison — repeated-measurement propagation",
                 f"{'workload':<26} {'reference':>10} {'fast':>9} {'speedup':>8}"]
        for label, ref, fast in rows:
            table.append(
                f"{label:<26} {ref * 1000:>8.0f}ms {fast * 1000:>7.0f}ms "
                f"{ref / fast:>7.2f}x"
            )
        emit("kernel-comparison", "\n".join(table))
        ladder_ref, ladder_fast = rows[0][1], rows[0][2]
        assert ladder_ref / ladder_fast >= 2.0, (
            f"fast kernel regressed: only {ladder_ref / ladder_fast:.2f}x "
            f"on {rows[0][0]}"
        )

    def test_fast_kernel_diagnosis_cycle(self, benchmark):
        """The full-diagnosis timing on the fast kernel (pairs with
        TestSimulatorAndEngine.test_full_diagnosis_cycle above)."""
        from repro.core.diagnosis import FlamesConfig

        golden = three_stage_amplifier()
        engine = Flames(golden, FlamesConfig(kernel="fast"))
        engine.predictions()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        result = benchmark.pedantic(
            engine.diagnose, args=(measurements,), rounds=3, iterations=1
        )
        assert not result.is_consistent


class TestTracingOverhead:
    """Span collection must cost (almost) nothing when off, little when on.

    Tracing off shares one no-op handle per ``RunContext.span`` call, so
    the traced-vs-untraced gap on a full diagnosis cycle is bounded at
    5% (plus a small absolute epsilon so sub-millisecond noise cannot
    trip the guard on a fast machine).
    """

    def test_span_overhead_within_5_percent(self, emit):
        from repro.core.diagnosis import FlamesConfig
        from repro.runtime import RunContext

        golden = three_stage_amplifier()
        engine = Flames(golden, FlamesConfig(kernel="fast"))
        engine.predictions()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)

        def run(tracing):
            ctx = RunContext(tracing=tracing)
            return engine.diagnose(measurements, ctx=ctx)

        run(True)  # warm everything once before timing
        base = _time(run, False, repeats=5)
        traced = _time(run, True, repeats=5)
        emit(
            "tracing-overhead",
            "span-collection overhead — full diagnosis cycle (fast kernel)\n"
            f"{'tracing off':<14} {base * 1000:>8.2f}ms\n"
            f"{'tracing on':<14} {traced * 1000:>8.2f}ms\n"
            f"{'overhead':<14} {(traced / base - 1) * 100:>7.1f}%",
        )
        assert traced <= base * 1.05 + 0.002, (
            f"tracing overhead too high: {base * 1000:.2f}ms -> "
            f"{traced * 1000:.2f}ms ({(traced / base - 1) * 100:.1f}%)"
        )


class TestATMSGrowth:
    def test_growth_sweep(self, benchmark, emit):
        from repro.experiments.atms_growth import format_atms_growth, run_atms_growth

        rows = benchmark.pedantic(
            run_atms_growth, kwargs={"conflict_counts": (2, 4, 6, 8)},
            rounds=1, iterations=1,
        )
        assert rows[-1].diagnoses_all == 256
        emit("atms-growth", format_atms_growth(rows))


def run_comparison(repeats=2):
    """The reference-vs-fast rows as plain data (shared by CLI and JSON)."""
    rows = []
    for label, circuit, probes in (
        ("ladder-40 x12 probes", resistor_ladder(40), 12),
        ("three-stage x6 probes", three_stage_amplifier(), 6),
    ):
        run = _measurement_stream(circuit, probes)
        run("fast")  # touch everything once so both timings are warm
        ref = _time(run, "reference", repeats=repeats)
        fast = _time(run, "fast", repeats=repeats)
        rows.append(
            {
                "workload": label,
                "reference_ms": round(ref * 1000, 3),
                "fast_ms": round(fast * 1000, 3),
                "speedup": round(ref / fast, 3),
            }
        )
    return rows


def main():  # pragma: no cover - manual entry point
    parser = argparse.ArgumentParser(
        prog="bench_kernel",
        description="reference-vs-fast kernel comparison on the "
        "repeated-measurement workloads",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timing repetitions per workload, best-of (default 2)",
    )
    parser.add_argument(
        "--json-out", default="",
        help="also write the rows as JSON here (e.g. BENCH_kernel.json)",
    )
    args = parser.parse_args()
    rows = run_comparison(repeats=args.repeats)
    print("kernel comparison — repeated-measurement propagation")
    print(f"{'workload':<26} {'reference':>10} {'fast':>9} {'speedup':>8}")
    for row in rows:
        print(
            f"{row['workload']:<26} {row['reference_ms']:>8.0f}ms "
            f"{row['fast_ms']:>7.0f}ms {row['speedup']:>7.2f}x"
        )
    if args.json_out:
        payload = {"benchmark": "kernel", "repeats": args.repeats, "rows": rows}
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")


if __name__ == "__main__":  # pragma: no cover
    main()
