"""End-to-end smoke test for ``GET /v1/stream`` — the streaming CI gate.

Launches the real CLI as a subprocess on an ephemeral port, opens an
SSE stream over a live-simulated ladder that shorts ``Rp3`` mid-stream,
and asserts the full streaming contract:

* gapless, strictly monotonic ``id:`` sequence numbers (zero dropped
  events — the ``end`` event's count must equal what we parsed);
* the baseline update is consistent, the post-fault update is not, and
  the injected fault is the rank-1 minimal candidate;
* a second, long-running stream survives SIGTERM: the server drains it
  with an ``end`` event whose reason is ``drain`` and exits 0.

Exits non-zero on any failure, so CI can run it as a bare step:

    PYTHONPATH=src python scripts/stream_smoke.py
"""

import http.client
import re
import signal
import subprocess
import sys
import threading
import time

from repro.stream.sse import parse_events


def wait_for_port(process):
    """The server logs its bound port; scrape it from the first lines."""
    pattern = re.compile(r'"port": (\d+)')
    deadline = time.time() + 30
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            break
        line = process.stdout.readline()
        if not line:
            continue
        lines.append(line)
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise RuntimeError(f"server never reported a port; output so far: {lines}")


def read_stream(port, query, timeout=120.0):
    """One full SSE stream: (status, headers, parsed events)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", f"/v1/stream?{query}")
        resp = conn.getresponse()
        body = resp.read()  # Connection: close — EOF ends the stream
    finally:
        conn.close()
    return resp, parse_events(body)


def assert_gapless(events):
    ids = [seq for seq, _, _ in events]
    assert ids == list(range(len(ids))), f"sequence has gaps: {ids}"
    kinds = [kind for _, kind, _ in events]
    assert kinds[-1] == "end", f"stream did not terminate with end: {kinds}"
    assert "end" not in kinds[:-1], "end must be the final event"
    end = events[-1][2]
    assert end["events"] == len(events) - 1, (
        f"server framed {end['events']} events, we parsed {len(events) - 1} "
        "— something was dropped"
    )


def check_fault_stream(port):
    resp, events = read_stream(
        port, "size=6&duration=0.006&dt=0.001&fault=short:Rp3&fault_at=0.003"
    )
    assert resp.status == 200, resp.status
    assert resp.getheader("Content-Type").startswith("text/event-stream")
    assert_gapless(events)
    assert events[-1][2]["reason"] == "complete", events[-1]

    updates = [data for _, kind, data in events if kind == "update"]
    assert len(updates) >= 2, f"want baseline + post-fault updates, got {updates}"
    assert updates[0]["consistent"] is True, "baseline must look healthy"
    session_seqs = [u["seq"] for u in updates]
    assert session_seqs == list(range(len(updates))), session_seqs

    final = updates[-1]
    assert final["consistent"] is False, "the fault must be detected"
    assert final["candidates"][0] == ["Rp3"], (
        f"injected short on Rp3 must be the rank-1 candidate, "
        f"got {final['candidates'][:3]}"
    )
    print(
        f"fault stream ok: {len(events)} gapless events, "
        f"rank-1 candidate {final['candidates'][0]} "
        f"(tick {final['tick_ms']:.0f}ms, "
        f"{'incremental' if final['incremental'] else 'cold'})"
    )


def check_sigterm_drain(port, process):
    """SIGTERM mid-stream: the open stream ends with reason=drain."""
    results = {}

    def consume():
        try:
            # ~4000 simulation steps keep this stream busy for seconds.
            results["resp"], results["events"] = read_stream(
                port, "size=6&duration=0.4&dt=0.0001"
            )
        except Exception as exc:  # surfaced below, not lost in the thread
            results["error"] = exc

    reader = threading.Thread(target=consume)
    reader.start()
    time.sleep(0.5)  # let the stream open and start simulating
    process.send_signal(signal.SIGTERM)
    reader.join(timeout=90)
    assert not reader.is_alive(), "stream never ended after SIGTERM"
    if "error" in results:
        raise AssertionError(f"stream reader failed: {results['error']}")

    events = results["events"]
    assert events, "drained stream must still deliver its end event"
    assert_gapless(events)
    assert events[-1][2]["reason"] == "drain", events[-1]
    returncode = process.wait(timeout=60)
    assert returncode == 0, f"drain exited {returncode}"
    print(
        f"drain ok: SIGTERM mid-stream ended with reason=drain "
        f"({len(events)} events), server exited 0"
    )


def main():
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "--heartbeat", "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(process)
        print(f"server up on port {port}")
        check_fault_stream(port)
        check_sigterm_drain(port, process)
        print("stream smoke test passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
