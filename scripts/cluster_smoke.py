"""End-to-end smoke test for ``repro cluster`` — the CI gate.

Launches the real CLI as a subprocess: one gateway fronting two
``repro serve`` replicas, with a fault plan that hard-kills one replica
on the first supervision tick (``cluster.replica_kill``).  While that
chaos is in flight, a concurrent batch of diagnoses is fired through
the gateway — every single one must come back 200 (ring failover +
client rotation route around the corpse while the manager respawns
it).  Then the script checks that the kill/restart actually happened,
that a confirmed repair gossiped into the cluster ledger, and that
SIGTERM drains the whole tree cleanly (exit 0).  Exits non-zero on any
failure, so CI runs it as a bare step:

    PYTHONPATH=src python scripts/cluster_smoke.py
"""

import json
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.circuit.spice import write_netlist
from repro.server import DiagnosisClient, ServerUnavailable
from repro.service.jobs import measurement_to_dict

#: One chaos kill, first supervision tick: deterministic, recoverable.
KILL_PLAN = json.dumps(
    {"seed": 0, "rules": [{"point": "cluster.replica_kill", "rate": 1.0, "limit": 1}]}
)

_GATEWAY_PORT_RE = re.compile(r'"event": "cluster_listening".*?"port": (\d+)')


def demo_specs(count):
    """Distinct-content specs (varying defects) for the demo amplifier."""
    golden = three_stage_amplifier()
    netlist = write_netlist(golden)
    defects = [
        Fault(FaultKind.SHORT, "R2"),
        Fault(FaultKind.OPEN, "R3"),
        Fault(FaultKind.PARAM, "R2", parameter="resistance", value=12.18e3),
        Fault(FaultKind.SHORT, "R5"),
    ]
    benches = [
        probe_all(DCSolver(apply_fault(golden, f)).solve(), ("vs", "v2", "v1"), 0.02)
        for f in defects
    ]
    specs = []
    for i in range(count):
        spec = {
            "unit": f"smoke-{i:03d}",
            "netlist_text": netlist,
            "measurements": [
                measurement_to_dict(m) for m in benches[i % len(benches)]
            ],
        }
        if i == 0:
            # One confirmed repair: the gossip payload under test.
            spec["confirm"] = {"component": "R2", "mode": "short"}
        specs.append(spec)
    return specs


def wait_for_gateway_port(process):
    """Scrape the *gateway's* port (replica_up lines carry ports too)."""
    deadline = time.time() + 120
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            break
        line = process.stdout.readline()
        if not line:
            continue
        lines.append(line)
        match = _GATEWAY_PORT_RE.search(line)
        if match:
            return int(match.group(1))
    raise RuntimeError(f"gateway never reported a port; output so far: {lines}")


def main():
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "cluster",
            "--port", "0", "--replicas", "2", "--workers", "2",
            "--poll-interval", "0.5", "--gossip-interval", "1.0",
            "--faults", KILL_PLAN,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_gateway_port(process)
        probe = DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2)
        ready = probe.ready()
        assert ready["replicas_ready"] == 2, ready
        print(f"gateway ready on port {port} with 2 replicas")

        # Fire the batch concurrently; the chaos kill lands ~0.5s in,
        # squarely mid-flight.  Zero dropped is the whole point.
        specs = demo_specs(24)

        def one(spec):
            with DiagnosisClient(
                port=port, timeout=120, retries=6, backoff=0.2
            ) as client:
                return client.diagnose(spec)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(one, specs))
        wall = time.perf_counter() - start
        dropped = [r for r in results if r.get("status") != "ok"]
        assert not dropped, f"{len(dropped)} of {len(results)} requests dropped"
        print(f"batch ok: {len(results)}/{len(results)} answered in {wall:.1f}s, "
              "zero dropped")

        # The chaos kill must have fired and the manager recovered it.
        deadline = time.time() + 60
        fleet = {}
        while time.time() < deadline:
            fleet = probe.metrics()["fleet"]
            if fleet.get("kills_injected") and fleet.get("restarts_total"):
                break
            time.sleep(0.5)
        assert fleet.get("kills_injected", 0) >= 1, fleet
        assert fleet.get("restarts_total", 0) >= 1, fleet
        print(f"chaos ok: {fleet['kills_injected']} kill(s) injected, "
              f"{fleet['restarts_total']} restart(s)")

        # The confirmed repair must reach the cluster-wide ledger.
        deadline = time.time() + 60
        rules = []
        while time.time() < deadline:
            rules = probe._request("GET", "/v1/experience").get("rules", [])
            if rules:
                break
            time.sleep(0.5)
        assert any(r["component"] == "R2" for r in rules), rules
        print(f"gossip ok: {len(rules)} rule(s) in the cluster ledger")
        probe.close()

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=120)
        assert returncode == 0, f"drain exited {returncode}"
        print("cascading drain ok (exit 0)")

        try:
            DiagnosisClient(port=port, retries=0, timeout=5).health()
        except ServerUnavailable:
            pass
        else:
            raise AssertionError("gateway still answering after drain")
        print("cluster smoke test passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
