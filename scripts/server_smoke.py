"""End-to-end smoke test for ``repro serve`` — the CI gate.

Launches the real CLI as a subprocess on an ephemeral port, waits for
``/healthz``, round-trips one ``POST /v1/diagnose`` on the demo
circuit, checks ``/metrics``, then sends SIGTERM and asserts a clean
(exit 0) drain.  Exits non-zero on any failure, so CI can run it as a
bare step:

    PYTHONPATH=src python scripts/server_smoke.py
"""

import re
import signal
import subprocess
import sys
import time

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.circuit.spice import write_netlist
from repro.server import DiagnosisClient, ServerUnavailable
from repro.service.jobs import measurement_to_dict


def demo_spec():
    golden = three_stage_amplifier()
    op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
    return {
        "unit": "smoke-unit",
        "netlist_text": write_netlist(golden),
        "measurements": [
            measurement_to_dict(m)
            for m in probe_all(op, ("vs", "v2", "v1"), imprecision=0.02)
        ],
    }


def wait_for_port(process):
    """The server logs its bound port; scrape it from the first lines."""
    pattern = re.compile(r'"port": (\d+)')
    deadline = time.time() + 30
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            break
        line = process.stdout.readline()
        if not line:
            continue
        lines.append(line)
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise RuntimeError(f"server never reported a port; output so far: {lines}")


def main():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(process)
        client = DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2)
        health = client.health()
        assert health["status"] == "ok", health
        print(f"healthz ok on port {port}")

        result = client.diagnose(demo_spec())
        assert result["status"] == "ok", result
        assert result["diagnosis"]["status"] == "faulty", result["diagnosis"]["status"]
        top = sorted(
            result["diagnosis"]["suspicions"].items(), key=lambda kv: -kv[1]
        )[:3]
        print(f"diagnose ok: top suspects {top}")

        metrics = client.metrics()
        assert metrics["queue"]["admitted"] >= 1, metrics["queue"]
        print(f"metrics ok: {metrics['queue']['admitted']} request(s) admitted")
        client.close()

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        assert returncode == 0, f"drain exited {returncode}"
        print("graceful drain ok (exit 0)")

        try:
            DiagnosisClient(port=port, retries=0, timeout=5).health()
        except ServerUnavailable:
            pass
        else:
            raise AssertionError("server still answering after drain")
        print("smoke test passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
