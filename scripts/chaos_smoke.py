"""Chaos smoke test — the resilience plane's CI gate.

Two legs, both under a fixed-seed :class:`FaultPlan` (worker crashes,
worker hangs, corrupted cache entries), asserting the resilience
contract end to end:

1. **fleet** — a 40-unit batch through a supervised ``FleetEngine``
   (two passes, so the corrupt-cache path is exercised warm).  Every
   job must finish with a structured status; persistent failures must
   be quarantined, not retry-looped; the engine must not raise.
2. **server** — the real ``repro serve`` CLI as a subprocess with the
   plan armed (plus ``server.io`` dispatch faults) and the supervisor
   engaged.  Every request must come back as structured JSON — a 200
   result or a structured error body — the connection must survive
   injected dispatch faults, and SIGTERM must still drain cleanly
   (exit 0).

Exits non-zero on any violation, so CI can run it as a bare step:

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import time
from collections import Counter

from repro.resilience import FaultPlan, FaultRule, FleetSupervisor
from repro.service import FleetEngine
from repro.service.jobs import DiagnosisJob

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)

#: Structured terminal statuses — anything else is a contract violation.
STRUCTURED = {"ok", "degraded", "quarantined", "timeout", "interrupted"}

#: The fixed-seed chaos plan CI replays: crash + hang + corrupt.
PLAN = FaultPlan(
    seed=0,
    rules=(
        FaultRule("pool.worker_crash", rate=0.15),
        FaultRule("pool.worker_hang", rate=0.03, seconds=2.0),
        FaultRule("cache.corrupt", rate=0.5),
    ),
)


def build_jobs(n=40):
    from repro.circuit.measurements import Measurement
    from repro.fuzzy import FuzzyInterval

    return [
        DiagnosisJob.build(
            f"unit-{i:02d}",
            NETLIST,
            [Measurement("V(mid)", FuzzyInterval.number(5.0 + i * 0.05, 0.02))],
            sanitize="repair",
        )
        for i in range(n)
    ]


def fleet_leg():
    jobs = build_jobs()
    engine = FleetEngine(
        workers=4,
        executor="thread",
        timeout=0.5,
        retries=2,
        supervisor=FleetSupervisor(quarantine_after=3),
        fault_plan=PLAN,
    )
    statuses = Counter()
    for batch in (1, 2):
        report = engine.run_batch(jobs)
        assert len(report.results) == len(jobs), "a job went missing"
        for res in report.results:
            assert res.status in STRUCTURED, f"{res.unit}: unstructured {res.status!r}"
            if not res.completed:
                assert res.error, f"{res.unit}: failure without a reason"
        statuses.update(r.status for r in report.results)
    assert statuses["quarantined"] >= 1, "chaos never quarantined anything"
    snapshot = engine.cache.snapshot()
    assert snapshot["corruptions"] >= 1, "corrupt-cache path never exercised"
    survival = 100.0 * sum(
        statuses[s] for s in ("ok", "degraded")
    ) / sum(statuses.values())
    print(
        f"fleet leg ok: {dict(statuses)} over 2 passes, "
        f"{survival:.1f}% completed, "
        f"{snapshot['corruptions']} corrupt cache entr(ies) counted as misses"
    )
    return statuses


def wait_for_port(process):
    pattern = re.compile(r'"port": (\d+)')
    deadline = time.time() + 30
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            break
        line = process.stdout.readline()
        if not line:
            continue
        lines.append(line)
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise RuntimeError(f"server never reported a port; output so far: {lines}")


def server_leg(requests=30):
    server_plan = FaultPlan(
        seed=0, rules=PLAN.rules + (FaultRule("server.io", rate=0.25),)
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2",
            "--supervise", "--faults", server_plan.to_json(),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = wait_for_port(process)
        spec = {
            "unit": "chaos-unit",
            "netlist_text": NETLIST,
            "probes": {"mid": 7.5},
            "sanitize": "repair",
        }
        body = json.dumps(spec).encode()
        statuses = Counter()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            for i in range(requests):
                try:
                    conn.request(
                        "POST", "/v1/diagnose", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    raw = response.read()
                except (OSError, http.client.HTTPException) as exc:
                    raise AssertionError(
                        f"request {i}: connection died ({exc!r}) — "
                        "an injected fault escaped the structured path"
                    ) from None
                payload = json.loads(raw)  # every answer is JSON, even 500s
                statuses[response.status] += 1
                if response.status == 200:
                    # A job whose worker keeps crashing surfaces as a
                    # structured "error"/"quarantined" result — still a
                    # well-formed answer, never a dropped connection.
                    assert payload["status"] in STRUCTURED | {"error"}, payload
                else:
                    assert "error" in payload, payload
        finally:
            conn.close()
        assert statuses[200] >= 1, f"no request survived: {dict(statuses)}"
        assert statuses.get(500, 0) >= 1, "server.io chaos never fired"
        print(f"server leg ok: HTTP statuses {dict(statuses)} over {requests} requests")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        assert returncode == 0, f"drain under chaos exited {returncode}"
        print("graceful drain under chaos ok (exit 0)")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def main():
    fleet_leg()
    server_leg()
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
