"""Corpus smoke test — the accuracy-regression plane's CI gate.

One fixed recipe (seed 101, 8 scenarios per class, all six classes)
drives the whole corpus loop end to end:

1. **determinism** — generating the corpus twice yields byte-identical
   manifests, and the canonical (accuracy-only) report is byte-stable
   for the manifest;
2. **kernel parity** — the reference and fast kernels must produce the
   *same accuracy table*, class by class, metric by metric;
3. **structure** — every intermittent scenario surfaces the low-degree
   nogood signature (``low_degree_rate == 1.0`` on both kernels) and
   every scenario completes (no failures);
4. **the floor** — the committed ``benchmarks/corpus_floor.json``
   minimums hold on both kernels.

Exits non-zero on any violation, so CI can run it as a bare step:

    PYTHONPATH=src python scripts/corpus_smoke.py
"""

import json
import sys
import time
from pathlib import Path

from repro.corpus import check_floor, generate_corpus, run_corpus

SEED = 101
PER_CLASS = 8
FLOOR_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "corpus_floor.json"


def main():
    started = time.perf_counter()
    manifest = generate_corpus(SEED, PER_CLASS)
    again = generate_corpus(SEED, PER_CLASS)
    assert manifest.to_json() == again.to_json(), (
        "same-seed corpus generation is not byte-identical"
    )
    print(f"manifest ok: {len(manifest)} scenarios, "
          f"{len(manifest.classes)} classes, deterministic "
          f"({time.perf_counter() - started:.1f}s)")

    report = run_corpus(manifest, kernels=("reference", "fast"), workers=4)
    table = report.to_dict()
    assert table == json.loads(report.to_json()), "report JSON round trip drifted"

    kernels = table["kernels"]
    assert set(kernels) == {"reference", "fast"}, f"kernels missing: {set(kernels)}"
    assert kernels["reference"] == kernels["fast"], (
        "kernel accuracy tables diverge:\n"
        f"reference: {json.dumps(kernels['reference'], sort_keys=True)}\n"
        f"fast:      {json.dumps(kernels['fast'], sort_keys=True)}"
    )
    print("kernel parity ok: reference and fast accuracy tables identical")

    for kernel, classes in kernels.items():
        for name, cell in classes.items():
            acc = cell["accuracy"]
            assert acc["failures"] == 0, f"{kernel}/{name}: {acc['failures']} failure(s)"
        assert classes["intermittent"]["accuracy"]["low_degree_rate"] == 1.0, (
            f"{kernel}: intermittent scenarios without the low-degree signature"
        )
    print("structure ok: zero failures, low-degree signature on every "
          "intermittent scenario")

    floor = json.loads(FLOOR_PATH.read_text())
    breaches = check_floor(report, floor)
    for breach in breaches:
        print(f"FLOOR BREACH: {breach}", file=sys.stderr)
    assert not breaches, f"{len(breaches)} floor breach(es)"
    overall = kernels["reference"]["overall"]["accuracy"]
    print(f"floor ok: top1 {overall['top1']:.3f} / top3 {overall['top3']:.3f} "
          f"overall vs committed minimums "
          f"({time.perf_counter() - started:.1f}s total)")
    print("corpus smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
