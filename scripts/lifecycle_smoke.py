"""End-to-end smoke test for the store lifecycle plane — the CI gate.

Provisions tenants through ``repro tenants create --json``, launches a
two-replica ``repro cluster`` over one store file and proves the fleet
shares a single token bucket (the 4th request 429s at the gateway with
a float Retry-After, whichever replica served the first three).  While
anonymous load hammers the cluster it takes an online ``repro store
backup``, then: rotates the tenant's key (old key 401s within the
registry TTL, the new key works), drains the cluster, corrupts a cache
row inside the backup and has ``repro store scrub`` catch and purge it,
and finally boots a fresh server *on the backup* — which must serve the
pre-backup diagnosis as a byte-identical disk cache hit.  Exits
non-zero on any failure, so CI can run it as a bare step:

    PYTHONPATH=src python scripts/lifecycle_smoke.py
"""

import json
import signal
import sqlite3
import subprocess
import sys
import tempfile
import threading
import time

from repro.server import AuthError, ClientError, DiagnosisClient

from cluster_smoke import wait_for_gateway_port  # scripts/ is sys.path[0]
from server_smoke import wait_for_port

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)


def spec(i):
    """Distinct-content specs: each probe value hashes to its own shard."""
    return {
        "unit": f"lifecycle-{i:03d}",
        "netlist_text": NETLIST,
        "probes": {"mid": 5.0 + 0.05 * i},
    }


def cli(*args):
    """Run ``python -m repro ...``; returns (returncode, stdout)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )
    return result.returncode, result.stdout


def main():
    tmp = tempfile.mkdtemp(prefix="repro-lifecycle-smoke-")
    store_path = f"{tmp}/store.db"
    backup_path = f"{tmp}/backup.db"

    # -- Gate 1: machine-readable provisioning ------------------------
    code, out = cli("tenants", "create", "acme", "--store", store_path, "--json")
    assert code == 0, out
    acme_key = json.loads(out)["api_key"]  # one compact line, no chatter
    code, out = cli(
        "tenants", "create", "globex", "--store", store_path,
        "--quota", "3", "--quota-interval", "3600", "--json",
    )
    assert code == 0, out
    globex_key = json.loads(out)["api_key"]
    print("tenants provisioned via --json ok")

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "cluster",
            "--port", "0", "--replicas", "2", "--workers", "2",
            "--store", store_path, "--checkpoint-interval", "2",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        port = wait_for_gateway_port(process)
        probe = DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2)
        ready = probe.ready()
        assert ready["replicas_ready"] == 2, ready
        assert "lifecycle" in ready, "readyz does not surface the lifecycle"
        print(f"gateway ready on port {port}, lifecycle surfaced in /readyz")

        # Warm one public row: the byte-identity witness for the backup.
        with DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2) as anon:
            cold = anon.diagnose(spec(0))
            assert cold["status"] == "ok", cold
            warm = anon.diagnose(spec(0))
            assert warm["cache_hit"], "repeat request must hit the cache"

        # -- Gate 2: one token bucket across both replicas ------------
        # Distinct-content specs shard across the ring, so the budget is
        # being debited from more than one replica process.
        with DiagnosisClient(
            port=port, timeout=60, api_key=globex_key, retries=0
        ) as globex:
            for i in range(1, 4):
                result = globex.diagnose(spec(i))
                assert result["status"] == "ok", result
            try:
                globex.diagnose(spec(4))
            except ClientError as exc:
                assert exc.status == 429, exc
                seconds = exc.retry_after_seconds
                assert seconds is not None and seconds > 0, exc.retry_after
                assert "." in (exc.retry_after or ""), (
                    f"Retry-After {exc.retry_after!r} is not float seconds"
                )
            else:
                raise AssertionError("4th request over the shared budget admitted")
        print(f"shared bucket ok: 3 admitted fleet-wide, 4th 429 "
              f"(Retry-After {seconds:.1f}s)")

        # -- Gate 3: online backup under live write load --------------
        stop = threading.Event()

        def load():
            i = 100
            while not stop.is_set():
                with DiagnosisClient(
                    port=port, timeout=60, retries=6, backoff=0.2
                ) as client:
                    client.diagnose(spec(i))
                i += 1

        loader = threading.Thread(target=load)
        loader.start()
        try:
            time.sleep(1.0)  # let writes build up
            code, out = cli("store", "backup", backup_path, "--store", store_path)
            assert code == 0, out
            assert json.loads(out)["bytes"] > 0, out
        finally:
            stop.set()
            loader.join()
        print("online backup under live load ok")

        # -- Gate 4: rotation invalidates the old key -----------------
        code, out = cli("tenants", "rotate", "acme", "--store", store_path, "--json")
        assert code == 0, out
        new_key = json.loads(out)["api_key"]
        time.sleep(6.0)  # the registry TTL (5s) is the advertised latency
        with DiagnosisClient(port=port, timeout=60, api_key=new_key) as fresh:
            assert fresh.diagnose(spec(5))["status"] == "ok"
        with DiagnosisClient(port=port, timeout=60, api_key=acme_key, retries=0) as stale:
            try:
                stale.diagnose(spec(6))
            except AuthError as exc:
                assert exc.status == 401, exc
            else:
                raise AssertionError("rotated-away key still accepted")
        print("rotation ok: new key admitted, old key 401 within TTL")

        metrics = probe.metrics()
        assert metrics["lifecycle"]["checkpoints"] >= 1, metrics["lifecycle"]
        print(f"lifecycle metrics ok: {metrics['lifecycle']['checkpoints']} "
              "checkpoint(s) while serving")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        assert returncode == 0, f"cluster drain exited {returncode}"
        print("graceful cluster drain ok (exit 0)")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    # -- Gate 5: scrub catches a corrupted row ------------------------
    conn = sqlite3.connect(backup_path)
    conn.execute(
        "UPDATE cache_entries SET blob = '{\"poisoned\": true}' "
        "WHERE rowid = (SELECT rowid FROM cache_entries ORDER BY seq DESC LIMIT 1)"
    )
    conn.commit()
    conn.close()
    code, out = cli("store", "scrub", "--store", backup_path)
    assert code == 0, out
    scrub = json.loads(out)
    assert scrub["purged"] == 1, scrub
    assert scrub["integrity"] == "ok", scrub
    print(f"scrub ok: purged {scrub['purged']} tampered row "
          f"of {scrub['checked']} checked")

    # -- Gate 6: the backup restores byte-identical warm hits ---------
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "--store", backup_path,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        port = wait_for_port(process)
        with DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2) as anon:
            revived = anon.diagnose(spec(0))
            assert revived["cache_hit"], "backup lost the warm cache row"
            assert revived["diagnosis"] == cold["diagnosis"], (
                "restored diagnosis drifted from the original"
            )
        print("backup restore ok: byte-identical disk cache hit")
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    print("lifecycle smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
