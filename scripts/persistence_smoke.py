"""End-to-end smoke test for the persistence plane — the CI gate.

Provisions two tenants in a fresh sqlite store, launches ``repro serve
--store`` on an ephemeral port, learns a rule and warms the cache, then
SIGKILLs the server mid-flight and restarts it on the same store.  The
restarted process must serve the same diagnosis as a *disk* cache hit
and still know the learned rule.  Along the way it checks tenant cache
isolation, quota enforcement (429 + Retry-After) and the fleet-health
report.  Exits non-zero on any failure, so CI can run it as a bare
step:

    PYTHONPATH=src python scripts/persistence_smoke.py
"""

import signal
import subprocess
import sys
import tempfile

from repro.server import AuthError, ClientError, DiagnosisClient
from repro.store import DiagnosisStore

from server_smoke import wait_for_port  # scripts/ is sys.path[0] when run directly

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)

#: Faulty divider with a confirmed repair, so the server learns a rule.
SPEC = {
    "unit": "smoke-unit",
    "netlist_text": NETLIST,
    "probes": {"mid": 7.5},
    "confirm": {"component": "Rbot", "mode": "open"},
}


def start_server(store_path):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "--store", store_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return process, wait_for_port(process)


def main():
    tmp = tempfile.mkdtemp(prefix="repro-persistence-smoke-")
    store_path = f"{tmp}/store.db"
    with DiagnosisStore(store_path) as store:
        acme_key = store.provision_tenant("acme")
        globex_key = store.provision_tenant(
            "globex", quota_limit=2, quota_interval=3600.0
        )

    process, port = start_server(store_path)
    try:
        with DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2) as anon, \
                DiagnosisClient(port=port, timeout=60, api_key=acme_key) as acme:
            cold = acme.diagnose(SPEC)
            assert cold["diagnosis"]["status"] == "faulty", cold
            assert not cold["cache_hit"], "first tenant request must miss"
            warm = acme.diagnose(SPEC)
            assert warm["cache_hit"], "repeat tenant request must hit"

            public = anon.diagnose(SPEC)
            assert not public["cache_hit"], "public saw a tenant's cache row"

            learned = anon.experience()
            assert learned["rules"], "no rule learned from the confirmed repair"
        print(f"warm run + isolation ok on port {port}")

        # Hard kill: no drain, no atexit — only sqlite's WAL protects us.
        process.kill()
        process.wait(timeout=30)
        print("server SIGKILLed mid-flight")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    process, port = start_server(store_path)
    try:
        with DiagnosisClient(port=port, timeout=60, retries=6, backoff=0.2) as anon, \
                DiagnosisClient(port=port, timeout=60, api_key=acme_key) as acme:
            revived = acme.diagnose(SPEC)
            assert revived["cache_hit"], "restart lost the tenant's cache"
            assert revived["diagnosis"] == cold["diagnosis"], "disk row drifted"

            restored = anon.experience()
            assert restored["rules"], "restart lost the learned experience"
        print("restart-warm cache + experience ok")

        with DiagnosisClient(
            port=port, timeout=60, api_key=globex_key, retries=0
        ) as globex:
            globex.diagnose(SPEC)
            globex.diagnose(SPEC)
            try:
                globex.diagnose(SPEC)
            except ClientError as exc:
                assert exc.status == 429, exc
                retry_after = getattr(exc, "retry_after", None)
                assert retry_after, "429 arrived without a Retry-After header"
            else:
                raise AssertionError("third request over quota was admitted")
        print("quota breach -> 429 ok")

        with DiagnosisClient(port=port, timeout=60, api_key=acme_key) as acme:
            report = acme.tenant_report("acme")
            assert report["history"]["total"] >= 3, report
            assert report["history"]["cache_hit_rate"] > 0, report
            assert report["top_culprits"], report
        print(f"tenant report ok: {report['history']['total']} run(s) on record")

        with DiagnosisClient(
            port=port, retries=0, timeout=10, api_key="rk_wrong"
        ) as bad:
            try:
                bad.tenant_report("acme")
            except AuthError as exc:
                assert exc.status == 401, exc
            else:
                raise AssertionError("bad key read a tenant report")
        print("auth rejection ok")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        assert returncode == 0, f"drain exited {returncode}"
        print("graceful drain ok (exit 0)")
        print("persistence smoke test passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
