"""End-to-end integration: netlist text in, confirmed repair out.

These tests exercise the whole stack the way a downstream user would:
parse a netlist, simulate a defect, run a troubleshooting session with
strategy-driven probing, refine with fault modes, learn, and persist.
"""

import pytest

from repro import (
    DCSolver,
    ExperienceBase,
    Fault,
    FaultKind,
    Flames,
    TroubleshootingSession,
    apply_fault,
    parse_netlist,
    probe,
)

BOARD = """
.title regression board
Vcc vcc 0 15
Rb1 vcc base 100k tol=0.05
Rb2 base 0 47k tol=0.05
Q1 vcc base out 200 vbe=0.7
Rload out 0 4.7k tol=0.05
Rsense out tap 1k tol=0.05
Rtap tap 0 9k tol=0.05
"""


@pytest.fixture(scope="module")
def golden():
    return parse_netlist(BOARD)


class TestEndToEnd:
    def test_healthy_unit_clears(self, golden):
        session = TroubleshootingSession(golden)
        bench = DCSolver(golden).solve()
        for net in ("out", "tap"):
            session.observe_probe(bench, net, imprecision=0.01)
        assert session.unit_looks_healthy

    def test_full_repair_cycle(self, golden):
        fault = Fault(FaultKind.PARAM, "Rload", value=9.4e3)
        bench = DCSolver(apply_fault(golden, fault)).solve()
        shop = ExperienceBase()
        session = TroubleshootingSession(golden, experience=shop)

        session.observe_probe(bench, "tap", imprecision=0.01)
        assert not session.unit_looks_healthy

        # Strategy-driven probing until the pool is exhausted or small.
        for _ in range(4):
            recommendation = session.recommend_next()
            if recommendation is None:
                break
            session.observe_probe(bench, recommendation.point[2:-1], imprecision=0.01)

        assert "Rload" in dict(session.candidates())
        best = session.refinements(top_k=1)[0]
        assert best.component == "Rload"
        assert best.mode == "high"
        session.confirm(best.component, best.mode)
        assert len(shop) == 1

    def test_experience_round_trips_through_disk(self, golden, tmp_path):
        fault = Fault(FaultKind.SHORT, "Rb2")
        bench = DCSolver(apply_fault(golden, fault)).solve()
        shop = ExperienceBase()
        session = TroubleshootingSession(golden, experience=shop)
        for net in ("out", "tap", "base"):
            session.observe_probe(bench, net, imprecision=0.01)
        session.confirm("Rb2", "short")

        store = tmp_path / "shop.json"
        shop.save(store)
        revived = ExperienceBase.load(store)

        # A new session over the same symptoms benefits from the memory.
        session2 = TroubleshootingSession(golden, experience=revived)
        bench2 = DCSolver(apply_fault(golden, fault)).solve()
        for net in ("out", "tap", "base"):
            session2.observe_probe(bench2, net, imprecision=0.01)
        assert session2.matching_experience()
        assert session2.candidates()[0][0] == "Rb2"

    def test_flames_and_dictionary_agree_on_tabulated_faults(self, golden):
        from repro.baselines import FaultDictionary

        probes = ["out", "tap", "base"]
        dictionary = FaultDictionary(golden, probes)
        engine = Flames(golden)
        fault = Fault(FaultKind.OPEN, "Rtap")
        op = DCSolver(apply_fault(golden, fault)).solve()
        match = dictionary.lookup_op(op)
        assert (match.component, match.mode) == ("Rtap", "open")
        result = engine.diagnose(
            [probe(op, n, imprecision=0.01) for n in probes]
        )
        assert "Rtap" in result.suspicions

    def test_diagnose_is_idempotent(self, golden):
        fault = Fault(FaultKind.PARAM, "Rload", value=9.4e3)
        bench = DCSolver(apply_fault(golden, fault)).solve()
        engine = Flames(golden)
        measurements = [probe(bench, "tap", imprecision=0.01)]
        first = engine.diagnose(measurements)
        second = engine.diagnose(measurements)
        assert [repr(n) for n in first.nogoods] == [repr(n) for n in second.nogoods]
        assert first.suspicions == second.suspicions
