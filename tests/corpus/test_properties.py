"""Property tests for the corpus plane (hypothesis).

Three invariants the corpus rests on:

* every netlist the topology families produce is well-formed (ground
  reference, no dangling nets) and survives the SPICE-subset round trip
  with its electrical content intact;
* ``apply_fault`` is a pure function: the golden circuit is never
  mutated and the same fault always yields the same faulty clone;
* corpus generation is deterministic: the same ``(seed, classes,
  per_class)`` recipe yields byte-identical manifests, and each class's
  stream is independent of which other classes were requested.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.faults import Fault, FaultKind, apply_fault, apply_faults
from repro.circuit.spice import parse_netlist, write_netlist
from repro.corpus import CorpusManifest, FAMILIES, generate_corpus

_family_index = st.integers(min_value=0, max_value=len(FAMILIES) - 1)
_size_index = st.integers(min_value=0, max_value=7)
_seed = st.integers(min_value=0, max_value=2**32 - 1)


def _build(family_index, size_index, seed):
    family = FAMILIES[family_index]
    size = family.sizes[size_index % len(family.sizes)]
    return family, family.build(size, random.Random(seed))


def _draw_fault(family, circuit, seed):
    rng = random.Random(seed)
    component = rng.choice(family.faultable(circuit))
    kind = rng.choice((FaultKind.OPEN, FaultKind.SHORT, FaultKind.DRIFT))
    value = rng.uniform(0.1, 0.6) if kind is FaultKind.DRIFT else 0.0
    return Fault(kind, component, value=value)


class TestGeneratedNetlists:
    @given(_family_index, _size_index, _seed)
    @settings(max_examples=40, deadline=None)
    def test_well_formed_and_connected(self, family_index, size_index, seed):
        family, circuit = _build(family_index, size_index, seed)
        circuit.validate()  # ground reference present, no dangling nets
        assert family.faultable(circuit), "family must expose fault targets"
        probes = family.probe_nets(circuit)
        assert probes, "family must expose probe nets"
        net_names = {n.name for n in circuit.non_ground_nets}
        assert set(probes) <= net_names

    @given(_family_index, _size_index, _seed)
    @settings(max_examples=40, deadline=None)
    def test_netlist_round_trip(self, family_index, size_index, seed):
        _, circuit = _build(family_index, size_index, seed)
        rebuilt = parse_netlist(write_netlist(circuit), name=circuit.name)
        assert rebuilt.fingerprint() == circuit.fingerprint()


class TestApplyFaultPurity:
    @given(_family_index, _size_index, _seed, _seed)
    @settings(max_examples=40, deadline=None)
    def test_never_mutates_and_deterministic(
        self, family_index, size_index, seed, fault_seed
    ):
        family, circuit = _build(family_index, size_index, seed)
        fault = _draw_fault(family, circuit, fault_seed)
        before = circuit.fingerprint()
        first = apply_fault(circuit, fault)
        second = apply_fault(circuit, fault)
        assert circuit.fingerprint() == before, "golden circuit mutated"
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() != before, "fault left no electrical trace"

    @given(_family_index, _size_index, _seed, _seed)
    @settings(max_examples=20, deadline=None)
    def test_intermittent_applies_its_base(
        self, family_index, size_index, seed, fault_seed
    ):
        family, circuit = _build(family_index, size_index, seed)
        base = _draw_fault(family, circuit, fault_seed)
        wrapped = Fault(FaultKind.INTERMITTENT, base.component, base=base)
        assert (
            apply_fault(circuit, wrapped).fingerprint()
            == apply_fault(circuit, base).fingerprint()
        )

    @given(_family_index, _size_index, _seed, _seed, _seed)
    @settings(max_examples=20, deadline=None)
    def test_multi_fault_composition_is_pure(
        self, family_index, size_index, seed, seed_a, seed_b
    ):
        family, circuit = _build(family_index, size_index, seed)
        faults = [
            _draw_fault(family, circuit, seed_a),
            _draw_fault(family, circuit, seed_b),
        ]
        before = circuit.fingerprint()
        first = apply_faults(circuit, faults)
        second = apply_faults(circuit, faults)
        assert circuit.fingerprint() == before
        assert first.fingerprint() == second.fingerprint()

    @given(_family_index, _size_index, _seed, _seed)
    @settings(max_examples=20, deadline=None)
    def test_fault_serialisation_round_trip(
        self, family_index, size_index, seed, fault_seed
    ):
        family, circuit = _build(family_index, size_index, seed)
        base = _draw_fault(family, circuit, fault_seed)
        for fault in (base, Fault(FaultKind.INTERMITTENT, base.component, base=base)):
            assert Fault.from_dict(fault.to_dict()) == fault


class TestCorpusDeterminism:
    # The cheap, engine-free classes; intermittent determinism is pinned
    # by its golden manifest (tests/golden) and the full-corpus test below.
    _CLASSES = ["single-hard", "multi-fault", "tolerance-stackup"]

    @given(_seed)
    @settings(max_examples=10, deadline=None)
    def test_same_seed_byte_identical(self, seed):
        first = generate_corpus(seed, 1, self._CLASSES)
        second = generate_corpus(seed, 1, self._CLASSES)
        assert first.to_json() == second.to_json()

    @given(_seed)
    @settings(max_examples=10, deadline=None)
    def test_class_streams_independent(self, seed):
        full = generate_corpus(seed, 1, self._CLASSES)
        solo = generate_corpus(seed, 1, ["multi-fault"])
        assert [s.to_dict() for s in full.by_class()["multi-fault"]] == [
            s.to_dict() for s in solo.scenarios
        ]

    @given(_seed)
    @settings(max_examples=10, deadline=None)
    def test_manifest_json_round_trip(self, seed):
        manifest = generate_corpus(seed, 1, self._CLASSES)
        assert CorpusManifest.from_json(manifest.to_json()).to_json() == manifest.to_json()

    def test_full_corpus_same_seed_byte_identical(self):
        # All six classes, including the engine-verified intermittent one.
        first = generate_corpus(23, 1)
        second = generate_corpus(23, 1)
        assert first.to_json() == second.to_json()
