"""Cross-kernel differential over every corpus scenario class.

One small seeded corpus (two scenarios per class) runs through both
kernels scenario by scenario; the full ranked candidate list, suspicion
degrees and weighted-nogood structure must agree to 1e-9.  Intermittent
scenarios additionally assert the fuzzy-ATMS signature the corpus
generator promises: at least one *low-degree* nogood — a weighted
nogood whose inconsistency degree is strictly inside (0, 1) — with the
true culprit among the suspects.
"""

import math

import pytest

from repro.core.diagnosis import Flames, FlamesConfig
from repro.corpus import CERTAIN, CLASSES, generate_corpus, ranking_from_payload
from repro.service.jobs import diagnosis_to_dict

SEED = 29
PER_CLASS = 2
TOL = 1e-9


@pytest.fixture(scope="module")
def payloads():
    """{(scenario id, kernel): diagnosis payload} for the whole corpus."""
    manifest = generate_corpus(SEED, PER_CLASS)
    table = {}
    for scenario in manifest.scenarios:
        for kernel in ("reference", "fast"):
            engine = Flames(scenario.circuit(), FlamesConfig(kernel=kernel))
            result = engine.diagnose(scenario.to_measurements())
            table[(scenario.id, kernel)] = diagnosis_to_dict(result)
    return manifest, table


@pytest.mark.parametrize("scenario_class", CLASSES)
def test_identical_ranked_candidates(scenario_class, payloads):
    manifest, table = payloads
    scenarios = manifest.by_class()[scenario_class]
    assert len(scenarios) == PER_CLASS
    for scenario in scenarios:
        ref = table[(scenario.id, "reference")]
        fast = table[(scenario.id, "fast")]
        assert ref["status"] == fast["status"], scenario.id

        ranked_ref = ranking_from_payload(ref)
        ranked_fast = ranking_from_payload(fast)
        assert [c for c, _ in ranked_ref] == [c for c, _ in ranked_fast], scenario.id
        for (_, dr), (_, df) in zip(ranked_ref, ranked_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL), scenario.id

        ng_ref = sorted((tuple(ng["components"]), ng["degree"]) for ng in ref["nogoods"])
        ng_fast = sorted((tuple(ng["components"]), ng["degree"]) for ng in fast["nogoods"])
        assert [k for k, _ in ng_ref] == [k for k, _ in ng_fast], scenario.id
        for (_, dr), (_, df) in zip(ng_ref, ng_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL), scenario.id

        cand_ref = [(tuple(c["components"]), c["degree"]) for c in ref["candidates"]]
        cand_fast = [(tuple(c["components"]), c["degree"]) for c in fast["candidates"]]
        assert [k for k, _ in cand_ref] == [k for k, _ in cand_fast], scenario.id
        for (_, dr), (_, df) in zip(cand_ref, cand_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL), scenario.id


def test_intermittent_scenarios_surface_low_degree_nogoods(payloads):
    manifest, table = payloads
    for scenario in manifest.by_class()["intermittent"]:
        for kernel in ("reference", "fast"):
            payload = table[(scenario.id, kernel)]
            degrees = [ng["degree"] for ng in payload["nogoods"]]
            assert degrees, f"{scenario.id}/{kernel}: no nogoods at all"
            partial = [d for d in degrees if 1e-6 < d < CERTAIN]
            assert partial, (
                f"{scenario.id}/{kernel}: no low-degree nogood "
                f"(degrees: {[round(d, 6) for d in degrees]})"
            )
            culprit = scenario.expected[0]
            assert culprit in payload["suspicions"], (
                f"{scenario.id}/{kernel}: culprit {culprit} not among suspects"
            )


def test_persistent_hard_faults_pin_full_degree(payloads):
    """The contrast that makes low-degree meaningful: a persistent hard
    defect produces at least one frankly inconsistent (degree 1) nogood."""
    manifest, table = payloads
    for scenario in manifest.by_class()["single-hard"]:
        for kernel in ("reference", "fast"):
            degrees = [
                ng["degree"] for ng in table[(scenario.id, kernel)]["nogoods"]
            ]
            assert degrees, f"{scenario.id}/{kernel}: no nogoods at all"
            assert any(d >= CERTAIN for d in degrees), (
                f"{scenario.id}/{kernel}: persistent defect without a "
                f"full-degree nogood (degrees: {[round(d, 6) for d in degrees]})"
            )
