"""Unit tests for corpus scoring, reporting and the accuracy floor."""

import math

import pytest

from repro.corpus import (
    CorpusReport,
    ScenarioOutcome,
    check_floor,
    generate_corpus,
    low_degree_nogoods,
    no_certain_culprit,
    percentile,
    rank_of_true_fault,
    ranking_from_payload,
    run_corpus,
    scenario_hit,
)

FAULTY = {
    "status": "faulty",
    "suspicions": {"R1": 1.0, "R2": 0.8, "R3": 0.8, "amp1": 0.2},
    "nogoods": [
        {"components": ["R1", "R2"], "degree": 1.0},
        {"components": ["R3"], "degree": 0.4},
    ],
}
CONSISTENT = {"status": "consistent", "suspicions": {}, "nogoods": []}


class TestMetrics:
    def test_ranking_breaks_ties_by_name(self):
        assert [c for c, _ in ranking_from_payload(FAULTY)] == ["R1", "R2", "R3", "amp1"]

    def test_rank_of_true_fault(self):
        assert rank_of_true_fault(FAULTY, ["R1"]) == 1
        assert rank_of_true_fault(FAULTY, ["R3"]) == 3
        assert rank_of_true_fault(FAULTY, ["amp1", "R2"]) == 2  # best of several
        assert rank_of_true_fault(FAULTY, ["nope"]) is None
        assert rank_of_true_fault(FAULTY, []) is None

    def test_stackup_scoring(self):
        assert no_certain_culprit(CONSISTENT)
        assert not no_certain_culprit(FAULTY)  # R1 indicted with certainty
        soft = dict(FAULTY, suspicions={"R1": 0.7, "R2": 0.3})
        assert no_certain_culprit(soft)
        assert scenario_hit([], CONSISTENT, 1)
        assert scenario_hit([], soft, 5)
        assert not scenario_hit([], FAULTY, 1)

    def test_scenario_hit_with_ground_truth(self):
        assert scenario_hit(["R1"], FAULTY, 1)
        assert not scenario_hit(["R3"], FAULTY, 1)
        assert scenario_hit(["R3"], FAULTY, 3)

    def test_low_degree_nogoods(self):
        assert low_degree_nogoods(FAULTY)  # the 0.4 nogood
        hard_only = {"nogoods": [{"components": ["R1"], "degree": 1.0}]}
        assert not low_degree_nogoods(hard_only)
        assert not low_degree_nogoods(CONSISTENT)

    def test_percentile(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 95) == 3.0
        assert math.isclose(percentile([1.0, 2.0, 3.0, 4.0], 50), 2.5)
        assert math.isclose(percentile([4.0, 1.0, 3.0, 2.0], 0), 1.0)
        assert math.isclose(percentile([4.0, 1.0, 3.0, 2.0], 100), 4.0)


def _outcome(cls, kernel, rank, top1, elapsed=0.01, status="ok"):
    return ScenarioOutcome(
        id=f"{cls}-x",
        scenario_class=cls,
        kernel=kernel,
        status=status,
        rank=rank,
        hits={1: top1, 3: True},
        low_degree=False,
        elapsed=elapsed,
    )


def _report(top1_hits):
    report = CorpusReport(seed=1, top_k=(1, 3), kernels=("reference",))
    for hit in top1_hits:
        report.outcomes.append(_outcome("single-hard", "reference", 1, hit))
    return report


class TestReportAndFloor:
    def test_stats_include_overall_row(self):
        report = _report([True, False])
        table = report.to_dict()
        cell = table["kernels"]["reference"]
        assert set(cell) == {"single-hard", "overall"}
        assert cell["single-hard"]["accuracy"]["top1"] == 0.5
        assert cell["overall"]["accuracy"]["n"] == 2
        assert table["scenarios"] == 2

    def test_canonical_report_excludes_latency(self):
        report = _report([True])
        assert "latency" not in report.to_dict()["kernels"]["reference"]["single-hard"]
        withlat = report.to_dict(include_latency=True)
        assert "latency" in withlat["kernels"]["reference"]["single-hard"]

    def test_floor_holds(self):
        report = _report([True, True, False, True])
        floor = {"top1": {"single-hard": 0.75, "overall": 0.7}}
        assert check_floor(report, floor) == []

    def test_floor_breach_reported(self):
        report = _report([True, False, False, False])
        floor = {"top1": {"single-hard": 0.75}}
        breaches = check_floor(report, floor)
        assert len(breaches) == 1
        assert "single-hard" in breaches[0] and "0.250" in breaches[0]

    def test_floor_missing_class_is_a_breach(self):
        report = _report([True])
        breaches = check_floor(report, {"top1": {"intermittent": 0.5}})
        assert breaches and "missing" in breaches[0]

    def test_floor_nested_under_floors_key(self):
        report = _report([True])
        wrapped = {"comment": "x", "floors": {"top1": {"single-hard": 0.5}}}
        assert check_floor(report, wrapped) == []


class TestRunCorpus:
    @pytest.fixture(scope="class")
    def tiny(self):
        return generate_corpus(13, 1, ["single-hard", "tolerance-stackup"])

    def test_serial_run_reports_both_kernels(self, tiny):
        report = run_corpus(tiny, workers=1, executor="serial")
        assert set(report.to_dict()["kernels"]) == {"reference", "fast"}
        assert len(report.outcomes) == 2 * len(tiny)
        assert all(o.completed for o in report.outcomes)

    def test_report_byte_stable_across_runs(self, tiny):
        first = run_corpus(tiny, kernels=("reference",), workers=1, executor="serial")
        second = run_corpus(tiny, kernels=("reference",), workers=1, executor="serial")
        assert first.to_json() == second.to_json()

    def test_unknown_kernel_rejected(self, tiny):
        with pytest.raises(ValueError):
            run_corpus(tiny, kernels=("warp",), workers=1, executor="serial")
