"""Tests for the ATMS growth study."""

import pytest

from repro.experiments.atms_growth import format_atms_growth, run_atms_growth


@pytest.fixture(scope="module")
def rows():
    return run_atms_growth(conflict_counts=(2, 4, 6))


class TestGrowth:
    def test_nogood_list_linear(self, rows):
        assert [r.nogoods for r in rows] == [2, 4, 6]

    def test_diagnoses_exponential(self, rows):
        assert [r.diagnoses_all for r in rows] == [4, 16, 64]

    def test_threshold_restricts_explosion(self, rows):
        """The paper: the sorted weighted list 'restricts the effect of
        explosion' — only the serious conflicts demand explanation."""
        for row in rows:
            assert row.diagnoses_serious == 2 ** (row.conflicts // 2)
            assert row.diagnoses_serious < row.diagnoses_all

    def test_interpretations_grow(self, rows):
        counts = [r.interpretations for r in rows]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_format(self, rows):
        assert "interpretations" in format_atms_growth(rows)
