"""Tests for the multiple-fault experiment."""

import pytest

from repro.experiments.multifault import (
    DOUBLE_FAULT,
    format_multifault,
    run_multifault,
)


@pytest.fixture(scope="module")
def outcomes():
    return run_multifault()


class TestMultiFault:
    def test_single_fault_bound_finds_nothing(self, outcomes):
        by_size = {o.max_size: o for o in outcomes}
        assert by_size[1].result.diagnoses == []
        assert not by_size[1].single_fault_explains

    def test_pair_found_at_double_bound(self, outcomes):
        by_size = {o.max_size: o for o in outcomes}
        assert by_size[2].pair_found

    def test_pair_is_the_injected_components(self):
        assert {f.component for f in DOUBLE_FAULT} == {"amp2", "amp3"}

    def test_higher_bounds_keep_minimality(self, outcomes):
        by_size = {o.max_size: o for o in outcomes}
        # The minimal pair stays minimal — no triple supersedes it.
        assert by_size[3].candidate_sets == by_size[2].candidate_sets

    def test_suspicions_exclude_healthy_branch(self, outcomes):
        by_size = {o.max_size: o for o in outcomes}
        suspicions = by_size[2].result.suspicions
        assert "amp2" in suspicions and "amp3" in suspicions
        assert "amp1" not in suspicions
        assert "Va" not in suspicions

    def test_format(self, outcomes):
        text = format_multifault(outcomes)
        assert "amp2,amp3" in text
