"""Tests for the dictionary-vs-FLAMES experiment."""

import pytest

from repro.experiments import format_dictionary_eval, run_dictionary_eval


@pytest.fixture(scope="module")
def rows():
    return run_dictionary_eval()


class TestDictionaryEval:
    def test_four_defect_classes(self, rows):
        assert len(rows) == 4

    def test_tabulated_fault_both_succeed(self, rows):
        row = rows[0]
        assert row.dictionary_correct and row.flames_covers

    def test_novel_drift_dictionary_fails_flames_covers(self, rows):
        row = next(r for r in rows if "novel" in r.label)
        assert not row.dictionary_correct
        assert row.flames_covers

    def test_double_fault_only_flames_names_pair(self, rows):
        row = next(r for r in rows if "double" in r.label)
        assert not row.dictionary_correct
        assert row.flames_covers

    def test_format(self, rows):
        text = format_dictionary_eval(rows)
        assert "dictionary says" in text
