"""Tests for the experiment drivers (paper tables/figures regenerate)."""

import pytest

from repro.experiments import (
    FIGURE7_SCENARIOS,
    format_figure2,
    format_figure5,
    format_figure7,
    format_learning_eval,
    format_scaling,
    run_figure2,
    run_figure2_masking,
    run_figure5,
    run_figure7,
    run_learning_eval,
    run_scaling,
    run_threshold_ablation,
    run_tnorm_ablation,
    run_entropy_form_ablation,
    run_granularity_ablation,
)
from repro.experiments.runner import format_table


class TestRunnerTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"], [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long-header" in lines[0]


class TestFigure2:
    def test_propagation_matches_paper_numbers(self):
        rows = {r.quantity: r for r in run_figure2()}
        # Paper case (1): Vb[2.95, 3.05, 0.15, 0.15] (rounded).
        assert rows["Vb"].crisp_case.core == (2.95, 3.05)
        assert rows["Vb"].crisp_case.alpha == pytest.approx(0.15, abs=0.005)
        # Paper case (2): Vd[9, 9, 0.73, 0.77].
        assert rows["Vd"].fuzzy_case.alpha == pytest.approx(0.73, abs=0.005)
        assert rows["Vd"].fuzzy_case.beta == pytest.approx(0.77, abs=0.005)

    def test_masking_demonstration(self):
        crisp, fuzzy = run_figure2_masking()
        assert crisp.fault_masked
        assert not fuzzy.fault_masked
        assert 0.0 < fuzzy.consistency_degree < 1.0

    def test_format_contains_verdict(self):
        text = format_figure2()
        assert "fault exposed" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5()

    def test_paper_nogoods_reproduced(self, result):
        assert result.paper_nogoods_found

    def test_crisp_engine_gives_no_ordering(self, result):
        assert all(deg >= 0.999 for _, deg in result.crisp_nogoods)

    def test_fuzzy_ranks_candidates(self, result):
        degrees = dict(result.fuzzy_nogoods)
        assert degrees["d1,r1"] < degrees["d1,r2"]

    def test_format(self, result):
        assert "reproduced: yes" in format_figure5()


class TestFigure7:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure7()

    def test_every_scenario_detected(self, rows):
        assert all(row.detected for row in rows)

    def test_hard_faults_total_conflicts(self, rows):
        by_label = {row.scenario.label: row for row in rows}
        for label in ("short-R2", "open-R3", "open-N1"):
            dcs = by_label[label].result.consistencies
            assert all(c.degree == pytest.approx(0.0) for c in dcs.values())

    def test_soft_faults_partial_conflicts(self, rows):
        by_label = {row.scenario.label: row for row in rows}
        soft = by_label["soft-stage1"].result.consistencies
        assert any(0.0 < c.degree < 1.0 for c in soft.values())

    def test_stage2_fault_leaves_v1_consistent(self, rows):
        by_label = {row.scenario.label: row for row in rows}
        dcs = by_label["soft-stage2"].result.consistencies
        assert dcs["V(v1)"].degree == pytest.approx(1.0)
        assert dcs["V(v2)"].degree < 1.0

    def test_open_r3_signs_decisive(self, rows):
        by_label = {row.scenario.label: row for row in rows}
        dcs = by_label["open-R3"].result.consistencies
        assert dcs["V(v1)"].direction == 1  # divider output pulled up
        assert dcs["V(vs)"].direction == -1

    def test_injected_component_among_candidates(self, rows):
        for row in rows:
            if row.scenario.fault.kind.name == "NODE_OPEN":
                continue  # the node fault has no component-level candidate
            assert row.stage_localised, row.scenario.label

    def test_fault_mode_refinement_finds_short(self, rows):
        by_label = {row.scenario.label: row for row in rows}
        assert "R2" in by_label["short-R2"].refined[:2]
        assert "R3" in by_label["open-R3"].refined[:1]

    def test_format(self, rows):
        text = format_figure7(rows)
        assert "Short circuit on R2" in text
        assert "Dc(V1)" in text

    def test_scenario_catalogue_complete(self):
        assert len(FIGURE7_SCENARIOS) == 5


class TestScaling:
    def test_rows_and_masking_shape(self):
        rows = run_scaling(stage_counts=(2, 4))
        assert [r.stages for r in rows] == [2, 4]
        for row in rows:
            assert row.fuzzy_detected  # the fuzzy engine sees the drift
            assert row.fuzzy_spread <= row.crisp_spread + 1e-9

    def test_spread_grows_with_depth(self):
        rows = run_scaling(stage_counts=(2, 6))
        assert rows[1].fuzzy_spread > rows[0].fuzzy_spread

    def test_format(self):
        assert "stages" in format_scaling(run_scaling(stage_counts=(2,)))


class TestLearningEval:
    def test_learning_never_hurts_and_helps_repeats(self):
        rows = run_learning_eval()
        for row in rows:
            if row.rank_before is not None and row.rank_after is not None:
                assert row.rank_after <= row.rank_before
        assert any(
            row.rank_after is not None
            and row.rank_before is not None
            and row.rank_after < row.rank_before
            for row in rows
        )

    def test_certainty_grows_with_repetition(self):
        rows = run_learning_eval()
        by_fault = {}
        for row in rows:
            by_fault.setdefault(row.culprit, []).append(row.rule_certainty)
        assert max(by_fault["R2"]) > 0.6

    def test_format(self):
        assert "rank after" in format_learning_eval(run_learning_eval())


class TestAblations:
    def test_threshold_monotone(self):
        rows = run_threshold_ablation(thresholds=(0.05, 0.5))
        # Higher threshold records fewer (or equal) nogoods.
        assert rows[1][2] <= rows[0][2]

    def test_tnorms_all_detect(self):
        rows = run_tnorm_ablation()
        assert all(detected == 5 for _, detected, _ in rows)

    def test_entropy_forms(self):
        rows = dict(
            (name, (centroid, width))
            for name, centroid, width in run_entropy_form_ablation()
        )
        ext = rows["extension-principle"]
        prod = rows["paper product form"]
        assert prod[1] >= ext[1]  # the literal product form is wider

    def test_granularity_rows(self):
        rows = run_granularity_ablation(granularities=(3, 5))
        assert [g for g, _, _ in rows] == [3, 5]
        assert all(point.startswith("V(") for _, point, _ in rows)


class TestStrategyLadder:
    def test_deterministic(self):
        from repro.experiments import run_strategy_eval_ladder

        assert run_strategy_eval_ladder() == run_strategy_eval_ladder()

    def test_planners_isolate_with_culprit(self):
        from repro.experiments import run_strategy_eval_ladder

        outcomes = run_strategy_eval_ladder()
        for o in outcomes:
            if o.planner != "random":
                assert o.isolated and o.culprit_found, o


class TestEnvelopeValidation:
    def test_full_monte_carlo_coverage(self):
        from repro.experiments import run_envelope_validation

        rows = run_envelope_validation(samples=60)
        for net, envelope, observed, corner, coverage in rows:
            assert coverage == 1.0, net
            assert envelope >= observed - 1e-6, net

    def test_envelope_not_absurdly_wide(self):
        """First-order spread accumulation stays within ~2x the realised
        Monte Carlo range (the one-at-a-time corner band underestimates
        joint-tolerance extremes, so the sampled range is the yardstick)."""
        from repro.experiments import run_envelope_validation

        rows = run_envelope_validation(samples=60)
        for net, envelope, observed, corner, coverage in rows:
            assert envelope <= 2.5 * observed + 1e-6, net
