"""Tests for the dynamic-mode experiment."""

import pytest

from repro.experiments.dynamic_eval import format_dynamic_eval, run_dynamic_eval


@pytest.fixture(scope="module")
def rows():
    return run_dynamic_eval()


class TestDynamicEval:
    def test_static_is_blind(self, rows):
        assert all(not r.static_detects for r in rows)

    def test_dynamic_detects_everything(self, rows):
        assert all(r.dynamic_detects for r in rows)

    def test_culprits_blamed(self, rows):
        assert all(r.culprit_blamed for r in rows)

    def test_format(self, rows):
        text = format_dynamic_eval(rows)
        assert "NO (blind)" in text
