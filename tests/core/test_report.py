"""Tests for report rendering."""

import pytest

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.core import Flames
from repro.core.knowledge import KnowledgeBase
from repro.core.report import render_consistency_row, render_nogoods, render_report


@pytest.fixture(scope="module")
def engine():
    return Flames(three_stage_amplifier())


@pytest.fixture(scope="module")
def faulty_result(engine):
    golden = three_stage_amplifier()
    op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
    return engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))


@pytest.fixture(scope="module")
def healthy_result(engine):
    op = DCSolver(three_stage_amplifier()).solve()
    return engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))


class TestRendering:
    def test_full_report_sections(self, faulty_result):
        text = render_report(faulty_result)
        assert "measurements vs predictions" in text
        assert "minimal nogoods" in text
        assert "component suspicions" in text
        assert "minimal candidates" in text

    def test_healthy_report_short(self, healthy_result):
        text = render_report(healthy_result)
        assert "behaves nominally" in text
        assert "nogoods" not in text

    def test_refinements_included(self, engine, faulty_result):
        golden = three_stage_amplifier()
        kb = KnowledgeBase(golden)
        refinements = kb.refine(
            faulty_result.suspicions, faulty_result.measurements, top_k=3
        )
        text = render_report(faulty_result, refinements)
        assert "fault-mode refinement" in text

    def test_consistency_row_format(self, faulty_result):
        row = render_consistency_row(faulty_result, ["V(vs)", "V(v1)"])
        assert "Dc(V(vs))" in row
        assert "Dc(V(v1))=-1.00" in row

    def test_nogood_lines_capped(self, faulty_result):
        lines = render_nogoods(faulty_result, limit=1)
        assert len(lines) <= 2  # one nogood + optional "... more"

    def test_custom_title(self, healthy_result):
        text = render_report(healthy_result, title="bench check")
        assert text.startswith("bench check\n===========")
