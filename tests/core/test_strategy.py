"""Tests for fuzzy-entropy best-test selection."""

import pytest

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.core import Flames
from repro.core.strategy import BestTestPlanner
from repro.fuzzy.linguistic import faultiness_scale


@pytest.fixture(scope="module")
def engine():
    return Flames(three_stage_amplifier())


@pytest.fixture(scope="module")
def faulty_result(engine):
    golden = three_stage_amplifier()
    op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
    return engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))


@pytest.fixture(scope="module")
def healthy_result(engine):
    op = DCSolver(three_stage_amplifier()).solve()
    return engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))


class TestEstimations:
    def test_every_component_estimated(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        estimations = planner.estimations(faulty_result)
        assert set(estimations) == {c.name for c in engine.circuit.components}

    def test_suspects_estimated_faulty_side(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        estimations = planner.estimations(faulty_result)
        assert estimations["R2"].centroid > estimations["R6"].centroid

    def test_entropy_measures_estimation_uncertainty(
        self, engine, faulty_result, healthy_result
    ):
        """Certainty of *either* kind beats an all-unknown system.

        The fuzzy entropy scores how undecided the faultiness
        estimations are: a healthy unit (everything classified correct)
        and a well-localised fault both sit far below the hypothetical
        all-unknown state.
        """
        from repro.fuzzy import fuzzy_entropy
        from repro.fuzzy.linguistic import FAULTINESS_5

        planner = BestTestPlanner(engine)
        n = len(engine.circuit.components)
        unknown = fuzzy_entropy([FAULTINESS_5.term("unknown").value] * n)
        assert planner.system_entropy(healthy_result).centroid < unknown.centroid
        assert planner.system_entropy(faulty_result).centroid < unknown.centroid


class TestRecommendation:
    def test_candidates_exclude_measured(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        points = planner.candidate_points(faulty_result)
        assert "V(vs)" not in points
        assert "V(n1)" in points

    def test_available_pool_respected(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        ranked = planner.recommend(faulty_result, available=["V(n1)", "V(n2)"])
        assert {r.point for r in ranked} == {"V(n1)", "V(n2)"}

    def test_ranking_sorted_by_expected_entropy(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        ranked = planner.recommend(faulty_result)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores)

    def test_recommends_discriminating_probe(self, engine, faulty_result):
        """The planner prefers an internal stage node over the supply."""
        planner = BestTestPlanner(engine)
        best = planner.best(faulty_result)
        assert best.point in ("V(n1)", "V(n2)")

    def test_stage1_bias_node_ranks_first(self, engine, faulty_result):
        """With stage 1 suspect, its bias node is the most informative."""
        planner = BestTestPlanner(engine)
        ranked = planner.recommend(
            faulty_result, available=["V(n1)", "V(n2)", "V(vcc)"]
        )
        assert ranked[0].point == "V(n1)"

    def test_supply_probe_has_narrow_support(self, engine, faulty_result):
        """V(vcc) is supported by the source alone."""
        planner = BestTestPlanner(engine)
        ranked = {r.point: r for r in planner.recommend(faulty_result)}
        assert ranked["V(vcc)"].supporters == frozenset({"Vcc"})

    def test_no_candidates_returns_none(self, engine, faulty_result):
        planner = BestTestPlanner(engine)
        assert planner.best(faulty_result, available=[]) is None

    def test_conflict_weight_tracks_suspicion(
        self, engine, faulty_result, healthy_result
    ):
        """Probes over suspect supporters expect conflicts; a healthy
        unit's probes expect none."""
        planner = BestTestPlanner(engine)
        faulty_rec = {r.point: r for r in planner.recommend(faulty_result)}
        healthy_rec = {r.point: r for r in planner.recommend(healthy_result)}
        assert (
            faulty_rec["V(n1)"].conflict_weight.centroid
            > healthy_rec["V(n1)"].conflict_weight.centroid
        )

    def test_granularity_configurable(self, engine, faulty_result):
        coarse = BestTestPlanner(engine, scale=faultiness_scale(3))
        fine = BestTestPlanner(engine, scale=faultiness_scale(9))
        assert coarse.best(faulty_result) is not None
        assert fine.best(faulty_result) is not None
