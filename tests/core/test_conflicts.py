"""Tests for the conflict-recognition engine."""

import pytest

from repro.core.conflicts import recognize
from repro.core.values import FuzzyValue
from repro.fuzzy import FuzzyInterval


def val(interval, env=(), degree=1.0, source="model"):
    return FuzzyValue(interval, frozenset(env), degree, source)


class TestRecognition:
    def test_no_conflict_on_corroboration(self):
        v = val(FuzzyInterval(1.0, 2.0, 0.1, 0.1))
        assert recognize("x", v, v) is None

    def test_no_conflict_on_refinement(self):
        inner = val(FuzzyInterval(1.4, 1.6), env={"a"})
        outer = val(FuzzyInterval(1.0, 2.0), env={"b"})
        assert recognize("x", inner, outer) is None

    def test_total_conflict(self):
        a = val(FuzzyInterval.crisp(0.0), env={"a"})
        b = val(FuzzyInterval.crisp(5.0), env={"b"})
        conflict = recognize("x", a, b)
        assert conflict is not None
        assert conflict.degree == pytest.approx(1.0)
        assert conflict.environment == frozenset({"a", "b"})
        assert conflict.direction == -1

    def test_partial_conflict_degree(self):
        """The paper's diode example: 105 uA against [-1, 100, 0, 10] uA."""
        measured = val(FuzzyInterval.crisp(105e-6), source="measurement")
        bound = val(FuzzyInterval(-1e-6, 100e-6, 0.0, 10e-6), env={"d1"})
        conflict = recognize("I(d1)", measured, bound)
        assert conflict.degree == pytest.approx(0.5)
        assert conflict.environment == frozenset({"d1"})

    def test_degrees_damp_conflicts(self):
        """An uncertain derivation cannot yield a certain nogood."""
        a = val(FuzzyInterval.crisp(0.0), env={"a"}, degree=0.6)
        b = val(FuzzyInterval.crisp(5.0), env={"b"})
        conflict = recognize("x", a, b)
        assert conflict.degree == pytest.approx(0.6)

    def test_tiny_conflicts_filtered(self):
        a = val(FuzzyInterval(0.0, 1.0, 0.0, 1e-9))
        b = val(FuzzyInterval(-1e-12, 1.0 + 1e-12), env={"b"})
        # Essentially identical intervals: below the noise floor.
        conflict = recognize("x", a, b)
        assert conflict is None or conflict.degree < 0.01

    def test_overlapping_environments_not_compared(self):
        """Values sharing an assumption double-count its tolerance; the
        coincidence-resolution principle skips the direct comparison."""
        a = val(FuzzyInterval.crisp(0.0), env={"a", "shared"})
        b = val(FuzzyInterval.crisp(5.0), env={"b", "shared"})
        assert recognize("x", a, b) is None

    def test_empty_environment_conflict_reported(self):
        """Two contradictory measurements still surface (data problem)."""
        a = val(FuzzyInterval.crisp(0.0), source="measurement")
        b = val(FuzzyInterval.crisp(5.0), source="measurement")
        conflict = recognize("x", a, b)
        assert conflict is not None
        assert conflict.environment == frozenset()

    def test_variable_recorded(self):
        a = val(FuzzyInterval.crisp(0.0), env={"a"})
        b = val(FuzzyInterval.crisp(5.0), env={"b"})
        assert recognize("V(n1)", a, b).variable == "V(n1)"

    def test_repr_mentions_components(self):
        a = val(FuzzyInterval.crisp(0.0), env={"a"})
        b = val(FuzzyInterval.crisp(5.0), env={"b"})
        text = repr(recognize("x", a, b))
        assert "a" in text and "b" in text
