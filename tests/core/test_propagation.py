"""Tests for the fuzzy propagation engine."""

import pytest

from repro.circuit import (
    Circuit,
    ConstraintNetwork,
    GROUND,
    Resistor,
    VoltageSource,
    amplifier_cascade,
    diode_resistor_circuit,
)
from repro.core.propagation import FuzzyPropagator, PropagatorConfig
from repro.fuzzy import FuzzyInterval


def divider_network(tolerance=0.05):
    ckt = Circuit("div")
    ckt.add(VoltageSource("Vin", 10.0, p="top", n=GROUND))
    ckt.add(Resistor("Rt", 1e3, tolerance, a="top", b="mid"))
    ckt.add(Resistor("Rb", 1e3, tolerance, a="mid", b=GROUND))
    return ConstraintNetwork(ckt)


class TestSeeding:
    def test_ground_is_premise(self):
        p = FuzzyPropagator(divider_network())
        (entry,) = p.values("V(0)")
        assert entry.source == "premise"
        assert entry.interval.is_crisp_number

    def test_other_variables_start_at_seed(self):
        p = FuzzyPropagator(divider_network())
        (entry,) = p.values("V(mid)")
        assert entry.is_seed
        assert entry.interval.support == (-60.0, 60.0)

    def test_reset_restores_seeds(self):
        p = FuzzyPropagator(divider_network())
        p.set_value("V(mid)", FuzzyInterval.crisp(5.0))
        p.run()
        p.reset()
        assert len(p.values("V(mid)")) == 1

    def test_unknown_variable_rejected(self):
        p = FuzzyPropagator(divider_network())
        with pytest.raises(KeyError):
            p.set_value("V(nowhere)", FuzzyInterval.crisp(0.0))


class TestForwardPropagation:
    def test_source_pins_top_node(self):
        p = FuzzyPropagator(divider_network())
        p.run()
        best = p.best("V(top)")
        assert best.interval.core == (10.0, 10.0)
        assert best.environment == frozenset({"Vin"})

    def test_measured_value_drives_derivations(self):
        p = FuzzyPropagator(divider_network())
        p.set_value("V(mid)", FuzzyInterval.crisp(5.0))
        p.run()
        current = p.best("I(Rb)")
        assert current.interval.centroid == pytest.approx(5e-3, rel=0.1)
        assert "Rb" in current.environment

    def test_quiescence(self):
        p = FuzzyPropagator(divider_network())
        result = p.run()
        assert result.quiescent
        # Re-running without new information is an immediate no-op pass.
        again = p.run()
        assert again.quiescent

    def test_derived_values_sound_for_healthy_circuit(self):
        """Every derived entry must contain the true operating point."""
        from repro.circuit import DCSolver
        from repro.core.predict import variable_values

        network = divider_network()
        truth = variable_values(
            network.circuit, DCSolver(network.circuit).solve()
        )
        p = FuzzyPropagator(network)
        p.run()
        for name, true_value in truth.items():
            for entry in p.values(name):
                lo, hi = entry.interval.support
                assert lo - 1e-6 <= true_value <= hi + 1e-6, (name, entry)

    def test_cascade_propagates_through_gains(self):
        network = ConstraintNetwork(amplifier_cascade())
        p = FuzzyPropagator(network)
        p.run()
        d = p.best("V(d)")
        assert d.interval.centroid == pytest.approx(9.0, rel=0.05)


class TestConflictDetection:
    def test_conflicting_measurement_reported(self):
        conflicts = []
        p = FuzzyPropagator(divider_network(), on_conflict=conflicts.append)
        p.set_value("V(mid)", FuzzyInterval.number(8.0, 0.01))
        p.run()
        assert conflicts
        strongest = max(conflicts, key=lambda c: c.degree)
        assert strongest.degree > 0.5
        assert strongest.environment  # blames components, not the data

    def test_consistent_measurement_quiet(self):
        conflicts = []
        p = FuzzyPropagator(divider_network(), on_conflict=conflicts.append)
        p.set_value("V(mid)", FuzzyInterval.number(5.0, 0.05))
        p.run()
        assert all(c.degree < 0.2 for c in conflicts)

    def test_conflicts_deduplicated(self):
        p = FuzzyPropagator(divider_network())
        p.set_value("V(mid)", FuzzyInterval.number(8.0, 0.01))
        p.run()
        keys = {
            (c.variable, c.environment, round(c.degree, 2), c.direction)
            for c in p.conflicts
        }
        assert len(keys) == len(p.conflicts)

    def test_figure5_conflict_degrees(self):
        network = ConstraintNetwork(
            diode_resistor_circuit(), nominal_modes={"d1": "on"}
        )
        conflicts = []
        p = FuzzyPropagator(network, on_conflict=conflicts.append)
        p.set_value("V(vin)", FuzzyInterval.crisp(3.25))
        p.set_value("V(n1)", FuzzyInterval.crisp(2.2))
        p.set_value("V(n2)", FuzzyInterval.crisp(2.0))
        p.run()
        by_env = {}
        for c in conflicts:
            key = frozenset(c.environment)
            by_env[key] = max(by_env.get(key, 0.0), c.degree)
        assert by_env.get(frozenset({"r1", "d1"})) == pytest.approx(0.5)
        assert by_env.get(frozenset({"r2", "d1"})) == pytest.approx(1.0)


class TestTermination:
    def test_step_cap_respected(self):
        config = PropagatorConfig(max_steps=5)
        p = FuzzyPropagator(divider_network(), config=config)
        result = p.run()
        assert result.steps <= 5

    def test_immutable_entries_never_merge(self):
        p = FuzzyPropagator(divider_network())
        p.set_value("V(mid)", FuzzyInterval.number(5.0, 0.02))
        p.run()
        measured = [v for v in p.values("V(mid)") if v.is_measurement]
        assert len(measured) == 1
        assert measured[0].interval.is_close(FuzzyInterval.number(5.0, 0.02))

    def test_identical_projection_skipped(self):
        p = FuzzyPropagator(divider_network())
        first = p.run().steps
        # Nothing changed: the queue drains with one visit per constraint.
        second = p.run().steps
        assert second <= len(p.network.constraints)
        assert first >= second

    def test_value_cap_enforced(self):
        config = PropagatorConfig(max_values_per_variable=3)
        p = FuzzyPropagator(divider_network(), config=config)
        p.set_value("V(mid)", FuzzyInterval.number(5.0, 0.02))
        p.run()
        for name in p.network.variables:
            mutable = [
                v
                for v in p.values(name)
                if v.source not in ("measurement", "premise", "prediction")
            ]
            assert len(mutable) <= 3


class TestSeedTaintProvenance:
    """Seed-descended widths are ignorance, not evidence (see values.py)."""

    def test_seed_flag_set_on_seeds(self):
        p = FuzzyPropagator(divider_network())
        (entry,) = p.values("V(mid)")
        assert entry.from_seed

    def test_projections_from_seeds_are_tainted(self):
        p = FuzzyPropagator(divider_network())
        p.run()
        # Some derived entries descend from seeds (e.g. currents computed
        # from the seeded mid-node voltage before measurements arrive).
        tainted = [
            v
            for name in p.network.variables
            for v in p.values(name)
            if v.from_seed and not v.is_seed
        ]
        assert tainted

    def test_measurement_chains_are_untainted(self):
        p = FuzzyPropagator(divider_network())
        p.set_value("V(mid)", FuzzyInterval.crisp(5.0))
        p.run()
        currents = [v for v in p.values("I(Rb)") if not v.is_seed]
        assert any(not v.from_seed for v in currents)

    def test_tainted_values_never_conflict(self):
        conflicts = []
        p = FuzzyPropagator(divider_network(), on_conflict=conflicts.append)
        p.set_value("V(mid)", FuzzyInterval.number(8.0, 0.01))
        p.run()
        for conflict in conflicts:
            assert not conflict.newer.from_seed
            assert not conflict.older.from_seed

    def test_intersection_with_untainted_clears_taint(self):
        from repro.core.values import FuzzyValue

        tainted = FuzzyValue(
            FuzzyInterval(0.0, 10.0), frozenset({"a"}), 1.0, "c", from_seed=True
        )
        clean = FuzzyValue(
            FuzzyInterval(4.0, 6.0), frozenset({"a"}), 1.0, "c", from_seed=False
        )
        # The merge rule: from_seed = existing.from_seed and new.from_seed.
        assert (tainted.from_seed and clean.from_seed) is False
