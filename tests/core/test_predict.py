"""Tests for the nominal-prediction (sensitivity) unit."""

import pytest

from repro.circuit import (
    Circuit,
    DCSolver,
    GROUND,
    Resistor,
    VoltageSource,
    three_stage_amplifier,
)
from repro.core.predict import predict_nominal, variable_values


def divider(tolerance=0.05):
    ckt = Circuit("div")
    ckt.add(VoltageSource("Vin", 10.0, p="top", n=GROUND))
    ckt.add(Resistor("Rt", 1e3, tolerance, a="top", b="mid"))
    ckt.add(Resistor("Rb", 1e3, tolerance, a="mid", b=GROUND))
    return ckt


class TestVariableValues:
    def test_voltage_names(self):
        ckt = divider()
        values = variable_values(ckt, DCSolver(ckt).solve())
        assert values["V(mid)"] == pytest.approx(5.0, rel=1e-3)
        assert values["V(top)"] == pytest.approx(10.0, rel=1e-3)

    def test_current_conventions_satisfy_network_constraints(self):
        """Simulated values must satisfy the diagnosis model's equations."""
        from repro.circuit import ConstraintNetwork

        ckt = three_stage_amplifier()
        values = variable_values(ckt, DCSolver(ckt).solve())
        network = ConstraintNetwork(ckt)
        for constraint in network.constraints:
            names = constraint.variable_names
            if not all(n in values or n == "V(0)" for n in names):
                continue
            if not constraint.applicable(
                {
                    n: None  # unknown estimates: designed modes apply
                    for n in set(names) | set(constraint.guard_variables)
                }
            ):
                continue
            # Check the constraint's projection agrees with the simulated
            # target value (within the model's fuzzy band).
            from repro.fuzzy import FuzzyInterval

            target = constraint.variables[0]
            inputs = {
                n: FuzzyInterval.crisp(values.get(n, 0.0))
                for n in names
                if n != target.name
            }
            projected = constraint.project(target, inputs)
            if projected is None:
                continue
            lo, hi = projected.support
            truth = values.get(target.name, 0.0)
            assert lo - 1e-6 <= truth <= hi + 1e-6, constraint.name


class TestPredictions:
    def test_nominal_matches_simulation(self):
        predictions = predict_nominal(divider())
        assert predictions["V(mid)"].value.centroid == pytest.approx(5.0, rel=1e-3)

    def test_spread_reflects_tolerances(self):
        tight = predict_nominal(divider(0.01))["V(mid)"].value
        loose = predict_nominal(divider(0.10))["V(mid)"].value
        assert loose.width > tight.width

    def test_crisp_components_floor_at_model_noise(self):
        """Zero-tolerance parts still get the numerical noise floor."""
        from repro.core.predict import PREDICTION_FLOOR_VOLTAGE

        predictions = predict_nominal(divider(0.0))
        assert predictions["V(mid)"].value.width == pytest.approx(
            2 * PREDICTION_FLOOR_VOLTAGE
        )

    def test_near_zero_currents_do_not_ghost_conflict(self):
        """gmin leakage must stay inside the prediction's noise floor."""
        from repro.circuit import amplifier_cascade

        predictions = predict_nominal(amplifier_cascade())
        amp1_current = predictions["I(amp1)"].value
        assert amp1_current.membership(0.0) > 0.99

    def test_support_includes_structural_dependence(self):
        """Even zero-tolerance components appear in the support."""
        predictions = predict_nominal(divider(0.0))
        assert predictions["V(mid)"].support == frozenset({"Vin", "Rt", "Rb"})

    def test_support_excludes_independent_components(self):
        """The supply node's prediction depends only on the source."""
        predictions = predict_nominal(three_stage_amplifier())
        assert predictions["V(vcc)"].support == frozenset({"Vcc"})

    def test_fault_probes_extend_support(self):
        """R2 barely moves V1 at small signal but decides it when shorted."""
        predictions = predict_nominal(three_stage_amplifier())
        assert "R2" in predictions["V(v1)"].support

    def test_three_stage_prediction_core(self):
        predictions = predict_nominal(three_stage_amplifier())
        assert predictions["V(v1)"].value.centroid == pytest.approx(1.22, abs=0.02)
        assert predictions["V(vs)"].value.centroid == pytest.approx(16.32, abs=0.05)

    def test_single_path_output_supported_by_most_components(self):
        """The paper: a faulty output 'suspects all the modules'."""
        predictions = predict_nominal(three_stage_amplifier())
        support = predictions["V(vs)"].support
        assert {"R4", "R5", "R6", "T1", "T2", "T3", "R1", "R3"} <= support

    def test_prediction_contains_true_value_within_tolerance(self):
        """Perturbing any single parameter within tolerance keeps the
        true value inside the prediction's support."""
        from repro.circuit import apply_fault, Fault, FaultKind

        golden = divider(0.05)
        predictions = predict_nominal(golden)
        drifted = apply_fault(
            golden, Fault(FaultKind.PARAM, "Rb", value=1e3 * 1.04)
        )
        true_mid = DCSolver(drifted).solve().voltage("mid")
        lo, hi = predictions["V(mid)"].value.support
        assert lo <= true_mid <= hi
