"""Tests for dynamic-mode diagnosis."""

import pytest

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    TransientSolver,
    apply_fault,
    probe_all,
    rc_lowpass,
    step_waveform,
)
from repro.core import DynamicDiagnoser, Flames

WAVE = {"Vin": step_waveform(0.0, 5.0)}


@pytest.fixture(scope="module")
def golden():
    return rc_lowpass(2)


@pytest.fixture(scope="module")
def diagnoser(golden):
    d = DynamicDiagnoser(golden, WAVE, dt=5e-5, duration=5e-3)
    d.predictions()
    return d


def measure(circuit):
    return TransientSolver(circuit, waveforms=WAVE, dt=5e-5, initial="dc").run(5e-3)


class TestPredictions:
    def test_envelopes_cover_the_golden_response(self, golden, diagnoser):
        golden_response = measure(golden)
        for (net, t), prediction in diagnoser.predictions().items():
            truth = golden_response.voltage_at(net, t)
            lo, hi = prediction.value.support
            assert lo - 1e-6 <= truth <= hi + 1e-6

    def test_supports_include_reactives(self, diagnoser):
        prediction = diagnoser.predictions()[("m2", 1e-3)]
        assert {"C1", "C2", "R1", "R2"} <= prediction.support

    def test_predictions_cached(self, diagnoser):
        assert diagnoser.predictions() is diagnoser.predictions()

    def test_golden_circuit_not_mutated(self, golden):
        before = [(c.name, getattr(c, "capacitance", None)) for c in golden.components]
        d = DynamicDiagnoser(golden, WAVE, dt=1e-4, duration=2e-3)
        d.predictions()
        after = [(c.name, getattr(c, "capacitance", None)) for c in golden.components]
        assert before == after


class TestDiagnosis:
    def test_healthy_unit_consistent(self, golden, diagnoser):
        result = diagnoser.diagnose(measure(golden))
        assert result.is_consistent
        assert result.suspicions == {}

    def test_open_capacitor_detected(self, golden, diagnoser):
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)
        )
        result = diagnoser.diagnose(measure(faulty))
        assert not result.is_consistent
        assert "C1" in result.suspicions

    def test_static_engine_blind_to_capacitor(self, golden):
        """The contrast that motivates dynamic mode."""
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)
        )
        op = DCSolver(faulty).solve()
        static = Flames(golden).diagnose(
            probe_all(op, ["m1", "m2"], imprecision=0.01)
        )
        assert static.is_consistent

    def test_capacitor_drift_detected(self, golden, diagnoser):
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C2", "capacitance", 1.8e-6)
        )
        result = diagnoser.diagnose(measure(faulty))
        assert not result.is_consistent
        assert "C2" in result.suspicions

    def test_small_drift_yields_only_weak_conflicts(self, golden, diagnoser):
        """A drift well inside tolerance registers at a *low* degree.

        Fuzzy semantics: membership falls off inside the tolerance band,
        so a 2 % drift is reported — but weakly, far below the degree a
        frank fault earns.  (A crisp engine would report nothing at all.)
        """
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C2", "capacitance", 1.02e-6)
        )
        result = diagnoser.diagnose(measure(faulty))
        assert all(n.degree < 0.3 for n in result.nogoods)

    def test_tiny_drift_consistent(self, golden, diagnoser):
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C2", "capacitance", 1.005e-6)
        )
        result = diagnoser.diagnose(measure(faulty))
        assert result.is_consistent

    def test_worst_sample_points_at_deviation(self, golden, diagnoser):
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)
        )
        result = diagnoser.diagnose(measure(faulty))
        worst = result.worst_sample()
        assert worst is not None
        assert result.consistencies[worst].degree < 0.5

    def test_net_restriction(self, golden, diagnoser):
        faulty = apply_fault(
            golden, Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)
        )
        result = diagnoser.diagnose(measure(faulty), nets=["m1"])
        assert all(net == "m1" for net, _ in result.consistencies)

    def test_degrees_valid(self, golden, diagnoser):
        faulty = apply_fault(golden, Fault(FaultKind.OPEN, "R2"))
        result = diagnoser.diagnose(measure(faulty))
        for nogood in result.nogoods:
            assert 0.0 < nogood.degree <= 1.0
