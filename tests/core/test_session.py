"""Tests for the TroubleshootingSession facade (the full figure-3 system)."""

import pytest

from repro.circuit import DCSolver, Fault, FaultKind, apply_fault, three_stage_amplifier
from repro.core import ExperienceBase, TroubleshootingSession


@pytest.fixture()
def golden():
    return three_stage_amplifier()


@pytest.fixture()
def bench(golden):
    return DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()


@pytest.fixture()
def healthy_bench(golden):
    return DCSolver(golden).solve()


class TestObservation:
    def test_requires_observation_before_result(self, golden):
        session = TroubleshootingSession(golden)
        assert not session.has_observations
        with pytest.raises(RuntimeError):
            session.result

    def test_observe_requires_measurements(self, golden):
        session = TroubleshootingSession(golden)
        with pytest.raises(ValueError):
            session.observe()

    def test_accumulates_measurements(self, golden, bench):
        session = TroubleshootingSession(golden)
        session.observe_probe(bench, "vs")
        session.observe_probe(bench, "v1")
        assert {m.point for m in session.measurements} == {"V(vs)", "V(v1)"}

    def test_remeasuring_replaces(self, golden, bench):
        session = TroubleshootingSession(golden)
        session.observe_probe(bench, "vs", imprecision=0.1)
        session.observe_probe(bench, "vs", imprecision=0.01)
        assert len(session.measurements) == 1
        assert session.measurements[0].value.alpha == pytest.approx(0.01)

    def test_healthy_unit(self, golden, healthy_bench):
        session = TroubleshootingSession(golden)
        session.observe_probe(healthy_bench, "vs")
        assert session.unit_looks_healthy

    def test_faulty_unit(self, golden, bench):
        session = TroubleshootingSession(golden)
        session.observe_probe(bench, "vs")
        assert not session.unit_looks_healthy


class TestWorkflow:
    def _diagnose(self, golden, bench):
        session = TroubleshootingSession(golden)
        for net in ("vs", "v2", "v1"):
            session.observe_probe(bench, net)
        return session

    def test_candidates_ranked(self, golden, bench):
        session = self._diagnose(golden, bench)
        candidates = session.candidates()
        assert candidates
        scores = [s for _, s in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_refinements_propose_the_short(self, golden, bench):
        session = self._diagnose(golden, bench)
        refinements = session.refinements(top_k=3)
        assert any(m.component == "R2" and m.mode == "short" for m in refinements)

    def test_recommendation_avoids_measured(self, golden, bench):
        session = self._diagnose(golden, bench)
        recommendation = session.recommend_next()
        assert recommendation is not None
        assert recommendation.point not in {m.point for m in session.measurements}

    def test_report_renders(self, golden, bench):
        session = self._diagnose(golden, bench)
        text = session.report()
        assert "fault-mode refinement" in text

    def test_confirm_unknown_component(self, golden, bench):
        session = self._diagnose(golden, bench)
        with pytest.raises(KeyError):
            session.confirm("R99")


class TestExperienceFlow:
    def test_experience_boosts_next_unit(self, golden, bench):
        shared = ExperienceBase()
        session = TroubleshootingSession(golden, experience=shared)
        for net in ("vs", "v2", "v1"):
            session.observe_probe(bench, net)
        baseline_rank = [name for name, _ in session.candidates()].index("R2")
        session.confirm("R2", "short")

        session.next_unit()
        assert not session.has_observations
        bench2 = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        for net in ("vs", "v2", "v1"):
            session.observe_probe(bench2, net)
        assert session.matching_experience()
        boosted_rank = [name for name, _ in session.candidates()].index("R2")
        assert boosted_rank <= baseline_rank
        assert boosted_rank == 0

    def test_fresh_experience_by_default(self, golden, bench):
        session = TroubleshootingSession(golden)
        for net in ("vs", "v2", "v1"):
            session.observe_probe(bench, net)
        assert session.matching_experience() == []

    def test_next_unit_keeps_experience(self, golden, bench):
        session = TroubleshootingSession(golden)
        for net in ("vs", "v2", "v1"):
            session.observe_probe(bench, net)
        session.confirm("R2", "short")
        session.next_unit()
        assert len(session.experience) == 1

    def test_next_unit_resets_measurements_and_result(self, golden, bench):
        session = TroubleshootingSession(golden)
        session.observe_probe(bench, "vs")
        assert session.measurements and session.has_observations
        session.next_unit()
        assert session.measurements == []
        assert not session.has_observations
        assert not session.unit_looks_healthy
        with pytest.raises(RuntimeError):
            session.result

    def test_repeat_confirmations_across_units_reinforce(self, golden, bench):
        session = TroubleshootingSession(golden)
        for _ in range(3):
            for net in ("vs", "v2", "v1"):
                session.observe_probe(bench, net)
            rule = session.confirm("R2", "short")
            session.next_unit()
        assert rule.occurrences == 3
        assert session.experience.episode_count == 3
        assert rule.certainty > session.experience.base_certainty

    def test_shared_base_carries_between_sessions(self, golden, bench):
        """A second bench (fresh session object) benefits from the first."""
        shared = ExperienceBase()
        first = TroubleshootingSession(golden, experience=shared)
        for net in ("vs", "v2", "v1"):
            first.observe_probe(bench, net)
        first.confirm("R2", "short")

        second = TroubleshootingSession(golden, experience=shared)
        for net in ("vs", "v2", "v1"):
            second.observe_probe(bench, net)
        assert second.matching_experience()
        assert second.candidates()[0][0] == "R2"
        assert second.candidates()[0][1] > 1.0


class TestConfigDefaults:
    def test_default_config_is_per_instance(self, golden):
        a = TroubleshootingSession(golden)
        b = TroubleshootingSession(golden)
        assert a.engine.config is not b.engine.config
        assert a.engine.config.propagator is not b.engine.config.propagator
