"""Tests for learning from experience."""

import pytest

from repro.circuit import DCSolver, Fault, FaultKind, apply_fault, probe_all, three_stage_amplifier
from repro.core import Flames
from repro.core.learning import Episode, ExperienceBase, SymptomSignature


def signature(entries):
    return SymptomSignature(tuple(sorted(entries)))


SIG_A = signature([("V(vs)", "conflict", 1), ("V(v1)", "conflict", -1)])
SIG_B = signature([("V(vs)", "conflict", -1), ("V(v1)", "conflict", 1)])


class TestSignatures:
    def test_equality(self):
        assert SIG_A == signature(
            [("V(v1)", "conflict", -1), ("V(vs)", "conflict", 1)]
        )
        assert SIG_A != SIG_B

    def test_similarity_full_match(self):
        assert SIG_A.similarity(SIG_A) == 1.0

    def test_similarity_partial(self):
        half = signature([("V(vs)", "conflict", 1), ("V(v1)", "conflict", 1)])
        assert 0.0 < SIG_A.similarity(half) < 1.0

    def test_similarity_disjoint_probes(self):
        other = signature([("V(x)", "conflict", 1)])
        assert SIG_A.similarity(other) == 0.0

    def test_healthy_detection(self):
        healthy = signature([("V(vs)", "consistent", 0)])
        assert healthy.is_healthy
        assert not SIG_A.is_healthy

    def test_from_result(self):
        golden = three_stage_amplifier()
        engine = Flames(golden)
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        result = engine.diagnose(probe_all(op, ["vs", "v1"], imprecision=0.02))
        sig = SymptomSignature.from_result(result)
        assert len(sig.entries) == 2
        assert not sig.is_healthy


class TestExperienceBase:
    def test_record_creates_rule(self):
        xp = ExperienceBase()
        rule = xp.record(Episode(SIG_A, "R2", "short"))
        assert rule.certainty == pytest.approx(0.6)
        assert len(xp) == 1

    def test_reinforcement_raises_certainty(self):
        xp = ExperienceBase(base_certainty=0.6)
        xp.record(Episode(SIG_A, "R2", "short"))
        rule = xp.record(Episode(SIG_A, "R2", "short"))
        assert rule.occurrences == 2
        assert rule.certainty == pytest.approx(1.0 - 0.4 * 0.4)
        assert len(xp) == 1

    def test_certainty_asymptotic_below_one(self):
        xp = ExperienceBase(base_certainty=0.6)
        for _ in range(20):
            rule = xp.record(Episode(SIG_A, "R2", "short"))
        assert 0.99 < rule.certainty < 1.0

    def test_distinct_culprits_distinct_rules(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        xp.record(Episode(SIG_A, "R1", "open"))
        assert len(xp) == 2

    def test_invalid_base_certainty(self):
        with pytest.raises(ValueError):
            ExperienceBase(base_certainty=1.0)

    def test_suggest_exact_match(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        hits = xp.suggest(SIG_A)
        assert len(hits) == 1
        assert hits[0][0].component == "R2"

    def test_suggest_requires_match(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        assert xp.suggest(SIG_B) == []

    def test_suggest_analogical_with_lower_threshold(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        near = signature([("V(vs)", "conflict", 1), ("V(v1)", "partial", -1)])
        assert xp.suggest(near) == []
        hits = xp.suggest(near, min_similarity=0.4)
        assert hits and hits[0][0].component == "R2"

    def test_boost_breaks_ties(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        suspicions = {"R1": 1.0, "R2": 1.0, "R3": 1.0}
        boosted = xp.boost_suspicions(suspicions, SIG_A)
        assert boosted["R2"] > boosted["R1"]

    def test_boost_does_not_drop_evidence(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        suspicions = {"R1": 1.0}
        boosted = xp.boost_suspicions(suspicions, SIG_A)
        assert boosted["R1"] == 1.0

    def test_episode_count_tracked(self):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2"))
        xp.record(Episode(SIG_A, "R2"))
        assert xp.episode_count == 2


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        xp = ExperienceBase(base_certainty=0.7)
        xp.record(Episode(SIG_A, "R2", "short"))
        xp.record(Episode(SIG_A, "R2", "short"))
        xp.record(Episode(SIG_B, "R3", "open"))
        path = tmp_path / "shop.json"
        xp.save(path)
        loaded = ExperienceBase.load(path)
        assert len(loaded) == 2
        assert loaded.base_certainty == 0.7
        assert loaded.episode_count == 3
        rule = next(r for r in loaded.rules if r.component == "R2")
        assert rule.occurrences == 2
        assert rule.signature == SIG_A

    def test_loaded_rules_still_match(self, tmp_path):
        xp = ExperienceBase()
        xp.record(Episode(SIG_A, "R2", "short"))
        path = tmp_path / "shop.json"
        xp.save(path)
        loaded = ExperienceBase.load(path)
        hits = loaded.suggest(SIG_A)
        assert hits and hits[0][0].component == "R2"

    def test_signature_list_round_trip(self):
        assert SymptomSignature.from_list(SIG_A.to_list()) == SIG_A


class TestMerge:
    def test_merge_copies_new_rules(self):
        ours = ExperienceBase()
        theirs = ExperienceBase()
        theirs.record(Episode(SIG_A, "R2", "short"))
        ours.merge(theirs)
        assert len(ours) == 1
        assert ours.rules[0].component == "R2"
        assert ours.episode_count == 1

    def test_merge_reinforces_matching_rules(self):
        ours = ExperienceBase(base_certainty=0.6)
        theirs = ExperienceBase(base_certainty=0.6)
        ours.record(Episode(SIG_A, "R2", "short"))
        theirs.record(Episode(SIG_A, "R2", "short"))
        ours.merge(theirs)
        assert len(ours) == 1
        rule = ours.rules[0]
        assert rule.occurrences == 2
        # 1 - (1 - 0.6)(1 - 0.6) = 0.84: merging matches repetition
        assert rule.certainty == pytest.approx(0.84)

    def test_merge_is_independent_copy(self):
        ours = ExperienceBase()
        theirs = ExperienceBase()
        theirs.record(Episode(SIG_A, "R2", "short"))
        ours.merge(theirs)
        theirs.rules[0].certainty = 0.99
        assert ours.rules[0].certainty != 0.99

    def test_merge_keeps_distinct_modes_apart(self):
        ours = ExperienceBase()
        theirs = ExperienceBase()
        ours.record(Episode(SIG_A, "R2", "short"))
        theirs.record(Episode(SIG_A, "R2", "open"))
        theirs.record(Episode(SIG_B, "R2", "short"))
        ours.merge(theirs)
        assert len(ours) == 3

    def test_merged_rules_fire_on_suggest(self):
        ours = ExperienceBase()
        theirs = ExperienceBase()
        theirs.record(Episode(SIG_A, "R2", "short"))
        ours.merge(theirs)
        hits = ours.suggest(SIG_A)
        assert hits and hits[0][0].component == "R2"

    def test_merge_returns_self_for_chaining(self):
        ours = ExperienceBase()
        assert ours.merge(ExperienceBase()) is ours
