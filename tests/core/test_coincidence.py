"""Tests for figure-4 coincidence classification."""

import pytest

from repro.core.coincidence import CoincidenceKind, classify, resolve
from repro.fuzzy import FuzzyInterval


class TestClassification:
    def test_corroboration(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        coin = classify(v, v)
        assert coin.kind is CoincidenceKind.CORROBORATION
        assert not coin.is_conflicting

    def test_a_splits_b(self):
        a = FuzzyInterval(1.4, 1.6, 0.1, 0.1)
        b = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        coin = classify(a, b)
        assert coin.kind is CoincidenceKind.A_SPLITS_B
        assert not coin.is_conflicting

    def test_b_splits_a(self):
        a = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        b = FuzzyInterval(1.4, 1.6, 0.1, 0.1)
        coin = classify(a, b)
        assert coin.kind is CoincidenceKind.B_SPLITS_A
        assert not coin.is_conflicting

    def test_partial_conflict(self):
        # Cores disjoint, slopes overlapping: a genuine partial conflict.
        a = FuzzyInterval(1.0, 1.5, 0.2, 0.4)
        b = FuzzyInterval(2.0, 2.8, 0.4, 0.2)
        coin = classify(a, b)
        assert coin.kind is CoincidenceKind.PARTIAL_CONFLICT
        assert 0.0 < coin.conflict_degree < 1.0

    def test_core_agreement_is_not_a_conflict(self):
        """Overlapping cores: the most-plausible readings agree, so the
        possibility cap suppresses the tolerance-slope disagreement."""
        a = FuzzyInterval(1.0, 2.0, 0.2, 0.2)
        b = FuzzyInterval(1.8, 2.8, 0.2, 0.2)
        coin = classify(a, b)
        assert coin.conflict_degree == pytest.approx(0.0)

    def test_total_conflict(self):
        a = FuzzyInterval(0.0, 1.0)
        b = FuzzyInterval(3.0, 4.0)
        coin = classify(a, b)
        assert coin.kind is CoincidenceKind.CONFLICT
        assert coin.conflict_degree == pytest.approx(1.0)

    def test_direction_of_conflict(self):
        low = FuzzyInterval(0.0, 1.0)
        high = FuzzyInterval(3.0, 4.0)
        assert classify(low, high).direction == -1
        assert classify(high, low).direction == 1

    def test_worst_consistency_tracked(self):
        narrow = FuzzyInterval(1.9, 2.1, 0.1, 0.1)
        wide = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        coin = classify(narrow, wide)
        # The wide value is less consistent with the narrow than vice versa.
        assert coin.worst.degree == min(coin.a_in_b.degree, coin.b_in_a.degree)

    def test_conflict_degree_bounded_by_dc_and_possibility(self):
        a = FuzzyInterval(1.0, 1.5, 0.2, 0.4)
        b = FuzzyInterval(2.0, 2.8, 0.4, 0.2)
        coin = classify(a, b)
        assert coin.conflict_degree <= 1.0 - max(
            coin.a_in_b.degree, coin.b_in_a.degree
        ) + 1e-12
        assert coin.conflict_degree <= 1.0 - coin.overlap_possibility + 1e-12


class TestResolution:
    def test_conflict_yields_no_value(self):
        narrowed, degree = resolve(FuzzyInterval(0.0, 1.0), FuzzyInterval(3.0, 4.0))
        assert narrowed is None
        assert degree == pytest.approx(1.0)

    def test_refinement_keeps_narrow(self):
        narrow = FuzzyInterval(1.4, 1.6, 0.1, 0.1)
        wide = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        narrowed, degree = resolve(narrow, wide)
        assert degree == pytest.approx(0.0)
        assert wide.contains(narrowed)
        assert narrowed.core == narrow.core

    def test_partial_conflict_narrows_and_scores(self):
        a = FuzzyInterval(1.0, 1.5, 0.2, 0.4)
        b = FuzzyInterval(2.0, 2.8, 0.4, 0.2)
        narrowed, degree = resolve(a, b)
        assert narrowed is not None
        assert 0.0 < degree < 1.0
        # The narrowed value covers the overlap region.
        assert narrowed.support[0] >= a.support[0]
        assert narrowed.support[1] <= b.support[1]

    def test_corroboration_returns_same(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        narrowed, degree = resolve(v, v)
        assert degree == 0.0
        assert narrowed.is_close(v)
