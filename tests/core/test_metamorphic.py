"""Metamorphic property tests of the whole diagnosis pipeline.

Randomised circuits + randomised faults, with the invariants that define
a sound diagnoser:

* a healthy unit measured anywhere yields no conflicts;
* a hard fault measured everywhere is detected, and the injected
  component appears among the suspects;
* adding measurements never turns a detected fault into "healthy".
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    resistor_ladder,
)
from repro.core import Flames

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _probes(sections):
    return [f"n{i}" for i in range(1, sections + 1)]


def _engine_cache():
    cache = {}

    def get(sections):
        if sections not in cache:
            cache[sections] = Flames(resistor_ladder(sections))
        return cache[sections]

    return get


_get_engine = _engine_cache()


class TestHealthyInvariant:
    @given(sections=st.integers(min_value=1, max_value=4))
    @settings(**_SETTINGS)
    def test_healthy_ladder_consistent(self, sections):
        golden = resistor_ladder(sections)
        engine = _get_engine(sections)
        op = DCSolver(golden).solve()
        result = engine.diagnose(probe_all(op, _probes(sections), imprecision=0.02))
        assert result.is_consistent


class TestHardFaultInvariant:
    @given(
        sections=st.integers(min_value=1, max_value=4),
        index=st.integers(min_value=1, max_value=4),
        series=st.booleans(),
        kind=st.sampled_from([FaultKind.OPEN, FaultKind.SHORT]),
    )
    @settings(**_SETTINGS)
    def test_fault_detected_and_blamed(self, sections, index, series, kind):
        index = min(index, sections)
        name = f"{'Rs' if series else 'Rp'}{index}"
        # A shorted series resistor in a fresh ladder barely moves anything
        # when followed by more attenuation; opens are always dramatic.
        golden = resistor_ladder(sections)
        faulty = apply_fault(golden, Fault(kind, name))
        engine = _get_engine(sections)
        op = DCSolver(faulty).solve()
        result = engine.diagnose(probe_all(op, _probes(sections), imprecision=0.01))
        assert not result.is_consistent, (sections, name, kind)
        assert result.suspicions.get(name, 0.0) > 0.0, (sections, name, kind)

    @given(
        sections=st.integers(min_value=2, max_value=4),
        index=st.integers(min_value=1, max_value=4),
    )
    @settings(**_SETTINGS)
    def test_more_probes_never_hide_a_fault(self, sections, index):
        index = min(index, sections)
        name = f"Rp{index}"
        golden = resistor_ladder(sections)
        faulty = apply_fault(golden, Fault(FaultKind.OPEN, name))
        engine = _get_engine(sections)
        op = DCSolver(faulty).solve()
        probes = _probes(sections)
        few = engine.diagnose(probe_all(op, probes[-1:], imprecision=0.01))
        many = engine.diagnose(probe_all(op, probes, imprecision=0.01))
        if not few.is_consistent:
            assert not many.is_consistent

    @given(sections=st.integers(min_value=1, max_value=4))
    @settings(**_SETTINGS)
    def test_nogood_degrees_valid(self, sections):
        golden = resistor_ladder(sections)
        faulty = apply_fault(golden, Fault(FaultKind.OPEN, "Rp1"))
        engine = _get_engine(sections)
        op = DCSolver(faulty).solve()
        result = engine.diagnose(probe_all(op, _probes(sections), imprecision=0.01))
        for nogood in result.nogoods:
            assert 0.0 < nogood.degree <= 1.0
        for _, suspicion in result.suspicions.items():
            assert 0.0 < suspicion <= 1.0
