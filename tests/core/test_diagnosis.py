"""Tests for the Flames engine facade."""

import pytest

from repro.circuit import (
    Circuit,
    DCSolver,
    Fault,
    FaultKind,
    GROUND,
    Measurement,
    Resistor,
    VoltageSource,
    apply_fault,
    probe,
    probe_all,
    three_stage_amplifier,
)
from repro.core import Flames, FlamesConfig
from repro.fuzzy import FuzzyInterval


def divider():
    ckt = Circuit("div")
    ckt.add(VoltageSource("Vin", 10.0, p="top", n=GROUND))
    ckt.add(Resistor("Rt", 1e3, 0.05, a="top", b="mid"))
    ckt.add(Resistor("Rb", 1e3, 0.05, a="mid", b=GROUND))
    return ckt


@pytest.fixture(scope="module")
def amp_engine():
    return Flames(three_stage_amplifier())


class TestHealthyUnit:
    def test_consistent_measurements_no_candidates(self):
        golden = divider()
        engine = Flames(golden)
        op = DCSolver(golden).solve()
        result = engine.diagnose([probe(op, "mid", imprecision=0.02)])
        assert result.is_consistent
        assert result.diagnoses == []
        assert result.suspicions == {}

    def test_consistency_table_reports_one(self):
        golden = divider()
        engine = Flames(golden)
        op = DCSolver(golden).solve()
        result = engine.diagnose([probe(op, "mid", imprecision=0.02)])
        assert result.consistencies["V(mid)"].degree == pytest.approx(1.0)


class TestFaultyUnit:
    def test_soft_fault_detected_and_blamed(self):
        golden = divider()
        engine = Flames(golden)
        faulty = apply_fault(golden, Fault(FaultKind.PARAM, "Rb", value=1.5e3))
        op = DCSolver(faulty).solve()
        result = engine.diagnose([probe(op, "mid", imprecision=0.02)])
        assert not result.is_consistent
        assert "Rb" in result.suspicions

    def test_diagnoses_are_single_faults_for_single_conflict(self):
        golden = divider()
        engine = Flames(golden)
        faulty = apply_fault(golden, Fault(FaultKind.SHORT, "Rb"))
        op = DCSolver(faulty).solve()
        result = engine.diagnose([probe(op, "mid", imprecision=0.02)])
        assert all(d.size == 1 for d in result.diagnoses)

    def test_measurement_for_unknown_point_rejected(self):
        engine = Flames(divider())
        with pytest.raises(KeyError):
            engine.diagnose([Measurement("V(zz)", FuzzyInterval.crisp(0.0))])

    def test_initial_suspects_from_support(self, amp_engine):
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        result = amp_engine.diagnose(probe_all(op, ["vs"], imprecision=0.02))
        suspects = result.initial_suspects("V(vs)")
        assert {"T1", "T2", "T3", "R4"} <= suspects

    def test_more_probes_refine_candidates(self, amp_engine):
        """The paper: propagating V1 and V2 reduces the candidates."""
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        coarse = amp_engine.diagnose(probe_all(op, ["vs"], imprecision=0.02))
        fine = amp_engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))
        assert len(fine.suspicions) < len(coarse.suspicions)
        assert "R2" in fine.suspicions
        # Stage 3 is exonerated once V2 corroborates.
        assert "T3" not in fine.suspicions
        assert "R6" not in fine.suspicions

    def test_consistency_row_signs(self, amp_engine):
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.OPEN, "R3"))).solve()
        result = amp_engine.diagnose(
            probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        )
        row = result.consistency_row(["V(vs)", "V(v2)", "V(v1)"])
        assert row["V(v1)"] == 1.0  # total conflict, measured high
        assert row["V(vs)"] == -1.0  # total conflict, measured low
        assert result.consistencies["V(v1)"].degree == 0.0

    def test_ranked_components_sorted(self, amp_engine):
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        result = amp_engine.diagnose(
            probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        )
        ranked = result.ranked_components()
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestConfiguration:
    def test_conflict_threshold_filters_noise(self):
        golden = divider()
        faulty = apply_fault(golden, Fault(FaultKind.PARAM, "Rb", value=1.08e3))
        op = DCSolver(faulty).solve()
        m = [probe(op, "mid", imprecision=0.02)]
        permissive = Flames(golden, FlamesConfig(conflict_threshold=0.01)).diagnose(m)
        strict = Flames(golden, FlamesConfig(conflict_threshold=0.9)).diagnose(m)
        assert len(strict.nogoods) <= len(permissive.nogoods)

    def test_max_candidate_size(self):
        golden = divider()
        engine = Flames(golden, FlamesConfig(max_candidate_size=1))
        faulty = apply_fault(golden, Fault(FaultKind.SHORT, "Rb"))
        op = DCSolver(faulty).solve()
        result = engine.diagnose([probe(op, "mid", imprecision=0.02)])
        assert all(d.size <= 1 for d in result.diagnoses)

    def test_predictions_cached(self):
        engine = Flames(divider())
        first = engine.predictions()
        second = engine.predictions()
        assert first is second or first == second

    def test_design_modes_from_golden_solve(self):
        engine = Flames(three_stage_amplifier())
        assert engine.network.nominal_modes == {
            "T1": "active",
            "T2": "active",
            "T3": "active",
        }

    def test_repeated_diagnoses_independent(self, amp_engine):
        """Nogoods must not leak between diagnose() calls."""
        golden = three_stage_amplifier()
        op_bad = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        amp_engine.diagnose(probe_all(op_bad, ["vs", "v2", "v1"], imprecision=0.02))
        op_good = DCSolver(golden).solve()
        healthy = amp_engine.diagnose(
            probe_all(op_good, ["vs", "v2", "v1"], imprecision=0.02)
        )
        assert healthy.is_consistent
