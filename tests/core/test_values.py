"""Tests for FuzzyValue semantics."""

import pytest

from repro.core.values import FuzzyValue
from repro.fuzzy import FuzzyInterval


def value(interval, env=(), degree=1.0, source="c"):
    return FuzzyValue(interval, frozenset(env), degree, source)


class TestBasics:
    def test_sources(self):
        assert value(FuzzyInterval.crisp(1.0), source="measurement").is_measurement
        assert value(FuzzyInterval.crisp(1.0), source="seed").is_seed
        assert not value(FuzzyInterval.crisp(1.0)).is_measurement

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            value(FuzzyInterval.crisp(1.0), degree=0.0)
        with pytest.raises(ValueError):
            value(FuzzyInterval.crisp(1.0), degree=1.5)

    def test_width(self):
        assert value(FuzzyInterval(1.0, 2.0, 0.5, 0.5)).width == pytest.approx(2.0)


class TestSubsumption:
    def test_narrower_subset_env_subsumes(self):
        narrow = value(FuzzyInterval(1.0, 2.0), env={"a"})
        wide = value(FuzzyInterval(0.0, 3.0), env={"a", "b"})
        assert narrow.subsumes(wide)
        assert not wide.subsumes(narrow)

    def test_incomparable_envs_do_not_subsume(self):
        a = value(FuzzyInterval(1.0, 2.0), env={"a"})
        b = value(FuzzyInterval(0.0, 3.0), env={"b"})
        assert not a.subsumes(b)

    def test_lower_degree_does_not_subsume(self):
        weak = value(FuzzyInterval(1.0, 2.0), env={"a"}, degree=0.5)
        strong = value(FuzzyInterval(0.0, 3.0), env={"a"}, degree=1.0)
        assert not weak.subsumes(strong)
        assert strong.subsumes(weak) is False  # strong is wider

    def test_slack_tolerates_jitter(self):
        base = value(FuzzyInterval(1.0, 2.0))
        # Jitter makes the newcomer *narrower* by a hair: without slack it
        # counts as new information, with slack it is redundant.
        jitter = value(FuzzyInterval(1.0 + 1e-9, 2.0 - 1e-9))
        assert base.subsumes(jitter, slack=1e-6)
        assert not base.subsumes(jitter, slack=0.0)

    def test_slack_applies_to_core(self):
        base = value(FuzzyInterval(1.0, 2.0, 0.5, 0.5))
        shifted_core = value(FuzzyInterval(1.0 + 1e-9, 2.0, 0.5 + 1e-9, 0.5))
        assert shifted_core.subsumes(base, slack=1e-6)

    def test_equal_values_subsume_each_other(self):
        a = value(FuzzyInterval(1.0, 2.0), env={"a"})
        b = value(FuzzyInterval(1.0, 2.0), env={"a"})
        assert a.subsumes(b) and b.subsumes(a)
