"""Tests for the knowledge-base unit (fault modes + qualitative rules)."""

import pytest

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.core.knowledge import (
    KnowledgeBase,
    QualitativeRule,
    common_fault_modes,
)
from repro.fuzzy import FuzzyInterval


@pytest.fixture(scope="module")
def golden():
    return three_stage_amplifier()


@pytest.fixture(scope="module")
def kb(golden):
    return KnowledgeBase(golden)


def faulty_measurements(golden, fault, imprecision=0.02):
    op = DCSolver(apply_fault(golden, fault)).solve()
    return probe_all(op, ["vs", "v2", "v1"], imprecision=imprecision)


class TestCatalogue:
    def test_resistor_has_paper_modes(self):
        modes = {m.name for m in common_fault_modes()["Resistor"]}
        assert modes == {"open", "short", "high", "low"}

    def test_deviation_sets_are_fuzzy(self):
        short = next(
            m for m in common_fault_modes()["Resistor"] if m.name == "short"
        )
        assert short.deviation.membership(0.0) == 1.0
        assert short.deviation.membership(1.0) == 0.0

    def test_modes_for_component(self, kb, golden):
        assert {m.name for m in kb.modes_for(golden.component("T2"))} == {
            "junction-open",
            "beta-low",
            "vbe-high",
        }

    def test_soft_modes_have_multiple_representatives(self, golden):
        high = next(m for m in common_fault_modes()["Resistor"] if m.name == "high")
        faults = high.faults(golden.component("R3"))
        assert len(faults) >= 3
        values = {f.value for f in faults}
        assert len(values) == len(faults)


class TestModeMatching:
    def test_short_circuit_identified(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        matches = kb.match_fault_modes(measurements, candidates=["R2"])
        best = matches[0]
        assert (best.component, best.mode) == ("R2", "short")
        assert best.degree > 0.9

    def test_wrong_hypotheses_score_low(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        matches = kb.match_fault_modes(measurements, candidates=["R6"])
        assert all(m.degree < 0.5 for m in matches)

    def test_soft_drift_matched_by_band_mode(self, kb, golden):
        measurements = faulty_measurements(
            golden, Fault(FaultKind.PARAM, "R3", value=26.4e3)
        )
        matches = kb.match_fault_modes(measurements, candidates=["R3"])
        best = {(m.mode): m.degree for m in matches}
        assert best["high"] > best.get("short", 0.0)

    def test_per_point_scores_recorded(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        match = kb.match_fault_modes(measurements, candidates=["R2"])[0]
        assert set(match.per_point) == {"V(vs)", "V(v2)", "V(v1)"}

    def test_unknown_candidate_ignored(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        assert kb.match_fault_modes(measurements, candidates=["nope"]) == []

    def test_refine_weights_by_suspicion(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        suspicions = {"R2": 1.0, "R1": 0.3}
        refined = kb.refine(suspicions, measurements, top_k=10)
        scores = {}
        for m in refined:
            scores[m.component] = max(scores.get(m.component, 0.0), m.degree)
        assert scores["R2"] > scores.get("R1", 0.0)
        # A weak suspicion caps the refinement weight.
        assert scores.get("R1", 0.0) <= 0.3
        # Unimplicated components are not hypothesised at all.
        assert "R6" not in scores

    def test_refine_top_k(self, kb, golden):
        measurements = faulty_measurements(golden, Fault(FaultKind.SHORT, "R2"))
        suspicions = {name: 1.0 for name in ("R1", "R2", "R3", "T1")}
        assert len(kb.refine(suspicions, measurements, top_k=2)) == 2


class TestQualitativeRules:
    def _vbe_rule(self):
        def condition(values):
            vbe = values.get("V(n1)")
            if vbe is None:
                return 0.0
            return 1.0 if vbe.centroid < 0.4 else 0.0

        return QualitativeRule("base-starved", condition, "R1", certainty=0.8)

    def test_rule_fires_with_certainty_cap(self, golden):
        kb = KnowledgeBase(golden)
        kb.add_rule(self._vbe_rule())
        hits = kb.apply_rules({"V(n1)": FuzzyInterval.crisp(0.1)})
        assert hits == {"R1": 0.8}

    def test_rule_silent_when_condition_fails(self, golden):
        kb = KnowledgeBase(golden)
        kb.add_rule(self._vbe_rule())
        assert kb.apply_rules({"V(n1)": FuzzyInterval.crisp(1.9)}) == {}

    def test_rule_unknown_component_rejected(self, golden):
        kb = KnowledgeBase(golden)
        with pytest.raises(KeyError):
            kb.add_rule(QualitativeRule("bad", lambda v: 0.0, "R99"))

    def test_rule_invalid_certainty_rejected(self):
        with pytest.raises(ValueError):
            QualitativeRule("bad", lambda v: 0.0, "R1", certainty=0.0)

    def test_rule_invalid_firing_rejected(self, golden):
        kb = KnowledgeBase(golden)
        kb.add_rule(QualitativeRule("broken", lambda v: 2.0, "R1"))
        with pytest.raises(ValueError):
            kb.apply_rules({})

    def test_multiple_rules_max_combination(self, golden):
        kb = KnowledgeBase(golden)
        kb.add_rule(QualitativeRule("weak", lambda v: 1.0, "R1", certainty=0.3))
        kb.add_rule(QualitativeRule("strong", lambda v: 1.0, "R1", certainty=0.9))
        assert kb.apply_rules({}) == {"R1": 0.9}


class TestThresholdRule:
    def test_fires_above(self, golden):
        from repro.core.knowledge import threshold_rule

        kb = KnowledgeBase(golden)
        kb.add_rule(threshold_rule("vbe-on", "Vbe(T1)", 0.4, "T1"))
        hits = kb.apply_rules({"Vbe(T1)": FuzzyInterval.crisp(0.7)})
        assert hits == {"T1": 1.0}

    def test_silent_below(self, golden):
        from repro.core.knowledge import threshold_rule

        kb = KnowledgeBase(golden)
        kb.add_rule(threshold_rule("vbe-on", "Vbe(T1)", 0.4, "T1"))
        assert kb.apply_rules({"Vbe(T1)": FuzzyInterval.crisp(0.1)}) == {}

    def test_partial_firing_near_threshold(self, golden):
        from repro.core.knowledge import threshold_rule

        kb = KnowledgeBase(golden)
        kb.add_rule(threshold_rule("vbe-on", "Vbe(T1)", 0.4, "T1", softness=0.5))
        hits = kb.apply_rules({"Vbe(T1)": FuzzyInterval(0.3, 0.3, 0.1, 0.1)})
        degree = hits.get("T1", 0.0)
        assert 0.0 < degree <= 1.0

    def test_below_direction(self, golden):
        from repro.core.knowledge import threshold_rule

        kb = KnowledgeBase(golden)
        kb.add_rule(threshold_rule("starved", "V(n1)", 0.4, "R1", above=False))
        assert kb.apply_rules({"V(n1)": FuzzyInterval.crisp(0.1)}) == {"R1": 1.0}
        assert kb.apply_rules({"V(n1)": FuzzyInterval.crisp(1.9)}) == {}

    def test_missing_point_silent(self, golden):
        from repro.core.knowledge import threshold_rule

        kb = KnowledgeBase(golden)
        kb.add_rule(threshold_rule("vbe-on", "Vbe(T1)", 0.4, "T1"))
        assert kb.apply_rules({}) == {}
