"""Every shipped example must run clean end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "three_stage_diagnosis", "dynamic_mode"} <= names
    assert len(EXAMPLES) >= 3
