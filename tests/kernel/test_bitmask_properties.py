"""Property tests: the bitmask algebra agrees with set-based Environments.

The fast kernel's correctness rests on two correspondences — masks
faithfully encode assumption sets, and :class:`FastNogoodDatabase`
reproduces :class:`NogoodDatabase`'s antichain semantics add-for-add —
which hypothesis exercises here over random inputs.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atms import Environment, NogoodDatabase
from repro.atms.assumptions import Assumption
from repro.kernel import (
    AssumptionRegistry,
    FastNogoodDatabase,
    mask_is_proper_subset,
    mask_is_subset,
    mask_union,
    popcount,
)

_names = st.sampled_from(["a", "b", "c", "d", "e", "f", "g"])
_sets = st.sets(_names, max_size=5).map(
    lambda s: frozenset(Assumption(n, n) for n in s)
)


class TestMaskAlgebra:
    @given(_sets, _sets)
    @settings(max_examples=100, deadline=None)
    def test_subset_matches_set_semantics(self, sa, sb):
        reg = AssumptionRegistry()
        ma, mb = reg.mask_of_assumptions(sa), reg.mask_of_assumptions(sb)
        assert mask_is_subset(ma, mb) == (sa <= sb)
        assert mask_is_proper_subset(ma, mb) == (sa < sb)

    @given(_sets, _sets)
    @settings(max_examples=100, deadline=None)
    def test_union_matches_set_semantics(self, sa, sb):
        reg = AssumptionRegistry()
        ma, mb = reg.mask_of_assumptions(sa), reg.mask_of_assumptions(sb)
        assert mask_union(ma, mb) == reg.mask_of_assumptions(sa | sb)

    @given(_sets)
    @settings(max_examples=100, deadline=None)
    def test_popcount_is_cardinality(self, s):
        reg = AssumptionRegistry()
        assert popcount(reg.mask_of_assumptions(s)) == len(s)

    @given(_sets)
    @settings(max_examples=100, deadline=None)
    def test_mask_roundtrips_through_environment(self, s):
        reg = AssumptionRegistry()
        env = Environment(s)
        mask = reg.mask_of(env)
        canonical = reg.environment(mask)
        assert canonical == env
        assert reg.mask_of(canonical) == mask
        # Interning returns the one canonical instance.
        assert reg.intern(Environment(s)) is canonical

    @given(st.lists(_sets, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_masks_stable_across_registrations(self, sets):
        """Bits are append-only: later registrations never change the
        mask of an earlier environment."""
        reg = AssumptionRegistry()
        masks = []
        for s in sets:
            masks.append(reg.mask_of_assumptions(s))
        for s, mask in zip(sets, masks):
            assert reg.mask_of_assumptions(s) == mask


class TestFastNogoodDatabaseDifferential:
    @given(
        st.lists(
            st.tuples(
                st.sets(_names, min_size=1, max_size=4).map(
                    lambda s: frozenset(Assumption(n, n) for n in s)
                ),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=12,
        ),
        _sets,
    )
    @settings(max_examples=80, deadline=None)
    def test_add_for_add_equivalence(self, entries, query):
        ref = NogoodDatabase()
        fast = FastNogoodDatabase(AssumptionRegistry())
        for s, d in entries:
            env = Environment(s)
            assert ref.add(env, d) == fast.add(env, d)
            # After every single add, observable state must agree.
            probe = Environment(query)
            assert ref.is_inconsistent(probe) == fast.is_inconsistent(probe)
            assert abs(ref.conflict_degree(probe) - fast.conflict_degree(probe)) < 1e-12

        def key(ng):
            return (tuple(sorted(a.name for a in ng.environment.assumptions)), ng.degree)

        assert sorted(map(key, ref.minimal())) == sorted(map(key, fast.minimal()))
        assert sorted(map(key, ref.hard())) == sorted(map(key, fast.hard()))

    @given(
        st.lists(
            st.tuples(
                st.sets(_names, min_size=1, max_size=4).map(
                    lambda s: frozenset(Assumption(n, n) for n in s)
                ),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_store_stays_degree_antichain(self, entries):
        fast = FastNogoodDatabase(AssumptionRegistry())
        for s, d in entries:
            fast.add(Environment(s), d)
        stored = fast.minimal()
        for n1, n2 in itertools.combinations(stored, 2):
            if n1.environment.is_proper_subset(n2.environment):
                assert n1.degree < n2.degree
            if n2.environment.is_proper_subset(n1.environment):
                assert n2.degree < n1.degree
