"""Differential harness: the fast kernel must be observationally
identical to the reference.

Every scenario (library circuit x fault mode) runs through both kernels
and the *entire* diagnosis — ranked candidates, suspicion degrees,
weighted nogoods, consistencies, propagation step counts — must agree
to 1e-9.  A second battery drives a persistent propagator with
measurements added one at a time, the workload the fast kernel's
dirty-tracking was built for, and checks the incremental fixpoint
against the reference after every single run.
"""

import math

import pytest

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.generators import resistor_ladder
from repro.circuit.library import (
    amplifier_cascade,
    diode_resistor_circuit,
    three_stage_amplifier,
)
from repro.circuit.measurements import probe, probe_all
from repro.circuit.constraints import ConstraintNetwork
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.core.predict import predict_nominal
from repro.core.propagation import FuzzyPropagator, PropagatorConfig
from repro.runtime import RunContext

TOL = 1e-9

SCENARIOS = [
    ("cascade-healthy", amplifier_cascade, None, ["a", "b", "c", "d"]),
    (
        "cascade-gain-drift",
        amplifier_cascade,
        Fault(FaultKind.PARAM, "amp2", "gain", 0.2),
        ["a", "b", "c", "d"],
    ),
    (
        "diode-short-r1",
        diode_resistor_circuit,
        Fault(FaultKind.SHORT, "r1"),
        ["vin", "n1", "n2"],
    ),
    (
        "diode-open-d1",
        diode_resistor_circuit,
        Fault(FaultKind.OPEN, "d1"),
        ["vin", "n1", "n2"],
    ),
    (
        "amp-short-r2",
        three_stage_amplifier,
        Fault(FaultKind.SHORT, "R2"),
        ["vs", "v1", "v2", "n1", "n2"],
    ),
    (
        "amp-open-r5",
        three_stage_amplifier,
        Fault(FaultKind.OPEN, "R5"),
        ["vs", "v1", "v2", "n1", "n2"],
    ),
]


def _diagnose(maker, fault, nets, kernel):
    golden = maker()
    faulty = apply_fault(golden, fault) if fault else golden
    op = DCSolver(faulty).solve()
    measurements = probe_all(op, nets, imprecision=0.02)
    engine = Flames(golden, FlamesConfig(kernel=kernel))
    return engine.diagnose(measurements)


def _nogood_key(ng):
    return (tuple(sorted(a.datum for a in ng.environment)), ng.degree)


@pytest.mark.parametrize(
    "maker,fault,nets", [s[1:] for s in SCENARIOS], ids=[s[0] for s in SCENARIOS]
)
class TestDiagnosisDifferential:
    def test_identical_diagnosis(self, maker, fault, nets):
        ref = _diagnose(maker, fault, nets, "reference")
        fast = _diagnose(maker, fault, nets, "fast")

        assert ref.is_consistent == fast.is_consistent

        ranked_ref = ref.ranked_components()
        ranked_fast = fast.ranked_components()
        assert [c for c, _ in ranked_ref] == [c for c, _ in ranked_fast]
        for (_, dr), (_, df) in zip(ranked_ref, ranked_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL)

        ng_ref = sorted(map(_nogood_key, ref.nogoods))
        ng_fast = sorted(map(_nogood_key, fast.nogoods))
        assert [k[0] for k in ng_ref] == [k[0] for k in ng_fast]
        for (_, dr), (_, df) in zip(ng_ref, ng_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL)

        diag_ref = [(tuple(sorted(d.components)), d.degree) for d in ref.diagnoses]
        diag_fast = [(tuple(sorted(d.components)), d.degree) for d in fast.diagnoses]
        assert [k for k, _ in diag_ref] == [k for k, _ in diag_fast]
        for (_, dr), (_, df) in zip(diag_ref, diag_fast):
            assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL)

        assert set(ref.consistencies) == set(fast.consistencies)
        for point in ref.consistencies:
            assert math.isclose(
                ref.consistencies[point].signed,
                fast.consistencies[point].signed,
                rel_tol=0,
                abs_tol=TOL,
            )

    def test_identical_propagation_trace(self, maker, fault, nets):
        """The fast kernel skips provable no-ops but never reorders work,
        so even the step count and conflict log must match exactly."""
        ref = _diagnose(maker, fault, nets, "reference")
        fast = _diagnose(maker, fault, nets, "fast")
        assert ref.propagation.steps == fast.propagation.steps
        assert ref.propagation.quiescent == fast.propagation.quiescent
        assert len(ref.conflicts) == len(fast.conflicts)
        for cr, cf in zip(ref.conflicts, fast.conflicts):
            assert cr.variable == cf.variable
            assert cr.environment == cf.environment
            assert cr.direction == cf.direction
            assert math.isclose(cr.degree, cf.degree, rel_tol=0, abs_tol=TOL)


def _incremental_states(circuit, faulty, nets, kernel):
    """Drive one persistent propagator, snapshotting after every run."""
    op = DCSolver(faulty).solve()
    network = ConstraintNetwork(circuit, False)
    prop = FuzzyPropagator(network, config=PropagatorConfig(kernel=kernel))
    for name, pred in predict_nominal(circuit).items():
        if name in network.variables:
            prop.set_value(name, pred.value, pred.support, source="prediction")
    snapshots = []

    def snap():
        conflicts = sorted(
            (c.variable, c.environment, round(c.degree, 9), c.direction)
            for c in prop.conflicts
        )
        estimates = {
            n: (iv.as_tuple() if iv is not None else None)
            for n, iv in prop.estimates().items()
        }
        snapshots.append((conflicts, estimates))

    prop.run()
    snap()
    for net in nets:
        m = probe(op, net, 0.02)
        prop.set_value(m.point, m.value)
        prop.run()
        snap()
    return snapshots


def _assert_same_partial(ref, fast):
    """The two kernels' (possibly partial) results must agree exactly."""
    assert ref.propagation.steps == fast.propagation.steps
    assert ref.propagation.quiescent == fast.propagation.quiescent
    assert ref.propagation.interrupted == fast.propagation.interrupted
    ranked_ref = ref.ranked_components()
    ranked_fast = fast.ranked_components()
    assert [c for c, _ in ranked_ref] == [c for c, _ in ranked_fast]
    for (_, dr), (_, df) in zip(ranked_ref, ranked_fast):
        assert math.isclose(dr, df, rel_tol=0, abs_tol=TOL)
    assert sorted(map(_nogood_key, ref.nogoods)) == sorted(map(_nogood_key, fast.nogoods))
    diag_ref = [(tuple(sorted(d.components)), d.degree) for d in ref.diagnoses]
    diag_fast = [(tuple(sorted(d.components)), d.degree) for d in fast.diagnoses]
    assert diag_ref == diag_fast
    assert len(ref.conflicts) == len(fast.conflicts)
    for cr, cf in zip(ref.conflicts, fast.conflicts):
        assert cr.variable == cf.variable
        assert cr.environment == cf.environment


class TestInterruptionDifferential:
    """Expiring mid-propagation must leave *identical partial semantics*
    on both kernels.

    Budgets are charged once per work-list pop and the kernels process
    the identical work list (pinned by the step-count assertions above),
    so a step budget — or a deterministic fake clock advanced per check
    — cuts both runs at exactly the same pop.  The partial result must
    still be well-formed: ranked, classified, serialisable, flagged.
    """

    def _ladder_scenario(self):
        maker = lambda: resistor_ladder(16)
        fault = Fault(FaultKind.OPEN, "Rp3")
        faulty = apply_fault(maker(), fault)
        op = DCSolver(faulty).solve()
        nets = [n for n in sorted(op.voltages) if n != "0"][:8]
        measurements = probe_all(op, nets, imprecision=0.02)
        return maker, measurements

    def _run(self, maker, measurements, kernel, ctx):
        engine = Flames(maker(), FlamesConfig(kernel=kernel))
        return engine.diagnose(measurements, ctx=ctx)

    def test_step_budget_interrupts_both_kernels_identically(self):
        maker, measurements = self._ladder_scenario()
        full = self._run(maker, measurements, "reference", None)
        assert full.propagation.quiescent and not full.interrupted
        budget = full.propagation.steps // 2
        assert budget > 0, "scenario too small to interrupt mid-propagation"

        results = {}
        for kernel in ("reference", "fast"):
            ctx = RunContext(step_budget=budget)
            result = self._run(maker, measurements, kernel, ctx)
            assert result.interrupted
            assert ctx.stop_reason == "step-budget"
            assert result.propagation.interrupted
            assert not result.propagation.quiescent
            results[kernel] = result
        ref, fast = results["reference"], results["fast"]
        # The budget is charged *before* each pop, so exactly budget-1
        # pops execute — deterministically, on both kernels.
        assert ref.propagation.steps == budget - 1
        _assert_same_partial(ref, fast)
        # Partial really is partial: fewer steps than the full run.
        assert ref.propagation.steps < full.propagation.steps

    def test_fake_clock_deadline_interrupts_both_kernels_identically(self):
        maker, measurements = self._ladder_scenario()

        def make_clock():
            now = [0.0]

            def clock():
                now[0] += 0.001  # every check advances one millisecond
                return now[0]

            return clock

        results = {}
        for kernel in ("reference", "fast"):
            ctx = RunContext.with_timeout(0.05, clock=make_clock())
            result = self._run(maker, measurements, kernel, ctx)
            assert result.interrupted
            assert ctx.stop_reason == "deadline"
            results[kernel] = result
        _assert_same_partial(results["reference"], results["fast"])


class TestIncrementalDifferential:
    """One measurement at a time against a persistent propagator —
    the incremental path must track the reference at every step."""

    @pytest.mark.parametrize(
        "maker,fault",
        [
            (three_stage_amplifier, Fault(FaultKind.SHORT, "R2")),
            (lambda: resistor_ladder(12), Fault(FaultKind.OPEN, "Rp3")),
        ],
        ids=["amp-short-r2", "ladder12-open-r3"],
    )
    def test_stepwise_equivalence(self, maker, fault):
        golden = maker()
        faulty = apply_fault(golden, fault)
        op = DCSolver(faulty).solve()
        nets = [n for n in sorted(op.voltages) if n != "0"][:6]
        ref = _incremental_states(golden, faulty, nets, "reference")
        fast = _incremental_states(golden, faulty, nets, "fast")
        assert len(ref) == len(fast)
        for i, (r, f) in enumerate(zip(ref, fast)):
            assert r[0] == f[0], f"conflict log diverged after run {i}"
            assert r[1] == f[1], f"estimates diverged after run {i}"
