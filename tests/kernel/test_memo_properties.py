"""Property tests for the fast kernel's memoization layer.

Two invariants: a cached computation returns exactly what the uncached
one would (including raising the same exception class), and every cache
stays within its configured bound no matter the access pattern.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coincidence import classify
from repro.fuzzy import FuzzyInterval
from repro.kernel import CachedFuzzyOps, InternTable, ProjectionCache

_widths = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


@st.composite
def intervals(draw, lo=-20.0, hi=20.0):
    m1 = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    m2 = draw(st.floats(min_value=m1, max_value=hi, allow_nan=False))
    return FuzzyInterval(m1, m2, draw(_widths), draw(_widths))


def _same(t1, t2):
    """Tuple equality where NaN == NaN (division by a near-zero interval
    can produce NaN spreads — the cache must still reproduce them)."""
    return len(t1) == len(t2) and all(
        (math.isnan(x) and math.isnan(y)) or x == y for x, y in zip(t1, t2)
    )


class TestCachedEqualsUncached:
    @given(intervals(), intervals())
    @settings(max_examples=80, deadline=None)
    def test_arithmetic(self, a, b):
        ops = CachedFuzzyOps()
        for cached_fn, plain in (
            (ops.add, lambda: a + b),
            (ops.sub, lambda: a - b),
            (ops.mul, lambda: a * b),
        ):
            first = cached_fn(a, b)
            again = cached_fn(a, b)  # second call serves from cache
            assert first.as_tuple() == plain().as_tuple()
            assert again.as_tuple() == first.as_tuple()

    @given(intervals(), intervals())
    @settings(max_examples=80, deadline=None)
    def test_division_and_error_caching(self, a, b):
        ops = CachedFuzzyOps()
        try:
            expected = (a / b).as_tuple()
        except ZeroDivisionError:
            for _ in range(2):  # the failure must be cached and re-raised
                with pytest.raises(ZeroDivisionError):
                    ops.div(a, b)
            return
        assert _same(ops.div(a, b).as_tuple(), expected)
        assert _same(ops.div(a, b).as_tuple(), expected)

    @given(intervals(), intervals())
    @settings(max_examples=80, deadline=None)
    def test_intersection_hull(self, a, b):
        ops = CachedFuzzyOps()
        plain = a.intersection_hull(b)
        cached = ops.intersection_hull(a, b)
        if plain is None:
            assert cached is None
            assert ops.intersection_hull(a, b) is None
        else:
            assert cached.as_tuple() == plain.as_tuple()
            assert ops.intersection_hull(a, b).as_tuple() == plain.as_tuple()

    @given(intervals(), intervals())
    @settings(max_examples=80, deadline=None)
    def test_coincidence_classification(self, a, b):
        ops = CachedFuzzyOps()
        plain = classify(a, b)
        assert ops.call(classify, a, b) == plain
        assert ops.call(classify, a, b) == plain  # cache hit path


class TestCachesAreBounded:
    def test_ops_cache_bound(self):
        ops = CachedFuzzyOps(maxsize=16)
        for i in range(100):
            ops.add(FuzzyInterval.crisp(float(i)), FuzzyInterval.crisp(1.0))
        assert len(ops) <= 16
        # Still correct after heavy eviction.
        assert ops.add(
            FuzzyInterval.crisp(3.0), FuzzyInterval.crisp(4.0)
        ).as_tuple() == (FuzzyInterval.crisp(3.0) + FuzzyInterval.crisp(4.0)).as_tuple()

    def test_intern_table_bound_and_canonical(self):
        table = InternTable(maxsize=8)
        a = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        b = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        assert table.intern(a) is a
        assert table.intern(b) is a  # equal value, same canonical instance
        for i in range(50):
            table.intern(FuzzyInterval.crisp(float(i)))
        assert len(table) <= 8
        # After eviction a fresh instance becomes the new canonical one.
        c = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        assert table.intern(c) is c

    def test_projection_cache_bound_and_sentinel(self):
        cache = ProjectionCache(maxsize=4)
        assert cache.lookup(("missing",)) is ProjectionCache.MISS
        cache.store(("k", 1), None)  # cached None is distinct from MISS
        assert cache.lookup(("k", 1)) is None
        for i in range(20):
            cache.store(("k", i), i)
        assert len(cache) <= 4
        stats = cache.stats()
        assert stats["misses"] >= 1 and stats["entries"] <= 4

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            CachedFuzzyOps(maxsize=0)
        with pytest.raises(ValueError):
            InternTable(maxsize=-1)
