"""Tests for the consistent-hash ring: spread, stability, failover order."""

import hashlib
import json

import pytest

from repro.cluster.ring import HashRing

#: Routing keys shaped like real job content hashes (sha256 hex).
KEYS = [hashlib.sha256(f"job-{i}".encode()).hexdigest() for i in range(400)]


class TestMembership:
    def test_add_is_idempotent(self):
        ring = HashRing(["r0", "r1"])
        before = ring.snapshot()
        ring.add("r0")
        assert ring.snapshot() == before
        assert len(ring) == 2
        assert "r0" in ring and "r2" not in ring

    def test_remove_unknown_is_a_noop(self):
        ring = HashRing(["r0"])
        ring.remove("nope")
        assert ring.nodes == ["r0"]

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_snapshot_is_json_safe(self):
        ring = HashRing(["r0", "r1"], vnodes=8)
        snap = json.loads(json.dumps(ring.snapshot()))
        assert snap["nodes"] == ["r0", "r1"]
        assert snap["points"] == 16


class TestRouting:
    def test_route_is_deterministic(self):
        a, b = HashRing(["r0", "r1", "r2"]), HashRing(["r2", "r1", "r0"])
        for key in KEYS:
            assert a.route(key) == b.route(key)

    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route("abc") is None
        assert ring.preference("abc") == []

    def test_load_spreads_over_all_replicas(self):
        ring = HashRing(["r0", "r1", "r2"])
        counts = {"r0": 0, "r1": 0, "r2": 0}
        for key in KEYS:
            counts[ring.route(key)] += 1
        # With 64 vnodes each replica should own a meaningful share —
        # no replica starved, none hoarding.
        for owner, count in counts.items():
            assert count > len(KEYS) * 0.15, (owner, counts)

    def test_preference_lists_every_replica_once_primary_first(self):
        ring = HashRing(["r0", "r1", "r2"])
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert sorted(order) == ["r0", "r1", "r2"]
            assert order[0] == ring.route(key)

    def test_preference_count_truncates(self):
        ring = HashRing(["r0", "r1", "r2"])
        assert len(ring.preference(KEYS[0], count=2)) == 2
        assert len(ring.preference(KEYS[0], count=99)) == 3

    def test_non_hex_keys_still_route(self):
        ring = HashRing(["r0", "r1"])
        assert ring.route("not a hash at all!") in ("r0", "r1")


class TestStability:
    def test_removal_only_moves_the_victims_keys(self):
        ring = HashRing(["r0", "r1", "r2"])
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("r1")
        for key in KEYS:
            after = ring.route(key)
            if before[key] == "r1":
                assert after in ("r0", "r2")
            else:
                # A key r1 never owned must not move at all.
                assert after == before[key]

    def test_readd_restores_the_exact_assignment(self):
        # A replica that dies and comes back (same stable id) reclaims
        # exactly its old shard — warm-cache locality survives restarts.
        ring = HashRing(["r0", "r1", "r2"])
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("r1")
        ring.add("r1")
        assert {key: ring.route(key) for key in KEYS} == before

    def test_growth_only_steals_for_the_newcomer(self):
        ring = HashRing(["r0", "r1"])
        before = {key: ring.route(key) for key in KEYS}
        ring.add("r2")
        moved = 0
        for key in KEYS:
            after = ring.route(key)
            if after != before[key]:
                assert after == "r2"  # keys only move *to* the new node
                moved += 1
        assert 0 < moved < len(KEYS)

    def test_failover_order_stable_without_the_dead_primary(self):
        # The gateway filters the preference list to live replicas; the
        # survivors' relative order must match a ring without the dead
        # node, so every router agrees on the fallback.
        ring = HashRing(["r0", "r1", "r2"])
        shrunk = HashRing(["r0", "r1", "r2"])
        shrunk.remove("r2")
        for key in KEYS[:100]:
            filtered = [rid for rid in ring.preference(key) if rid != "r2"]
            assert filtered == shrunk.preference(key)
