"""End-to-end gateway tests over in-process replicas.

Two real :class:`DiagnosisServer`\\ s run on background threads (the
``tests/server`` harness); the gateway fronts them through a
:class:`StaticFleet`, so routing, failover, batch sharding, metric
aggregation and gossip are all exercised over real sockets — only the
subprocess spawning is left to the smoke script.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.cluster import ClusterConfig, ClusterGateway, StaticFleet
from repro.resilience import FaultPlan, faults
from repro.server import ClientError, DiagnosisClient
from repro.service import job_from_spec
from tests.server.test_server import NETLIST, RunningServer


def make_spec(index, confirm=None):
    """A divider-circuit job spec whose content (and hash) varies by index."""
    spec = {
        "unit": f"unit-{index}",
        "netlist_text": NETLIST,
        "probes": {"mid": 4.0 + index * 0.01},
    }
    if confirm:
        spec["confirm"] = {"component": confirm[0], "mode": confirm[1]}
    return spec


def spec_routed_to(gateway, rid, start=0, confirm=None):
    """A spec whose content hash lands on replica ``rid``."""
    for index in range(start, start + 500):
        spec = make_spec(index, confirm=confirm)
        if gateway.ring.route(job_from_spec(spec, 0).content_hash) == rid:
            return spec
    raise AssertionError(f"no spec routed to {rid}")  # pragma: no cover


class RunningCluster:
    """A gateway over a StaticFleet of already-running backends.

    Poll/gossip intervals are set far beyond the test's lifetime — the
    tests drive ``fleet.poll_once`` and ``gateway.gossip_round``
    explicitly so nothing races the assertions.
    """

    def __init__(self, backends):
        endpoints = [f"127.0.0.1:{backend.server.port}" for backend in backends]
        self.config = ClusterConfig(
            port=0,
            replicas=len(endpoints),
            poll_interval=600.0,
            gossip_interval=600.0,
            drain_grace=5.0,
            client_retries=3,
            client_backoff=0.02,
            timeout=10.0,
        )
        self.gateway = ClusterGateway(self.config, fleet=StaticFleet(endpoints))
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.gateway.serve())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 10
        while self.gateway.port is None and time.time() < deadline:
            time.sleep(0.01)
        assert self.gateway.port, "gateway did not bind in time"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.gateway.request_shutdown)
            except RuntimeError:
                pass
        self.thread.join(timeout=15.0)
        assert not self.thread.is_alive(), "gateway did not drain in time"

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 10.0)
        kwargs.setdefault("backoff", 0.05)
        kwargs.setdefault("max_delay", 0.2)
        return DiagnosisClient(port=self.gateway.port, **kwargs)

    def counters(self):
        return self.gateway.telemetry.snapshot()["counters"]


class TestGatewayBasics:
    def test_health_ready_and_metrics_shape(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                with rc.client() as client:
                    assert client.health()["status"] == "ok"
                    ready = client.ready()
                    assert ready["status"] == "ready"
                    assert ready["replicas_ready"] == 2
                    metrics = client.metrics()
                    assert metrics["ring"]["nodes"] == ["r0", "r1"]
                    assert set(metrics["fleet"]["replicas"]) == {"r0", "r1"}
                    assert "gossip" in metrics
                    json.dumps(metrics)  # JSON-safe end to end

    def test_unknown_route_404(self):
        with RunningServer() as b0:
            with RunningCluster([b0]) as rc:
                with rc.client(retries=0) as client:
                    with pytest.raises(ClientError) as err:
                        client._request("GET", "/nope")
                    assert err.value.status == 404

    def test_bad_spec_is_a_gateway_400(self):
        with RunningServer() as b0:
            with RunningCluster([b0]) as rc:
                with rc.client(retries=0) as client:
                    with pytest.raises(ClientError) as err:
                        client.diagnose({"unit": "u", "probes": {"mid": 1.0}})
                    assert err.value.status == 400


class TestRouting:
    def test_same_content_sticks_to_one_replica(self):
        # Sticky sharding keeps a circuit's shard-owner cache warm: the
        # repeat request must be a cache hit, which can only happen if
        # both requests landed on the same replica.
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                spec = spec_routed_to(rc.gateway, "r0")
                with rc.client() as client:
                    first = client.diagnose(spec)
                    second = client.diagnose(spec)
                assert first["status"] == "ok"
                assert second["cache_hit"] is True
                counters = rc.counters()
                assert counters.get("routed.r0") == 2
                assert "routed.r1" not in counters

    def test_distinct_content_spreads_across_replicas(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                with rc.client() as client:
                    client.diagnose(spec_routed_to(rc.gateway, "r0"))
                    client.diagnose(spec_routed_to(rc.gateway, "r1"))
                counters = rc.counters()
                assert counters.get("routed.r0") == 1
                assert counters.get("routed.r1") == 1

    def test_failover_to_next_ring_replica_on_dead_primary(self):
        b0 = RunningServer().__enter__()
        with RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                spec = spec_routed_to(rc.gateway, "r0")
                b0.shutdown()  # the shard owner dies mid-flight
                with rc.client() as client:
                    result = client.diagnose(spec)
                assert result["status"] == "ok"
                counters = rc.counters()
                assert counters.get("ring_failovers", 0) >= 1
                assert counters.get("routed.r1") == 1


class TestBatchSharding:
    def test_batch_splits_by_ring_and_reassembles_in_order(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                specs = [
                    spec_routed_to(rc.gateway, "r0"),
                    spec_routed_to(rc.gateway, "r1"),
                    spec_routed_to(rc.gateway, "r0", start=100),
                ]
                with rc.client() as client:
                    report = client.batch(specs)
                units = [result["unit"] for result in report["results"]]
                assert units == [spec["unit"] for spec in specs]
                assert all(r["status"] == "ok" for r in report["results"])
                assert report["shards"] == {"r0": 2, "r1": 1}


class TestAggregatedMetrics:
    def test_cluster_telemetry_sums_replica_counters(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                with rc.client() as client:
                    client.diagnose(spec_routed_to(rc.gateway, "r0"))
                    client.diagnose(spec_routed_to(rc.gateway, "r1"))
                    # One explicit health tick pulls /metrics?samples=1
                    # from every replica into the aggregation cache.
                    rc.gateway.fleet.poll_once(1)
                    metrics = client.metrics()
                merged = metrics["cluster_telemetry"]
                assert merged is not None
                # Both replicas served one diagnose each; the merged
                # counter must see both (plus our probe traffic).
                assert merged["counters"]["http_requests"] >= 2
                assert any(
                    name.startswith("http_seconds_POST /v1/diagnose")
                    for name in merged["observations"]
                )
                json.dumps(metrics)


class TestGossipConvergence:
    def test_confirmed_repair_reaches_the_other_replica(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                spec = spec_routed_to(rc.gateway, "r0", confirm=("Rbot", "short"))
                with rc.client() as client:
                    client.diagnose(spec)  # r0 learns the rule locally
                rc.gateway.gossip_round(1)
                with DiagnosisClient(port=b1.server.port) as direct:
                    learned = direct.experience()
                assert len(learned["rules"]) == 1
                rule = learned["rules"][0]
                assert rule["component"] == "Rbot"
                assert rule["occurrences"] == 1

    def test_occurrences_do_not_inflate_over_rounds(self):
        with RunningServer() as b0, RunningServer() as b1:
            with RunningCluster([b0, b1]) as rc:
                spec = spec_routed_to(rc.gateway, "r0", confirm=("Rbot", "short"))
                with rc.client() as client:
                    client.diagnose(spec)
                for round_no in range(1, 4):
                    rc.gateway.gossip_round(round_no)
                for backend in (b0, b1):
                    with DiagnosisClient(port=backend.server.port) as direct:
                        rules = direct.experience()["rules"]
                    assert len(rules) == 1
                    assert rules[0]["occurrences"] == 1, backend.server.port
                assert rc.gateway.gossip.export()["rules"][0]["occurrences"] == 1

    def test_dropped_delivery_is_retried_next_round(self):
        plan = FaultPlan.from_spec(
            {"seed": 0, "rules": [{"point": "cluster.gossip_drop", "rate": 1.0, "limit": 1}]}
        )
        faults.install_plan(plan)
        try:
            with RunningServer() as b0, RunningServer() as b1:
                with RunningCluster([b0, b1]) as rc:
                    spec = spec_routed_to(rc.gateway, "r0", confirm=("Rbot", "short"))
                    with rc.client() as client:
                        client.diagnose(spec)
                    rc.gateway.gossip_round(1)  # delivery eaten by chaos
                    assert rc.gateway.gossip.snapshot()["dropped"] == 1
                    with DiagnosisClient(port=b1.server.port) as direct:
                        assert direct.experience()["rules"] == []
                    rc.gateway.gossip_round(2)  # retried and delivered
                    with DiagnosisClient(port=b1.server.port) as direct:
                        rules = direct.experience()["rules"]
                    assert len(rules) == 1 and rules[0]["occurrences"] == 1
        finally:
            faults.uninstall_plan()
