"""Tests for the gossip ledger: no echo, retries, epoch re-seed."""

import json

import pytest

from repro.cluster.gossip import ExperienceGossip
from repro.core.learning import Episode, ExperienceBase, SymptomSignature

SIG_A = (("V(mid)", "slight", 1),)
SIG_B = (("V(out)", "conflict", -1),)


def snapshot_with(*episodes, base_certainty=0.6):
    """An ExperienceBase dict containing the given (sig, component) episodes."""
    base = ExperienceBase(base_certainty=base_certainty)
    for entries, component in episodes:
        base.record(Episode(SymptomSignature(entries), component))
    return base.to_dict()


class TestObserve:
    def test_first_snapshot_is_all_new(self):
        gossip = ExperienceGossip()
        fresh = gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_A, "R1")))
        assert fresh == 2  # one rule, two occurrences
        assert gossip.rule_count() == 1

    def test_reobserving_the_same_snapshot_adds_nothing(self):
        gossip = ExperienceGossip()
        snap = snapshot_with((SIG_A, "R1"))
        assert gossip.observe("r0", 1, snap) == 1
        assert gossip.observe("r0", 1, snap) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 1

    def test_two_replicas_same_rule_accumulates(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        gossip.observe("r1", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.export()["rules"][0]["occurrences"] == 2

    def test_episode_totals_track_deltas(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        assert gossip.snapshot()["episodes"] == 2


class TestDelivery:
    def test_source_replica_owes_nothing(self):
        # Echo-free: what a replica reported must never be sent back.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.pending("r0") is None
        delta = gossip.pending("r1")
        assert delta is not None and delta["rules"][0]["occurrences"] == 1

    def test_delivered_delta_stops_pending(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta)
        assert gossip.pending("r1") is None

    def test_merged_counts_reported_back_are_not_new(self):
        # After r1 merges the delivered delta, its next snapshot includes
        # those occurrences — they must not count as fresh evidence.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta, epoch=1)
        merged = ExperienceBase.from_dict(snapshot_with((SIG_A, "R1")))
        assert gossip.observe("r1", 1, merged.to_dict()) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 1

    def test_dropped_delivery_stays_pending(self):
        # mark_delivered is only called on success; a dropped POST means
        # the same delta is offered again next round.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        first = gossip.pending("r1")
        second = gossip.pending("r1")  # no mark_delivered in between
        assert first == second

    def test_delta_certainty_follows_repetition(self):
        gossip = ExperienceGossip(base_certainty=0.6)
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_A, "R1"), (SIG_A, "R1")))
        delta = gossip.pending("r1")
        rule = delta["rules"][0]
        assert rule["occurrences"] == 3
        assert rule["certainty"] == pytest.approx(1.0 - 0.4**3)


class TestEpochs:
    def test_restart_reseeds_the_replica(self):
        # A bumped epoch means a fresh, empty process: the full ledger
        # becomes pending again, and its re-reports are fresh evidence.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta)
        assert gossip.pending("r1") is None
        gossip.observe("r1", 2, {"base_certainty": 0.6, "episode_count": 0, "rules": []})
        reseed = gossip.pending("r1")
        assert reseed is not None and reseed["rules"][0]["occurrences"] == 1

    def test_same_epoch_keeps_state(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.export()["rules"][0]["occurrences"] == 1


class TestExport:
    def test_export_is_a_loadable_experience_base(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        exported = json.loads(json.dumps(gossip.export()))
        base = ExperienceBase.from_dict(exported)
        assert len(base) == 2
        components = {rule.component for rule in base.rules}
        assert components == {"R1", "R2"}


def _annotate_seed(snapshot, occurrences=None, episodes=None):
    """A restored replica's export: restored rules carry seed_occurrences."""
    annotated = json.loads(json.dumps(snapshot))
    for entry in annotated["rules"]:
        entry["seed_occurrences"] = (
            occurrences if occurrences is not None else entry["occurrences"]
        )
    if episodes is not None:
        annotated["seed_episode_count"] = episodes
    return annotated


class TestStoreSeeding:
    def test_seed_primes_the_ledger(self):
        gossip = ExperienceGossip()
        persisted = snapshot_with((SIG_A, "R1"), (SIG_A, "R1"), (SIG_B, "R2"))
        added = gossip.seed(persisted)
        assert added == 3
        assert gossip.rule_count() == 2
        assert gossip.snapshot()["episodes"] == 3
        # Seeding attributes nothing to any replica: a fresh replica
        # owes the whole ledger.
        delta = gossip.pending("r0")
        assert delta is not None
        assert sum(r["occurrences"] for r in delta["rules"]) == 3

    def test_seed_is_idempotent(self):
        gossip = ExperienceGossip()
        persisted = snapshot_with((SIG_A, "R1"))
        assert gossip.seed(persisted) == 1
        assert gossip.seed(persisted) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 1

    def test_restored_replica_report_is_not_fresh_evidence(self):
        # The round trip persistence enables: gateway seeds from the
        # store, a replica restores the same rules from the same store
        # and re-reports them annotated — the ledger must not inflate.
        gossip = ExperienceGossip()
        persisted = snapshot_with((SIG_A, "R1"), (SIG_A, "R1"))
        gossip.seed(persisted)
        report = _annotate_seed(persisted, episodes=2)
        assert gossip.observe("r0", 1, report) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 2
        assert gossip.snapshot()["episodes"] == 2
        assert gossip.pending("r0") is None

    def test_new_evidence_on_top_of_seed_counts(self):
        gossip = ExperienceGossip()
        persisted = snapshot_with((SIG_A, "R1"))
        gossip.seed(persisted)
        # The replica restored one occurrence, then learned two more.
        grown = snapshot_with((SIG_A, "R1"), (SIG_A, "R1"), (SIG_A, "R1"))
        report = _annotate_seed(grown, occurrences=1, episodes=1)
        assert gossip.observe("r0", 1, report) == 2
        assert gossip.export()["rules"][0]["occurrences"] == 3
        assert gossip.snapshot()["episodes"] == 3

    def test_unannotated_replica_still_counts_fresh(self):
        # A replica without a store reports no seed markers: its rules
        # are fresh evidence exactly as before the persistence plane.
        gossip = ExperienceGossip()
        gossip.seed(snapshot_with((SIG_A, "R1")))
        fresh = gossip.observe("r0", 1, snapshot_with((SIG_B, "R2")))
        assert fresh == 1
        assert gossip.rule_count() == 2

    def test_restart_epoch_reapplies_seed_baseline(self):
        # After a replica restart (epoch bump) the expectation table
        # clears; the re-reported restored rules re-seed the baseline
        # instead of double-counting.
        gossip = ExperienceGossip()
        persisted = snapshot_with((SIG_A, "R1"), (SIG_A, "R1"))
        gossip.seed(persisted)
        report = _annotate_seed(persisted, episodes=2)
        gossip.observe("r0", 1, report)
        gossip.observe("r0", 2, report)  # restarted, restored again
        assert gossip.export()["rules"][0]["occurrences"] == 2
        assert gossip.snapshot()["episodes"] == 2
