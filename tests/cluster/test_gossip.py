"""Tests for the gossip ledger: no echo, retries, epoch re-seed."""

import json

import pytest

from repro.cluster.gossip import ExperienceGossip
from repro.core.learning import Episode, ExperienceBase, SymptomSignature

SIG_A = (("V(mid)", "slight", 1),)
SIG_B = (("V(out)", "conflict", -1),)


def snapshot_with(*episodes, base_certainty=0.6):
    """An ExperienceBase dict containing the given (sig, component) episodes."""
    base = ExperienceBase(base_certainty=base_certainty)
    for entries, component in episodes:
        base.record(Episode(SymptomSignature(entries), component))
    return base.to_dict()


class TestObserve:
    def test_first_snapshot_is_all_new(self):
        gossip = ExperienceGossip()
        fresh = gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_A, "R1")))
        assert fresh == 2  # one rule, two occurrences
        assert gossip.rule_count() == 1

    def test_reobserving_the_same_snapshot_adds_nothing(self):
        gossip = ExperienceGossip()
        snap = snapshot_with((SIG_A, "R1"))
        assert gossip.observe("r0", 1, snap) == 1
        assert gossip.observe("r0", 1, snap) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 1

    def test_two_replicas_same_rule_accumulates(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        gossip.observe("r1", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.export()["rules"][0]["occurrences"] == 2

    def test_episode_totals_track_deltas(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        assert gossip.snapshot()["episodes"] == 2


class TestDelivery:
    def test_source_replica_owes_nothing(self):
        # Echo-free: what a replica reported must never be sent back.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.pending("r0") is None
        delta = gossip.pending("r1")
        assert delta is not None and delta["rules"][0]["occurrences"] == 1

    def test_delivered_delta_stops_pending(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta)
        assert gossip.pending("r1") is None

    def test_merged_counts_reported_back_are_not_new(self):
        # After r1 merges the delivered delta, its next snapshot includes
        # those occurrences — they must not count as fresh evidence.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta, epoch=1)
        merged = ExperienceBase.from_dict(snapshot_with((SIG_A, "R1")))
        assert gossip.observe("r1", 1, merged.to_dict()) == 0
        assert gossip.export()["rules"][0]["occurrences"] == 1

    def test_dropped_delivery_stays_pending(self):
        # mark_delivered is only called on success; a dropped POST means
        # the same delta is offered again next round.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        first = gossip.pending("r1")
        second = gossip.pending("r1")  # no mark_delivered in between
        assert first == second

    def test_delta_certainty_follows_repetition(self):
        gossip = ExperienceGossip(base_certainty=0.6)
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_A, "R1"), (SIG_A, "R1")))
        delta = gossip.pending("r1")
        rule = delta["rules"][0]
        assert rule["occurrences"] == 3
        assert rule["certainty"] == pytest.approx(1.0 - 0.4**3)


class TestEpochs:
    def test_restart_reseeds_the_replica(self):
        # A bumped epoch means a fresh, empty process: the full ledger
        # becomes pending again, and its re-reports are fresh evidence.
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        delta = gossip.pending("r1")
        gossip.mark_delivered("r1", delta)
        assert gossip.pending("r1") is None
        gossip.observe("r1", 2, {"base_certainty": 0.6, "episode_count": 0, "rules": []})
        reseed = gossip.pending("r1")
        assert reseed is not None and reseed["rules"][0]["occurrences"] == 1

    def test_same_epoch_keeps_state(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1")))
        assert gossip.export()["rules"][0]["occurrences"] == 1


class TestExport:
    def test_export_is_a_loadable_experience_base(self):
        gossip = ExperienceGossip()
        gossip.observe("r0", 1, snapshot_with((SIG_A, "R1"), (SIG_B, "R2")))
        exported = json.loads(json.dumps(gossip.export()))
        base = ExperienceBase.from_dict(exported)
        assert len(base) == 2
        components = {rule.component for rule in base.rules}
        assert components == {"R1", "R2"}
