"""Golden-file scenarios: three library circuits, fixed faults/probes.

Shared between the snapshot test and the regeneration entry point:

    PYTHONPATH=src python tests/golden/scenarios.py   # rewrite *.json

Regenerate only when an intentional semantic change lands — the
snapshots are the reference kernel's word on what a diagnosis says.
"""

import json
from pathlib import Path

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import (
    amplifier_cascade,
    diode_resistor_circuit,
    three_stage_amplifier,
)
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.service.jobs import diagnosis_to_dict

GOLDEN_DIR = Path(__file__).parent

SCENARIOS = {
    "cascade_gain_drift": (
        amplifier_cascade,
        Fault(FaultKind.PARAM, "amp2", "gain", 0.2),
        ["a", "b", "c", "d"],
    ),
    "diode_short_r1": (
        diode_resistor_circuit,
        Fault(FaultKind.SHORT, "r1"),
        ["vin", "n1", "n2"],
    ),
    "amp_short_r2": (
        three_stage_amplifier,
        Fault(FaultKind.SHORT, "R2"),
        ["vs", "v1", "v2", "n1", "n2"],
    ),
}


def run_scenario(name, kernel="reference"):
    """The diagnosis_to_dict payload for one named scenario."""
    maker, fault, nets = SCENARIOS[name]
    golden = maker()
    op = DCSolver(apply_fault(golden, fault)).solve()
    measurements = probe_all(op, nets, imprecision=0.02)
    result = Flames(golden, FlamesConfig(kernel=kernel)).diagnose(measurements)
    return diagnosis_to_dict(result)


def golden_path(name):
    return GOLDEN_DIR / f"{name}.json"


def main():
    for name in SCENARIOS:
        payload = run_scenario(name)
        golden_path(name).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {golden_path(name)}")


if __name__ == "__main__":
    main()
