"""Byte-exact golden snapshots of the corpus generator, per class.

Regenerate with ``python tests/golden/corpus_manifests.py`` after an
intentional generator change; anything else that moves these bytes is a
determinism bug (platform-dependent RNG use, dict-order leakage, float
formatting drift) or an accidental behaviour change.
"""

import json

import pytest

from repro.corpus import CLASSES, CorpusManifest
from tests.golden.corpus_manifests import PER_CLASS, golden_path, manifest_json


@pytest.mark.parametrize("scenario_class", CLASSES)
def test_manifest_matches_golden(scenario_class):
    expected = golden_path(scenario_class).read_text()
    assert manifest_json(scenario_class) == expected


@pytest.mark.parametrize("scenario_class", CLASSES)
def test_golden_manifest_is_loadable(scenario_class):
    manifest = CorpusManifest.from_json(golden_path(scenario_class).read_text())
    assert len(manifest) == PER_CLASS
    assert all(s.scenario_class == scenario_class for s in manifest.scenarios)
    # Round trip through plain data preserves the canonical bytes.
    assert manifest.to_json() == golden_path(scenario_class).read_text()
    # Scenarios parse back into solvable, well-formed circuits.
    for scenario in manifest.scenarios:
        circuit = scenario.circuit()
        circuit.validate()
        assert scenario.measurements
        payload = json.loads(golden_path(scenario_class).read_text())
        assert payload["version"] == manifest.version
