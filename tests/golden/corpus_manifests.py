"""Golden corpus manifests: one small snapshot per scenario class.

Shared between the snapshot test and the regeneration entry point:

    PYTHONPATH=src python tests/golden/corpus_manifests.py   # rewrite

Each file pins the byte-exact manifest the generator must produce for
``(seed=101, per_class=2)`` of one class — netlists, fuzzy readings,
injected faults, metadata, everything.  A diff here means the corpus
changed: intentional generator work regenerates and reviews the diff;
anything else is latent nondeterminism or an accidental behaviour
change, and the test catches it.
"""

from pathlib import Path

from repro.corpus import CLASSES, generate_corpus

GOLDEN_DIR = Path(__file__).parent

SEED = 101
PER_CLASS = 2


def manifest_json(scenario_class):
    """Canonical manifest text for one class's golden snapshot."""
    return generate_corpus(SEED, PER_CLASS, [scenario_class]).to_json()


def golden_path(scenario_class):
    return GOLDEN_DIR / f"corpus_{scenario_class}.json"


def main():
    for scenario_class in CLASSES:
        golden_path(scenario_class).write_text(manifest_json(scenario_class))
        print(f"wrote {golden_path(scenario_class)}")


if __name__ == "__main__":
    main()
