"""Golden-file snapshots of full diagnoses on three library circuits.

Each snapshot is the complete ``diagnosis_to_dict`` payload recorded by
the reference kernel (regenerate with ``python tests/golden/scenarios.py``
after an intentional semantic change).  The test replays every scenario
through *both* kernels and compares field by field — exact for
structure, 1e-9 for floats — so a silent behaviour drift in either
kernel shows up as a named-field diff, not a blob mismatch.
"""

import json
import math

import pytest

from tests.golden.scenarios import SCENARIOS, golden_path, run_scenario

TOL = 1e-9


def _assert_matches(actual, expected, path=""):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object"
        assert sorted(actual) == sorted(expected), f"{path}: keys differ"
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected array"
        assert len(actual) == len(expected), f"{path}: length differs"
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert isinstance(actual, (int, float)), f"{path}: expected number"
        assert math.isclose(actual, expected, rel_tol=0, abs_tol=TOL), (
            f"{path}: {actual!r} != {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("kernel", ["reference", "fast"])
def test_diagnosis_matches_golden(name, kernel):
    expected = json.loads(golden_path(name).read_text())
    actual = run_scenario(name, kernel=kernel)
    _assert_matches(actual, expected, path=name)
