"""Tests for the GDE-style probabilistic planner and the random prober."""

import math

import pytest

from repro.baselines import GdeTestPlanner, RandomProbePlanner, shannon_entropy
from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.core import Flames


@pytest.fixture(scope="module")
def engine():
    return Flames(three_stage_amplifier())


@pytest.fixture(scope="module")
def faulty_result(engine):
    golden = three_stage_amplifier()
    op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
    return engine.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))


class TestShannonEntropy:
    def test_certain_bits_zero(self):
        assert shannon_entropy([0.0, 1.0]) == pytest.approx(0.0)

    def test_half_is_one_bit_each(self):
        assert shannon_entropy([0.5, 0.5]) == pytest.approx(2.0)

    def test_monotone_toward_half(self):
        assert shannon_entropy([0.3]) < shannon_entropy([0.4]) < shannon_entropy([0.5])

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            shannon_entropy([1.2])


class TestGdePlanner:
    def test_posteriors_raise_with_suspicion(self, engine, faulty_result):
        planner = GdeTestPlanner(engine, prior=0.02)
        posteriors = planner.probabilities(faulty_result)
        assert posteriors["R2"] > posteriors["R6"]
        assert posteriors["R6"] == pytest.approx(0.02)

    def test_invalid_prior(self, engine):
        with pytest.raises(ValueError):
            GdeTestPlanner(engine, prior=0.0)

    def test_ranking_sorted(self, engine, faulty_result):
        planner = GdeTestPlanner(engine)
        ranked = planner.recommend(faulty_result)
        scores = [t.expected for t in ranked]
        assert scores == sorted(scores)

    def test_measured_points_excluded(self, engine, faulty_result):
        planner = GdeTestPlanner(engine)
        points = {t.point for t in planner.recommend(faulty_result)}
        assert "V(vs)" not in points

    def test_best_prefers_informative_stage(self, engine, faulty_result):
        planner = GdeTestPlanner(engine)
        best = planner.best(faulty_result)
        assert best.point in ("V(n1)", "V(n2)")

    def test_system_entropy_positive(self, engine, faulty_result):
        planner = GdeTestPlanner(engine)
        assert planner.system_entropy(faulty_result) > 0.0

    def test_empty_pool(self, engine, faulty_result):
        planner = GdeTestPlanner(engine)
        assert planner.best(faulty_result, available=[]) is None


class TestRandomPlanner:
    def test_deterministic_for_seed(self, engine, faulty_result):
        a = RandomProbePlanner(engine, seed=3).best(faulty_result)
        b = RandomProbePlanner(engine, seed=3).best(faulty_result)
        assert a.point == b.point

    def test_respects_pool(self, engine, faulty_result):
        planner = RandomProbePlanner(engine, seed=1)
        best = planner.best(faulty_result, available=["V(n1)"])
        assert best.point == "V(n1)"

    def test_exhausted_pool(self, engine, faulty_result):
        planner = RandomProbePlanner(engine, seed=1)
        assert planner.best(faulty_result, available=[]) is None

    def test_expected_entropy_is_nan(self, engine, faulty_result):
        best = RandomProbePlanner(engine, seed=1).best(faulty_result)
        assert math.isnan(best.expected)
