"""Tests for the fault-dictionary baseline."""

import pytest

from repro.baselines import FaultDictionary
from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    three_stage_amplifier,
)


@pytest.fixture(scope="module")
def golden():
    return three_stage_amplifier()


@pytest.fixture(scope="module")
def dictionary(golden):
    return FaultDictionary(golden, ["vs", "v2", "v1"])


class TestConstruction:
    def test_entries_cover_all_components(self, dictionary, golden):
        tabulated = {e.component for e in dictionary.entries}
        expected = {c.name for c in golden.components if c.name != "Vcc"}
        assert expected <= tabulated

    def test_signature_length(self, dictionary):
        assert all(len(e.signature) == 3 for e in dictionary.entries)

    def test_reading_count_validated(self, dictionary):
        with pytest.raises(ValueError):
            dictionary.lookup([1.0, 2.0])


class TestLookup:
    def test_healthy_unit_declared_healthy(self, dictionary, golden):
        match = dictionary.lookup_op(DCSolver(golden).solve())
        assert match.is_healthy

    def test_tabulated_fault_identified_exactly(self, dictionary, golden):
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        match = dictionary.lookup_op(op)
        assert (match.component, match.mode) == ("R2", "short")
        assert match.distance == pytest.approx(0.0, abs=1e-9)

    def test_tabulated_open_identified(self, dictionary, golden):
        op = DCSolver(apply_fault(golden, Fault(FaultKind.OPEN, "R3"))).solve()
        match = dictionary.lookup_op(op)
        assert (match.component, match.mode) == ("R3", "open")

    def test_novel_magnitude_misattributed(self, dictionary, golden):
        """The dictionary's characteristic failure: an unlisted drift
        magnitude matches a different entry with no warning."""
        op = DCSolver(
            apply_fault(golden, Fault(FaultKind.PARAM, "R3", value=33e3))
        ).solve()
        match = dictionary.lookup_op(op)
        assert not match.is_healthy
        assert match.component != "R3"  # misattribution, silently

    def test_untabulated_class_forced_to_answer(self, dictionary, golden):
        op = DCSolver(
            apply_fault(golden, Fault(FaultKind.NODE_OPEN, "T1", pin="b"))
        ).solve()
        match = dictionary.lookup_op(op)
        assert not match.is_healthy  # it always names *something*

    def test_healthy_margin_configurable(self, dictionary, golden):
        op = DCSolver(
            apply_fault(golden, Fault(FaultKind.PARAM, "R3", value=24.4e3))
        ).solve()
        lenient = dictionary.lookup_op(op, healthy_margin=1.0)
        assert lenient.is_healthy
