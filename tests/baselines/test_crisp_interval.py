"""Tests for the crisp interval baseline arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import Interval
from repro.fuzzy import FuzzyInterval


class TestConstruction:
    def test_point(self):
        assert Interval.point(3.0) == Interval(3.0, 3.0)

    def test_around(self):
        assert Interval.around(100.0, 0.05) == Interval(95.0, 105.0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_fuzzy_round_trip(self):
        fz = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        crisp = Interval.from_fuzzy(fz)
        assert crisp == Interval(0.5, 2.5)  # the support
        assert crisp.to_fuzzy().is_crisp_interval


class TestArithmetic:
    def test_add(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)

    def test_sub(self):
        assert Interval(1, 2) - Interval(3, 4) == Interval(-3, -1)

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_mul_mixed_signs(self):
        assert Interval(-2, 3) * Interval(4, 5) == Interval(-10, 15)

    def test_div(self):
        assert Interval(8, 15) / Interval(4, 5) == Interval(8 / 5, 15 / 4)

    def test_div_by_zero_interval(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2) / Interval(-1, 1)

    def test_scalar_coercion(self):
        assert Interval(1, 2) + 1 == Interval(2, 3)
        assert 3 - Interval(1, 2) == Interval(1, 2)
        assert 2 * Interval(1, 2) == Interval(2, 4)
        assert 6 / Interval(2, 3) == Interval(2, 3)

    def test_type_error(self):
        with pytest.raises(TypeError):
            Interval(1, 2) + "x"


class TestSetOperations:
    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 3))
        assert Interval(0, 10).contains(5.0)
        assert not Interval(0, 10).contains(Interval(5, 11))

    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)

    def test_paper_figure2_crisp_row(self):
        """Crisp propagation Vb = Va * [0.95, 1.05] = [2.8, 3.2]."""
        va = Interval(2.95, 3.05)
        amp1 = Interval(0.95, 1.05)
        vb = va * amp1
        assert vb.lo == pytest.approx(2.8025)
        assert vb.hi == pytest.approx(3.2025)


_bounds = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(_bounds)
    hi = draw(st.floats(min_value=lo, max_value=101, allow_nan=False))
    return Interval(lo, hi)


class TestProperties:
    @given(intervals(), intervals())
    def test_addition_encloses_pointwise(self, a, b):
        s = a + b
        assert s.contains(a.midpoint + b.midpoint)

    @given(intervals(), intervals())
    def test_multiplication_encloses_pointwise(self, a, b):
        p = a * b
        for x in (a.lo, a.midpoint, a.hi):
            for y in (b.lo, b.midpoint, b.hi):
                assert p.lo - 1e-6 <= x * y <= p.hi + 1e-6

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.contains(a) and h.contains(b)

    @given(intervals())
    def test_width_non_negative(self, a):
        assert a.width >= 0.0
