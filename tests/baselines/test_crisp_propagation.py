"""Tests for the DIANA-style crisp baseline diagnoser."""

import pytest

from repro.baselines import CrispDiagnoser, crispify
from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    apply_fault,
    probe_all,
    three_stage_amplifier,
)
from repro.core import Flames
from repro.fuzzy import FuzzyInterval


class TestCrispify:
    def test_folds_slopes_into_bounds(self):
        fz = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        crisp = crispify(fz)
        assert crisp.as_tuple() == (0.5, 2.5, 0.0, 0.0)

    def test_crisp_stays_crisp(self):
        fz = FuzzyInterval.crisp_interval(1.0, 2.0)
        assert crispify(fz) == fz


@pytest.fixture(scope="module")
def engines():
    return CrispDiagnoser(three_stage_amplifier()), Flames(three_stage_amplifier())


class TestBehaviour:
    def test_network_constants_crispified(self, engines):
        crisp, _ = engines
        for constraint in crisp.network.constraints:
            for attribute in ("rhs", "k", "interval"):
                value = getattr(constraint, attribute, None)
                if value is not None:
                    assert value.alpha == 0.0 and value.beta == 0.0

    def test_predictions_crispified(self, engines):
        crisp, _ = engines
        for prediction in crisp.predictions().values():
            assert prediction.alpha == 0.0 and prediction.beta == 0.0

    def test_hard_fault_detected_by_both(self, engines):
        crisp, fuzzy = engines
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        assert not crisp.diagnose(measurements).is_consistent
        assert not fuzzy.diagnose(measurements).is_consistent

    def test_soft_fault_masked_by_crisp_only(self, engines):
        """The paper's central claim (figure 2 generalised)."""
        crisp, fuzzy = engines
        golden = three_stage_amplifier()
        op = DCSolver(
            apply_fault(golden, Fault(FaultKind.PARAM, "R3", value=26.4e3))
        ).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
        crisp_result = crisp.diagnose(measurements)
        fuzzy_result = fuzzy.diagnose(measurements)
        assert crisp_result.is_consistent, "crisp engine should mask the drift"
        assert not fuzzy_result.is_consistent, "fuzzy engine should expose it"

    def test_crisp_nogoods_unweighted(self, engines):
        crisp, _ = engines
        golden = three_stage_amplifier()
        op = DCSolver(apply_fault(golden, Fault(FaultKind.SHORT, "R2"))).solve()
        result = crisp.diagnose(probe_all(op, ["vs", "v2", "v1"], imprecision=0.02))
        assert all(n.degree >= 0.999 for n in result.nogoods)

    def test_config_passthrough(self):
        from repro.core import FlamesConfig

        diag = CrispDiagnoser(
            three_stage_amplifier(), FlamesConfig(max_candidate_size=1)
        )
        assert diag.config.max_candidate_size == 1
        # Crispness is enforced regardless of the provided threshold.
        assert diag.config.conflict_threshold > 0.99
