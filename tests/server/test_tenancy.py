"""HTTP-level tenancy tests: API-key auth, per-tenant quotas, the
fleet-health report route, and client-side credential handling."""

import pytest

from repro.server import AuthError, ClientError, ServerConfig
from repro.server.client import redact_headers
from repro.store import DiagnosisStore

from tests.server.test_server import FAULTY_SPEC, HEALTHY_SPEC, RunningServer


def _provision(tmp_path, **kwargs):
    """Provision one tenant in a fresh store; returns (path, api_key)."""
    path = str(tmp_path / "store.db")
    with DiagnosisStore(path) as store:
        key = store.provision_tenant("acme", **kwargs)
    return path, key


def _server_config(store_path):
    return ServerConfig(
        port=0, workers=2, queue_size=8, timeout=10.0, drain_grace=10.0,
        store=store_path,
    )


class TestAuth:
    def test_anonymous_requests_still_work(self, tmp_path):
        path, _key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client() as client:
                result = client.diagnose(HEALTHY_SPEC)
        assert result["status"] == "ok"

    def test_unknown_key_is_401(self, tmp_path):
        path, _key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key="rk_wrong", retries=0) as client:
                with pytest.raises(AuthError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        assert excinfo.value.status == 401

    def test_valid_key_diagnoses(self, tmp_path):
        path, key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key) as client:
                result = client.diagnose(FAULTY_SPEC)
        assert result["status"] == "ok"
        assert result["diagnosis"]["status"] == "faulty"

    def test_x_api_key_header_accepted(self, tmp_path):
        path, key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, api_key_header="x-api-key") as client:
                result = client.diagnose(HEALTHY_SPEC)
        assert result["status"] == "ok"

    def test_key_never_appears_in_redacted_headers(self):
        headers = {
            "Authorization": "Bearer rk_secret",
            "X-Api-Key": "rk_secret",
            "Content-Type": "application/json",
        }
        redacted = redact_headers(headers)
        assert "rk_secret" not in str(redacted)
        assert redacted["Authorization"].startswith("Bearer")
        assert redacted["Content-Type"] == "application/json"

    def test_bad_api_key_header_name_rejected(self):
        from repro.server import DiagnosisClient

        with pytest.raises(ValueError):
            DiagnosisClient(api_key="rk_x", api_key_header="cookie")


class TestTenantCacheIsolation:
    def test_tenant_and_public_do_not_share_cache(self, tmp_path):
        path, key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key) as tenant_client:
                first = tenant_client.diagnose(FAULTY_SPEC)
                again = tenant_client.diagnose(FAULTY_SPEC)
            with rs.client() as public_client:
                public = public_client.diagnose(FAULTY_SPEC)
        assert not first["cache_hit"]
        assert again["cache_hit"]
        assert not public["cache_hit"], "public request saw a tenant's cache row"


class TestQuota:
    def test_429_with_retry_after(self, tmp_path):
        path, key = _provision(tmp_path, quota_limit=2, quota_interval=60.0)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                client.diagnose(HEALTHY_SPEC)
                client.diagnose(HEALTHY_SPEC)
                with pytest.raises(ClientError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        assert float(excinfo.value.retry_after) >= 1

    def test_retry_after_is_float_seconds_from_refill_rate(self, tmp_path):
        """Token bucket, not fixed window: an empty 2-per-60s bucket
        refills one token in exactly 30s, and the header says so."""
        path, key = _provision(tmp_path, quota_limit=2, quota_interval=60.0)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                client.diagnose(HEALTHY_SPEC)
                client.diagnose(HEALTHY_SPEC)
                with pytest.raises(ClientError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        seconds = excinfo.value.retry_after_seconds
        assert seconds is not None
        # A hair under 30 is possible (tokens accrued since the drain).
        assert 25.0 <= seconds <= 30.0

    def test_retry_after_seconds_parses_or_is_none(self):
        err = ClientError(429, {"error": "quota"})
        assert err.retry_after_seconds is None
        err.retry_after = "29.500"
        assert err.retry_after_seconds == pytest.approx(29.5)
        err.retry_after = "soon"
        assert err.retry_after_seconds is None

    def test_quota_is_shared_across_server_restarts(self, tmp_path):
        """The bucket lives in the store file, not the process: a second
        server sees the budget the first one already spent."""
        path, key = _provision(tmp_path, quota_limit=2, quota_interval=3600.0)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                client.diagnose(HEALTHY_SPEC)
                client.diagnose(HEALTHY_SPEC)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                with pytest.raises(ClientError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        assert excinfo.value.status == 429

    def test_quota_does_not_limit_public_traffic(self, tmp_path):
        path, _key = _provision(tmp_path, quota_limit=1, quota_interval=60.0)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client() as client:
                for _ in range(3):
                    assert client.diagnose(HEALTHY_SPEC)["status"] == "ok"


class TestRotationOverHttp:
    def test_rotated_away_key_is_401_and_new_key_works(self, tmp_path):
        path, old = _provision(tmp_path)
        with DiagnosisStore(path) as store:
            new = store.rotate_key("acme")
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=new) as client:
                assert client.diagnose(HEALTHY_SPEC)["status"] == "ok"
            with rs.client(api_key=old, retries=0) as client:
                with pytest.raises(AuthError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        assert excinfo.value.status == 401

    def test_revoked_key_is_401(self, tmp_path):
        path, key = _provision(tmp_path)
        with DiagnosisStore(path) as store:
            store.revoke_keys("acme")
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                with pytest.raises(AuthError) as excinfo:
                    client.diagnose(HEALTHY_SPEC)
        assert excinfo.value.status == 401


class TestTenantReport:
    def test_report_reflects_history(self, tmp_path):
        path, key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key) as client:
                client.diagnose(FAULTY_SPEC)
                client.diagnose(FAULTY_SPEC)  # cache hit, still history
                report = client.tenant_report("acme")
        assert report["tenant"] == "acme"
        assert report["history"]["total"] == 2
        assert report["history"]["faulty"] == 2
        assert report["history"]["cache_hit_rate"] == pytest.approx(0.5)
        assert report["top_culprits"]

    def test_report_needs_credentials(self, tmp_path):
        path, _key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(retries=0) as client:
                with pytest.raises(AuthError) as excinfo:
                    client.tenant_report("acme")
        assert excinfo.value.status == 401

    def test_report_is_tenant_scoped(self, tmp_path):
        path = str(tmp_path / "store.db")
        with DiagnosisStore(path) as store:
            key = store.provision_tenant("acme")
            store.provision_tenant("globex")
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key, retries=0) as client:
                with pytest.raises(AuthError) as excinfo:
                    client.tenant_report("globex")
        assert excinfo.value.status == 403

    def test_report_404_without_store(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                with pytest.raises(ClientError) as excinfo:
                    client.tenant_report("acme")
        assert excinfo.value.status == 404


class TestMetricsWithStore:
    def test_metrics_include_store_and_quota(self, tmp_path):
        path, key = _provision(tmp_path)
        with RunningServer(config=_server_config(path)) as rs:
            with rs.client(api_key=key) as client:
                client.diagnose(HEALTHY_SPEC)
                client.diagnose(HEALTHY_SPEC)
                metrics = client.metrics()
        assert metrics["store"]["history_rows"] == 2
        assert metrics["store"]["cache_rows"] == 1
        assert "quota" in metrics
        cache = metrics["cache"]
        assert cache["hits_mem"] == 1

    def test_metrics_without_store_unchanged(self):
        with RunningServer() as rs:
            with rs.client() as client:
                client.diagnose(HEALTHY_SPEC)
                metrics = client.metrics()
        assert metrics["store"] is None
        assert metrics["quota"] is None
