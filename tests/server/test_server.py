"""Lifecycle tests for the diagnosis server + retrying client.

The server runs on a background thread with its own event loop (the
same shape as production, minus the process boundary); tests drive it
through :class:`DiagnosisClient` over real sockets on an ephemeral
port.
"""

import http.client
import json
import threading
import time

import asyncio

import pytest

from repro.server import (
    ClientError,
    DiagnosisClient,
    DiagnosisServer,
    ServerConfig,
    ServerUnavailable,
)
from repro.service import FleetEngine

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)

FAULTY_SPEC = {"unit": "u1", "netlist_text": NETLIST, "probes": {"mid": 7.5}}
HEALTHY_SPEC = {"unit": "u2", "netlist_text": NETLIST, "probes": {"mid": 6.0}}


class RunningServer:
    """Run a :class:`DiagnosisServer` on a background thread for one test."""

    def __init__(self, config=None, engine=None):
        self.config = config or ServerConfig(
            port=0, workers=2, queue_size=8, timeout=10.0, drain_grace=10.0
        )
        self.server = DiagnosisServer(self.config, engine=engine)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.serve())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 10
        while self.server.port is None and time.time() < deadline:
            time.sleep(0.01)
        assert self.server.port, "server did not bind in time"
        return self

    def shutdown(self, timeout=15.0):
        if self.thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "server did not drain in time"

    def __exit__(self, *exc_info):
        self.shutdown()

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 10.0)
        kwargs.setdefault("backoff", 0.05)
        kwargs.setdefault("max_delay", 0.2)
        return DiagnosisClient(port=self.server.port, **kwargs)


def gated_engine(workers=1):
    """An engine whose run_job blocks until the test releases it."""
    engine = FleetEngine(workers=workers, executor="thread")
    release = threading.Event()
    real_run_job = engine.run_job

    def slow_run_job(job, ctx=None):
        assert release.wait(timeout=20), "test never released the gate"
        return real_run_job(job, ctx)

    engine.run_job = slow_run_job
    return engine, release


class TestProbesAndMetrics:
    def test_health_ready_metrics(self):
        with RunningServer() as rs:
            with rs.client() as client:
                assert client.health()["status"] == "ok"
                assert client.ready()["status"] == "ready"
                metrics = client.metrics()
                assert metrics["queue"]["workers"] == 2
                assert metrics["cache"]["capacity"] == rs.config.cache_size
                assert "telemetry" in metrics
                json.dumps(metrics)  # JSON-safe end to end

    def test_unknown_route_404_and_wrong_method_405(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                with pytest.raises(ClientError) as err:
                    client._request("GET", "/nope")
                assert err.value.status == 404
                with pytest.raises(ClientError) as err:
                    client._request("POST", "/healthz", {"x": 1})
                assert err.value.status == 405

    def test_request_id_header_present(self):
        with RunningServer() as rs:
            conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=10)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Request-Id")
            conn.close()


class TestDiagnoseRoundTrip:
    def test_matches_in_process_result(self):
        from repro.service.jobs import job_from_spec

        in_process = FleetEngine(workers=1, executor="serial").run_job(
            job_from_spec(FAULTY_SPEC)
        )
        with RunningServer() as rs:
            with rs.client() as client:
                served = client.diagnose(FAULTY_SPEC)
        assert served["status"] == "ok"
        assert served["content_hash"] == in_process.content_hash
        assert served["diagnosis"] == in_process.diagnosis

    def test_repeat_is_a_cache_hit(self):
        with RunningServer() as rs:
            with rs.client() as client:
                first = client.diagnose(FAULTY_SPEC)
                second = client.diagnose(FAULTY_SPEC)
        assert not first["cache_hit"]
        assert second["cache_hit"]
        assert second["diagnosis"] == first["diagnosis"]

    def test_batch_round_trip(self):
        with RunningServer() as rs:
            with rs.client() as client:
                report = client.batch([FAULTY_SPEC, HEALTHY_SPEC, FAULTY_SPEC])
        units = [r["unit"] for r in report["results"]]
        assert units == ["u1", "u2", "u1"]
        assert all(r["status"] == "ok" for r in report["results"])
        assert report["cache"]["capacity"] > 0

    def test_malformed_requests_get_400_json_errors(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                for bad in (
                    {"unit": "u", "probes": {"mid": 1.0}},  # no netlist
                    {"unit": "u", "netlist_text": NETLIST},  # no measurements
                    {"unit": "u", "netlist": "/etc/passwd", "probes": {"mid": 1}},
                    ["not", "an", "object"],
                ):
                    with pytest.raises(ClientError) as err:
                        client.diagnose(bad)
                    assert err.value.status == 400
                    assert err.value.payload["error"]["message"]
                with pytest.raises(ClientError) as err:
                    client.batch([])
                assert err.value.status == 400

    def test_non_json_body_gets_400(self):
        with RunningServer() as rs:
            conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=10)
            conn.request(
                "POST", "/v1/diagnose", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in payload["error"]["message"]
            conn.close()


class TestOverload:
    def overload_config(self):
        return ServerConfig(
            port=0, workers=1, queue_size=1, timeout=30.0, drain_grace=30.0
        )

    def test_503_with_retry_after_when_queue_full(self):
        engine, release = gated_engine()
        with RunningServer(self.overload_config(), engine=engine) as rs:
            background = []
            try:
                for spec in (FAULTY_SPEC, HEALTHY_SPEC):  # fill slot + queue
                    client = rs.client(retries=0)
                    thread = threading.Thread(target=client.diagnose, args=(spec,))
                    thread.start()
                    background.append(thread)
                deadline = time.time() + 10
                while time.time() < deadline:
                    depth = rs.server.admission.depth()
                    if depth["active"] == 1 and depth["waiting"] == 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("never saturated the admission queue")
                conn = http.client.HTTPConnection(
                    "127.0.0.1", rs.server.port, timeout=10
                )
                conn.request(
                    "POST", "/v1/diagnose", body=json.dumps(FAULTY_SPEC),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 503
                assert float(response.getheader("Retry-After")) >= 1
                assert payload["error"]["status"] == 503
                conn.close()
            finally:
                release.set()
                for thread in background:
                    thread.join(timeout=20)
            assert rs.server.admission.rejected == 1

    def test_client_retries_through_overload(self):
        engine, release = gated_engine()
        config = ServerConfig(
            port=0, workers=1, queue_size=0, timeout=30.0, drain_grace=30.0
        )
        with RunningServer(config, engine=engine) as rs:
            blocker_client = rs.client(retries=0)
            blocker = threading.Thread(
                target=blocker_client.diagnose, args=(FAULTY_SPEC,)
            )
            blocker.start()
            deadline = time.time() + 10
            while rs.server.admission.active != 1 and time.time() < deadline:
                time.sleep(0.01)
            assert rs.server.admission.active == 1

            retrier = rs.client(retries=8, backoff=0.05, max_delay=0.1)
            release_timer = threading.Timer(0.3, release.set)
            release_timer.start()
            try:
                result = retrier.diagnose(HEALTHY_SPEC)
            finally:
                release_timer.cancel()
                release.set()
                blocker.join(timeout=20)
            assert result["status"] == "ok"
            assert retrier.attempts_made >= 2  # at least one 503 before success

    def test_retries_exhausted_raise_server_unavailable(self):
        engine, release = gated_engine()
        config = ServerConfig(
            port=0, workers=1, queue_size=0, timeout=30.0, drain_grace=30.0
        )
        with RunningServer(config, engine=engine) as rs:
            blocker_client = rs.client(retries=0)
            blocker = threading.Thread(
                target=blocker_client.diagnose, args=(FAULTY_SPEC,)
            )
            blocker.start()
            deadline = time.time() + 10
            while rs.server.admission.active != 1 and time.time() < deadline:
                time.sleep(0.01)
            try:
                with pytest.raises(ServerUnavailable):
                    rs.client(retries=2, backoff=0.01, max_delay=0.02).diagnose(
                        HEALTHY_SPEC
                    )
            finally:
                release.set()
                blocker.join(timeout=20)


class TestTimeouts:
    def test_slow_request_gets_504(self):
        engine = FleetEngine(workers=1, executor="thread")
        real_run_job = engine.run_job

        def slow(job, ctx=None):
            # Stuck *outside* the cooperative loop: never checks ctx.
            time.sleep(0.5)
            return real_run_job(job, ctx)

        engine.run_job = slow
        config = ServerConfig(port=0, workers=1, queue_size=4, timeout=0.1)
        with RunningServer(config, engine=engine) as rs:
            with rs.client(retries=0) as client:
                with pytest.raises(ClientError) as err:
                    client.diagnose(FAULTY_SPEC)
                assert err.value.status == 504


def _ladder_spec(rungs=40, probes=12):
    """A job spec whose diagnosis takes far longer than a tiny timeout."""
    from repro.circuit.faults import Fault, FaultKind, apply_fault
    from repro.circuit.generators import resistor_ladder
    from repro.circuit.simulate import DCSolver
    from repro.circuit.spice import write_netlist

    golden = resistor_ladder(rungs)
    faulty = apply_fault(golden, Fault(FaultKind.OPEN, "Rp3"))
    op = DCSolver(faulty).solve()
    nets = [n for n in sorted(op.voltages) if n != "0"][:probes]
    return {
        "unit": "slow-ladder",
        "netlist_text": write_netlist(golden),
        "probes": {net: op.voltages[net] for net in nets},
    }


class TestDeadlinesAndCancellation:
    def test_504_carries_partial_interrupted_result(self):
        spec = _ladder_spec()
        config = ServerConfig(port=0, workers=1, queue_size=4, timeout=0.05)
        with RunningServer(config) as rs:
            with rs.client(retries=0) as client:
                started = time.perf_counter()
                with pytest.raises(ClientError) as err:
                    client.diagnose(spec)
                elapsed = time.perf_counter() - started
            interrupted_jobs = rs.server.engine.telemetry.counter("jobs_interrupted")
        assert err.value.status == 504
        payload = err.value.payload
        # The in-band deadline won: a partial, well-formed result — not
        # the bare error body the event-loop backstop produces.
        assert payload["status"] == "interrupted"
        assert "interrupted" in payload["error"]
        assert payload["diagnosis"]["stats"]["interrupted"] is True
        assert payload["diagnosis"]["stats"]["quiescent"] is False
        assert payload["request_id"].startswith("cli-")
        assert interrupted_jobs == 1
        # Wound down at the deadline, not after the full diagnosis.
        assert elapsed < 5.0

    def test_504_cancels_in_flight_worker(self):
        engine = FleetEngine(workers=1, executor="thread")
        observed = threading.Event()
        real_run_job = engine.run_job

        def stuck_until_cancelled(job, ctx=None):
            # Ignores the deadline — stuck outside the cooperative loop —
            # so only the event-loop backstop's cancel() releases it.
            assert ctx is not None
            while not ctx.cancelled:
                time.sleep(0.005)
            observed.set()
            return real_run_job(job, ctx)

        engine.run_job = stuck_until_cancelled
        config = ServerConfig(port=0, workers=1, queue_size=4, timeout=0.1)
        with RunningServer(config, engine=engine) as rs:
            with rs.client(retries=0) as client:
                with pytest.raises(ClientError) as err:
                    client.diagnose(FAULTY_SPEC)
            assert err.value.status == 504
            # The worker did not keep burning CPU in the background: the
            # timeout cancelled its context and it wound down.
            assert observed.wait(timeout=5), "worker never observed the cancel"

    def test_trace_query_returns_span_tree_joined_to_request_id(self):
        with RunningServer() as rs:
            with rs.client() as client:
                result = client.diagnose(HEALTHY_SPEC, trace=True)
                plain = client.diagnose(FAULTY_SPEC)
        assert "trace" not in plain
        trace = result["trace"]
        assert trace["trace_id"] == result["request_id"]
        names = [span["name"] for span in trace["spans"]]
        assert "diagnose" in names
        diagnose = trace["spans"][names.index("diagnose")]
        assert any(c["name"] == "propagate" for c in diagnose["children"])


class _FakeResponse:
    def __init__(self, status, payload):
        self.status = status
        self._raw = json.dumps(payload).encode()

    def read(self):
        return self._raw

    def getheader(self, name, default=None):
        return default


class _FakeConn:
    """Scripted http.client stand-in: records headers, replays statuses."""

    def __init__(self, statuses, seen):
        self._statuses = list(statuses)
        self._seen = seen
        self._status = None

    def request(self, method, path, body=None, headers=None):
        self._seen.append(dict(headers or {}))
        self._status = self._statuses.pop(0)

    def getresponse(self):
        if self._status == 200:
            return _FakeResponse(200, {"status": "ok"})
        return _FakeResponse(self._status, {"error": {"message": "overloaded"}})

    def close(self):
        pass


class TestRequestIds:
    def _raw_diagnose(self, rs, headers):
        conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=10)
        base = {"Content-Type": "application/json"}
        base.update(headers)
        conn.request("POST", "/v1/diagnose", body=json.dumps(HEALTHY_SPEC), headers=base)
        response = conn.getresponse()
        payload = json.loads(response.read())
        header = response.getheader("X-Request-Id")
        conn.close()
        return response.status, payload, header

    def test_server_honours_wellformed_client_request_id(self):
        with RunningServer() as rs:
            status, payload, header = self._raw_diagnose(
                rs, {"X-Request-Id": "trace-join-42"}
            )
        assert status == 200
        assert header == "trace-join-42"
        assert payload["request_id"] == "trace-join-42"

    def test_malformed_request_id_falls_back_to_minted(self):
        with RunningServer() as rs:
            status, payload, header = self._raw_diagnose(
                rs, {"X-Request-Id": "has spaces and\ttabs"}
            )
        assert status == 200
        assert header != "has spaces and\ttabs"
        # Server-minted shape: <8-hex-prefix>-<6-digit-counter>.
        prefix, _, counter = header.partition("-")
        assert len(prefix) == 8 and counter.isdigit()
        assert payload["request_id"] == header

    def test_client_reuses_one_id_across_retry_attempts(self):
        seen = []
        client = DiagnosisClient(port=1, retries=4, backoff=0.001, max_delay=0.002)
        client._conns[("127.0.0.1", 1)] = _FakeConn([503, 503, 200], seen)
        assert client._request("GET", "/x") == {"status": "ok"}
        ids = [h["X-Request-Id"] for h in seen]
        assert len(ids) == 3  # two 503s retried, then success
        assert len(set(ids)) == 1, "retry attempts must share one request id"
        assert ids[0].startswith("cli-")


class TestGracefulDrain:
    def test_inflight_requests_finish_and_server_exits(self):
        engine, release = gated_engine()
        with RunningServer(
            ServerConfig(port=0, workers=1, queue_size=4, timeout=30.0), engine=engine
        ) as rs:
            outcome = {}
            client = rs.client(retries=0)

            def inflight():
                outcome["result"] = client.diagnose(FAULTY_SPEC)

            thread = threading.Thread(target=inflight)
            thread.start()
            deadline = time.time() + 10
            while rs.server.admission.active != 1 and time.time() < deadline:
                time.sleep(0.01)
            assert rs.server.admission.active == 1

            rs.loop.call_soon_threadsafe(rs.server.request_shutdown)
            time.sleep(0.05)  # the drain has begun; work is still gated
            release.set()
            thread.join(timeout=20)
            rs.thread.join(timeout=20)

            assert not rs.thread.is_alive()
            assert outcome["result"]["status"] == "ok"
            # new connections are refused after the drain
            with pytest.raises(ServerUnavailable):
                rs.client(retries=1, backoff=0.01).health()

    def test_readyz_flips_to_503_while_draining(self):
        engine, release = gated_engine()
        with RunningServer(
            ServerConfig(port=0, workers=1, queue_size=4, timeout=30.0), engine=engine
        ) as rs:
            client = rs.client(retries=0)
            worker = threading.Thread(
                target=lambda: client.diagnose(FAULTY_SPEC)
            )
            worker.start()
            deadline = time.time() + 10
            while rs.server.admission.active != 1 and time.time() < deadline:
                time.sleep(0.01)

            probe = rs.client(retries=0)
            assert probe.ready()["status"] == "ready"
            rs.loop.call_soon_threadsafe(rs.server.request_shutdown)
            deadline = time.time() + 10
            status = None
            while time.time() < deadline:
                try:
                    probe.ready()
                except ServerUnavailable:
                    break  # connection already torn down — also a valid drain state
                except ClientError as err:
                    status = err.status
                    break
                time.sleep(0.01)
            assert status in (503, None)
            release.set()
            worker.join(timeout=20)
