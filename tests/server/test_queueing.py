"""Tests for admission control: slots, bounded waiting, load shedding."""

import asyncio

import pytest

from repro.server.queueing import AdmissionQueue, QueueFullError


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0, 4)

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(1, -1)


class TestSlots:
    def test_serial_admission(self):
        async def go():
            q = AdmissionQueue(2, 4)
            async with q.slot():
                assert q.active == 1
            assert q.active == 0
            assert q.admitted == 1
            assert q.depth()["peak_active"] == 1

        run(go())

    def test_rejects_when_wait_queue_full(self):
        async def go():
            q = AdmissionQueue(1, 1)
            entered = asyncio.Event()
            release = asyncio.Event()

            async def hold():
                async with q.slot():
                    entered.set()
                    await release.wait()

            async def wait_for_slot():
                async with q.slot():
                    pass

            holder = asyncio.create_task(hold())
            await entered.wait()
            waiter = asyncio.create_task(wait_for_slot())
            await asyncio.sleep(0)  # waiter is now queued
            assert q.waiting == 1
            with pytest.raises(QueueFullError) as err:
                async with q.slot(mean_job_seconds=0.5):
                    pass
            assert err.value.retry_after >= 1
            release.set()
            await holder
            await waiter
            assert q.depth()["rejected"] == 1
            assert q.depth()["admitted"] == 2
            assert q.waiting == 0 and q.active == 0

        run(go())

    def test_slot_released_on_exception(self):
        async def go():
            q = AdmissionQueue(1, 0)
            with pytest.raises(RuntimeError):
                async with q.slot():
                    raise RuntimeError("boom")
            async with q.slot():  # slot must be free again
                assert q.active == 1

        run(go())

    def test_zero_queue_sheds_immediately_when_busy(self):
        async def go():
            q = AdmissionQueue(1, 0)
            entered = asyncio.Event()
            release = asyncio.Event()

            async def hold():
                async with q.slot():
                    entered.set()
                    await release.wait()

            holder = asyncio.create_task(hold())
            await entered.wait()
            with pytest.raises(QueueFullError):
                async with q.slot():
                    pass
            release.set()
            await holder

        run(go())


class TestConcurrentAdmission:
    def test_storm_respects_every_bound_and_settles_clean(self):
        """A burst far beyond capacity: concurrency stays capped, the
        overflow is shed exactly, and the gauges return to zero."""

        async def go():
            workers, queue_size, burst = 3, 4, 40
            q = AdmissionQueue(workers, queue_size)
            running = 0
            peak = 0
            done = 0

            async def request():
                nonlocal running, peak, done
                try:
                    async with q.slot(mean_job_seconds=0.2):
                        running += 1
                        peak = max(peak, running)
                        assert running <= workers  # the hard cap, observed
                        assert q.waiting <= queue_size
                        await asyncio.sleep(0.01)
                        running -= 1
                        done += 1
                        return "ok"
                except QueueFullError as err:
                    assert err.retry_after >= 1
                    return "shed"

            outcomes = await asyncio.gather(*(request() for _ in range(burst)))
            assert outcomes.count("ok") == q.admitted == done
            assert outcomes.count("shed") == q.rejected == burst - q.admitted
            # Everything beyond workers + queue_size outstanding at once
            # was shed; with an instant burst that is the whole overflow.
            assert q.admitted == workers + queue_size
            assert peak == workers
            depth = q.depth()
            assert depth["active"] == 0 and depth["waiting"] == 0
            assert depth["peak_active"] == workers
            assert depth["peak_waiting"] <= queue_size

        run(go())

    def test_interleaved_waves_reuse_freed_slots(self):
        """Slots freed by one wave must admit the next — shedding is a
        point-in-time decision, not a death sentence."""

        async def go():
            q = AdmissionQueue(2, 2)

            async def request():
                try:
                    async with q.slot():
                        await asyncio.sleep(0.005)
                        return "ok"
                except QueueFullError:
                    return "shed"

            first = await asyncio.gather(*(request() for _ in range(8)))
            assert first.count("ok") == 4
            second = await asyncio.gather(*(request() for _ in range(8)))
            assert second.count("ok") == 4  # prior rejections left no residue
            assert q.admitted == 8
            assert q.rejected == 8

        run(go())


class TestRetryAfter:
    def test_bounded_between_one_and_thirty(self):
        q = AdmissionQueue(2, 4)
        assert q.retry_after(0.0) >= 1
        q.active = 2
        q.waiting = 4
        assert q.retry_after(1000.0) <= 30

    def test_scales_with_backlog(self):
        q = AdmissionQueue(1, 8)
        q.active = 1
        q.waiting = 0
        shallow = q.retry_after(2.0)
        q.waiting = 8
        deep = q.retry_after(2.0)
        assert deep > shallow
