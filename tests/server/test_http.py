"""Tests for the minimal HTTP framing layer."""

import asyncio
import json

import pytest

from repro.server.http import (
    HttpError,
    error_payload,
    parse_response_bytes,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        req = parse(b"GET /metrics?verbose=1&verbose=2 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/metrics"
        assert req.query == {"verbose": "2"}
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_body(self):
        body = b'{"unit": "u1"}'
        raw = (
            b"POST /v1/diagnose HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = parse(raw)
        assert req.method == "POST"
        assert req.json() == {"unit": "u1"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nHos")
        assert err.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_malformed_header_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_refused(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 501

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_body_shorter_than_content_length(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert err.value.status == 400

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpError) as err:
            parse(raw, max_body=10)
        assert err.value.status == 413

    def test_oversized_head_rejected(self):
        raw = b"GET / HTTP/1.1\r\n" + b"X-Pad: " + b"y" * 200 + b"\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw, max_header=64)
        assert err.value.status == 413

    def test_keep_alive_default_and_close(self):
        req = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert req.keep_alive
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive


class TestJsonBody:
    def test_empty_body_rejected(self):
        req = parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400

    def test_invalid_json_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
        with pytest.raises(HttpError) as err:
            parse(raw).json()
        assert err.value.status == 400


class TestRenderResponse:
    def test_round_trip(self):
        raw = render_response(200, {"status": "ok"})
        status, headers, body = parse_response_bytes(raw)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(body)
        assert json.loads(body) == {"status": "ok"}

    def test_connection_semantics(self):
        _, headers, _ = parse_response_bytes(render_response(200, {}, keep_alive=True))
        assert headers["connection"] == "keep-alive"
        _, headers, _ = parse_response_bytes(render_response(200, {}, keep_alive=False))
        assert headers["connection"] == "close"

    def test_extra_headers(self):
        raw = render_response(503, {}, extra_headers={"Retry-After": "3"})
        status, headers, _ = parse_response_bytes(raw)
        assert status == 503
        assert headers["retry-after"] == "3"

    def test_error_payload_shape(self):
        payload = error_payload(400, "bad spec", "req-1")
        assert payload["error"]["status"] == 400
        assert payload["error"]["message"] == "bad spec"
        assert payload["error"]["request_id"] == "req-1"
