"""Tests for the classic ATMS (labels minimal/sound/consistent/complete)."""

import pytest

from repro.atms import ATMS, Environment
from repro.atms.assumptions import Assumption


@pytest.fixture
def atms():
    return ATMS()


class TestNodeCreation:
    def test_assumption_label_is_singleton(self, atms):
        a = atms.create_assumption("A")
        assert atms.label(a) == [Environment.of(a.assumption)]

    def test_plain_node_starts_out(self, atms):
        x = atms.create_node("x")
        assert not x.is_in

    def test_create_node_idempotent(self, atms):
        assert atms.create_node("x") is atms.create_node("x")

    def test_create_assumption_idempotent(self, atms):
        assert atms.create_assumption("A") is atms.create_assumption("A")

    def test_role_conflicts_rejected(self, atms):
        atms.create_node("x")
        with pytest.raises(ValueError):
            atms.create_assumption("x")
        with pytest.raises(ValueError):
            atms.create_node("x", contradiction=True)

    def test_premise_holds_in_empty_environment(self, atms):
        x = atms.create_node("x")
        atms.add_premise(x)
        assert atms.label(x) == [Environment.empty()]


class TestPropagation:
    def test_single_justification(self, atms):
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        atms.justify("j", [a], x)
        assert atms.label(x) == [Environment.of(a.assumption)]

    def test_conjunction_unions_environments(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j", [a, b], x)
        assert atms.label(x) == [Environment.of(a.assumption, b.assumption)]

    def test_disjunction_of_justifications(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j1", [a], x)
        atms.justify("j2", [b], x)
        assert set(atms.label(x)) == {
            Environment.of(a.assumption),
            Environment.of(b.assumption),
        }

    def test_chained_derivation(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        y = atms.create_node("y")
        atms.justify("j1", [a], x)
        atms.justify("j2", [x, b], y)
        assert atms.label(y) == [Environment.of(a.assumption, b.assumption)]

    def test_label_minimality(self, atms):
        """{A} subsumes {A,B}: only the minimal environment remains."""
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j1", [a, b], x)
        atms.justify("j2", [a], x)
        assert atms.label(x) == [Environment.of(a.assumption)]

    def test_incremental_update_reaches_consumers(self, atms):
        """Justifying an antecedent later still updates downstream labels."""
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        y = atms.create_node("y")
        atms.justify("j2", [x], y)  # consumer registered before x holds
        assert not y.is_in
        atms.justify("j1", [a], x)
        assert atms.label(y) == [Environment.of(a.assumption)]

    def test_premise_collapses_labels(self, atms):
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        atms.justify("j1", [a], x)
        atms.add_premise(x)
        assert atms.label(x) == [Environment.empty()]

    def test_cycle_terminates(self, atms):
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        y = atms.create_node("y")
        atms.justify("jxy", [x], y)
        atms.justify("jyx", [y], x)
        atms.justify("ja", [a], x)
        env = Environment.of(a.assumption)
        assert atms.label(x) == [env]
        assert atms.label(y) == [env]

    def test_diamond_derivation(self, atms):
        a = atms.create_assumption("A")
        left = atms.create_node("left")
        right = atms.create_node("right")
        top = atms.create_node("top")
        atms.justify("jl", [a], left)
        atms.justify("jr", [a], right)
        atms.justify("jt", [left, right], top)
        assert atms.label(top) == [Environment.of(a.assumption)]


class TestNogoods:
    def test_nogood_removes_environment_everywhere(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j", [a, b], x)
        atms.declare_nogood("n", [a, b])
        assert not x.is_in

    def test_nogood_removes_supersets(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        c = atms.create_assumption("C")
        x = atms.create_node("x")
        atms.justify("j", [a, b, c], x)
        atms.declare_nogood("n", [a, b])
        assert not x.is_in

    def test_consistent_alternatives_survive(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        c = atms.create_assumption("C")
        x = atms.create_node("x")
        atms.justify("j1", [a, b], x)
        atms.justify("j2", [c], x)
        atms.declare_nogood("n", [a, b])
        assert atms.label(x) == [Environment.of(c.assumption)]

    def test_future_derivations_respect_nogoods(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        atms.declare_nogood("n", [a, b])
        x = atms.create_node("x")
        atms.justify("j", [a, b], x)
        assert not x.is_in

    def test_nogood_database_minimality(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        atms.declare_nogood("n1", [a, b])
        atms.declare_nogood("n2", [a])
        nogoods = atms.minimal_nogoods()
        assert len(nogoods) == 1
        assert nogoods[0].environment == Environment.of(a.assumption)

    def test_consistency_query(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        atms.declare_nogood("n", [a, b])
        assert atms.consistent(Environment.of(a.assumption))
        assert not atms.consistent(Environment.of(a.assumption, b.assumption))

    def test_contradiction_label_stays_empty(self, atms):
        a = atms.create_assumption("A")
        atms.declare_nogood("n", [a])
        assert not atms.contradiction.is_in


class TestQueries:
    def test_holds_in_superset_environment(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j", [a], x)
        assert x.holds_in(Environment.of(a.assumption, b.assumption))
        assert not x.holds_in(Environment.of(b.assumption))

    def test_stats_counts(self, atms):
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        atms.justify("j", [a], x)
        stats = atms.stats()
        assert stats["assumptions"] == 1
        assert stats["justifications"] == 1
        assert stats["nodes"] == 3  # FALSE, A, x

    def test_label_sizes(self, atms):
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j1", [a], x)
        atms.justify("j2", [b], x)
        assert atms.label_sizes()["x"] == 2


class TestSoundnessCompleteness:
    """Brute-force check of label semantics on a small random-ish graph."""

    def test_labels_match_brute_force(self):
        atms = ATMS()
        names = ["A", "B", "C", "D"]
        assumption_nodes = {n: atms.create_assumption(n) for n in names}
        x = atms.create_node("x")
        y = atms.create_node("y")
        z = atms.create_node("z")
        atms.justify("j1", [assumption_nodes["A"], assumption_nodes["B"]], x)
        atms.justify("j2", [assumption_nodes["C"]], x)
        atms.justify("j3", [x, assumption_nodes["D"]], y)
        atms.justify("j4", [y], z)
        atms.declare_nogood("n1", [assumption_nodes["C"], assumption_nodes["D"]])

        def derivable(env_names):
            """Forward-chain the rules by hand under a crisp environment."""
            holds = set(env_names)
            changed = True
            while changed:
                changed = False
                if ("A" in holds and "B" in holds or "C" in holds) and "x" not in holds:
                    holds.add("x")
                    changed = True
                if "x" in holds and "D" in holds and "y" not in holds:
                    holds.add("y")
                    changed = True
                if "y" in holds and "z" not in holds:
                    holds.add("z")
                    changed = True
            return holds

        import itertools

        for node, datum in ((x, "x"), (y, "y"), (z, "z")):
            for r in range(len(names) + 1):
                for combo in itertools.combinations(names, r):
                    env = Environment(
                        frozenset(Assumption(n, n) for n in combo)
                    )
                    if not atms.consistent(env):
                        continue
                    expected = datum in derivable(combo)
                    assert node.holds_in(env) == expected, (datum, combo)
