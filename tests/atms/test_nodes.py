"""Unit tests for ATMS node/justification primitives."""

import pytest

from repro.atms import ATMS, Environment
from repro.atms.nodes import Justification, Node


class TestNodeQueries:
    def test_degree_in_returns_strongest(self):
        atms = ATMS()
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("weak", [a, b], x, degree=0.4)
        atms.justify("strong", [a], x, degree=0.9)
        env = Environment.of(a.assumption, b.assumption)
        assert x.degree_in(env) == pytest.approx(0.9)

    def test_degree_in_zero_when_out(self):
        atms = ATMS()
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        atms.justify("j", [a], x)
        assert x.degree_in(Environment.empty()) == 0.0

    def test_environments_listing(self):
        atms = ATMS()
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        x = atms.create_node("x")
        atms.justify("j1", [a], x)
        atms.justify("j2", [b], x)
        assert len(x.environments) == 2

    def test_assumption_flag(self):
        atms = ATMS()
        a = atms.create_assumption("A")
        x = atms.create_node("x")
        assert a.is_assumption and not x.is_assumption


class TestJustificationValidation:
    def test_degree_bounds(self):
        x = Node("x")
        y = Node("y")
        with pytest.raises(ValueError):
            Justification("j", [x], y, degree=0.0)
        with pytest.raises(ValueError):
            Justification("j", [x], y, degree=1.5)

    def test_empty_antecedents_is_a_premise_rule(self):
        atms = ATMS()
        x = atms.create_node("x")
        atms.justify("axiom", [], x)
        assert atms.label(x) == [Environment.empty()]


class TestEnvironmentOperations:
    def test_without(self):
        atms = ATMS()
        a = atms.create_assumption("A")
        b = atms.create_assumption("B")
        env = Environment.of(a.assumption, b.assumption)
        reduced = env.without(a.assumption)
        assert reduced == Environment.of(b.assumption)

    def test_union_shares_instances_when_trivial(self):
        env = Environment.of()
        other = Environment.of()
        assert env.union(other) == Environment.empty()

    def test_iteration_sorted(self):
        atms = ATMS()
        b = atms.create_assumption("B")
        a = atms.create_assumption("A")
        env = Environment.of(b.assumption, a.assumption)
        assert [x.name for x in env] == ["A", "B"]

    def test_bool_and_len(self):
        assert not Environment.empty()
        atms = ATMS()
        a = atms.create_assumption("A")
        env = Environment.of(a.assumption)
        assert env and len(env) == 1
