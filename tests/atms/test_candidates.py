"""Tests for hitting-set candidate generation and nogood bookkeeping."""

import pytest

from repro.atms import Environment, NogoodDatabase, minimal_diagnoses, minimal_hitting_sets
from repro.atms.assumptions import Assumption
from repro.atms.candidates import suspicion_scores
from repro.atms.nogood import WeightedNogood


def asm(*names):
    return frozenset(Assumption(n, n) for n in names)


def env(*names):
    return Environment(asm(*names))


class TestMinimalHittingSets:
    def test_single_set(self):
        hs = minimal_hitting_sets([asm("a", "b")])
        assert set(hs) == {asm("a"), asm("b")}

    def test_no_sets_yields_empty_diagnosis(self):
        assert minimal_hitting_sets([]) == [frozenset()]

    def test_empty_conflict_unhittable(self):
        assert minimal_hitting_sets([asm("a"), frozenset()]) == []

    def test_paper_diode_example(self):
        """Conflicts {r1,d1} and {r2,d1} -> candidates [d1] and [r1,r2]."""
        hs = minimal_hitting_sets([asm("r1", "d1"), asm("r2", "d1")])
        assert set(hs) == {asm("d1"), asm("r1", "r2")}

    def test_three_overlapping_conflicts(self):
        sets = [asm("a", "b"), asm("b", "c"), asm("a", "c")]
        hs = minimal_hitting_sets(sets)
        assert set(hs) == {asm("a", "b"), asm("b", "c"), asm("a", "c")}

    def test_results_are_an_antichain(self):
        sets = [asm("a", "b", "c"), asm("a"), asm("b", "d")]
        hs = minimal_hitting_sets(sets)
        for h1 in hs:
            for h2 in hs:
                assert not (h1 < h2)

    def test_every_result_hits_every_set(self):
        sets = [asm("a", "b"), asm("c", "d"), asm("b", "c")]
        for h in minimal_hitting_sets(sets):
            assert all(h & s for s in sets)

    def test_max_size_bound(self):
        sets = [asm("a"), asm("b"), asm("c")]
        assert minimal_hitting_sets(sets, max_size=2) == []
        assert minimal_hitting_sets(sets, max_size=3) == [asm("a", "b", "c")]

    def test_duplicate_sets_collapse(self):
        hs = minimal_hitting_sets([asm("a"), asm("a")])
        assert hs == [asm("a")]

    def test_brute_force_agreement(self):
        """Compare against exhaustive enumeration on a small universe."""
        import itertools

        sets = [asm("a", "b"), asm("b", "c"), asm("c", "d"), asm("a", "d")]
        universe = sorted({e for s in sets for e in s})
        all_hitters = [
            frozenset(combo)
            for r in range(len(universe) + 1)
            for combo in itertools.combinations(universe, r)
            if all(frozenset(combo) & s for s in sets)
        ]
        brute_minimal = {
            h for h in all_hitters if not any(h2 < h for h2 in all_hitters)
        }
        assert set(minimal_hitting_sets(sets)) == brute_minimal


class TestMinimalDiagnoses:
    def _nogoods(self):
        return [
            WeightedNogood(env("r1", "d1"), 0.5),
            WeightedNogood(env("r2", "d1"), 1.0),
        ]

    def test_diagnoses_structure(self):
        diagnoses = minimal_diagnoses(self._nogoods())
        blamed = {d.components for d in diagnoses}
        assert blamed == {("d1",), ("r1", "r2")}

    def test_degree_is_weakest_explained_conflict(self):
        diagnoses = minimal_diagnoses(self._nogoods())
        assert all(d.degree == pytest.approx(0.5) for d in diagnoses)

    def test_threshold_drops_weak_nogoods(self):
        diagnoses = minimal_diagnoses(self._nogoods(), threshold=0.8)
        blamed = {d.components for d in diagnoses}
        # Only the serious conflict {r2, d1} must be explained.
        assert blamed == {("d1",), ("r2",)}
        assert all(d.degree == pytest.approx(1.0) for d in diagnoses)

    def test_no_nogoods_no_diagnoses(self):
        assert minimal_diagnoses([]) == []

    def test_single_fault_bound(self):
        nogoods = [
            WeightedNogood(env("a", "b"), 1.0),
            WeightedNogood(env("c", "d"), 1.0),
        ]
        assert minimal_diagnoses(nogoods, max_size=1) == []

    def test_sorting_most_serious_first(self):
        nogoods = [
            WeightedNogood(env("a"), 0.4),
            WeightedNogood(env("b"), 0.9),
        ]
        diagnoses = minimal_diagnoses(nogoods, threshold=0.0)
        assert diagnoses[0].size == 2  # must hit both; single candidate
        nogoods_disjoint = [WeightedNogood(env("a"), 0.9)]
        top = minimal_diagnoses(nogoods_disjoint)[0]
        assert top.degree == pytest.approx(0.9)

    def test_suspicion_scores_max_over_nogoods(self):
        scores = suspicion_scores(self._nogoods())
        named = {a.name: s for a, s in scores.items()}
        assert named == {"d1": 1.0, "r2": 1.0, "r1": 0.5}

    def test_suspicion_threshold(self):
        scores = suspicion_scores(self._nogoods(), threshold=0.8)
        named = {a.name: s for a, s in scores.items()}
        assert named == {"d1": 1.0, "r2": 1.0}


class TestNogoodDatabase:
    def test_add_and_len(self):
        db = NogoodDatabase()
        assert db.add(env("a", "b"), 1.0)
        assert len(db) == 1

    def test_subset_subsumes_superset(self):
        db = NogoodDatabase()
        db.add(env("a", "b"), 1.0)
        assert not db.add(env("a", "b", "c"), 1.0)
        assert len(db) == 1

    def test_superset_removed_when_subset_arrives(self):
        db = NogoodDatabase()
        db.add(env("a", "b", "c"), 1.0)
        db.add(env("a", "b"), 1.0)
        assert len(db) == 1
        assert db.minimal()[0].environment == env("a", "b")

    def test_degree_aware_subsumption(self):
        """A weak subset does not subsume a serious superset."""
        db = NogoodDatabase()
        db.add(env("a"), 0.3)
        assert db.add(env("a", "b"), 0.9)
        assert len(db) == 2

    def test_conflict_degree_queries(self):
        db = NogoodDatabase()
        db.add(env("a", "b"), 0.6)
        assert db.conflict_degree(env("a", "b", "c")) == pytest.approx(0.6)
        assert db.conflict_degree(env("a")) == 0.0

    def test_hard_threshold(self):
        db = NogoodDatabase(hard_threshold=0.5)
        db.add(env("a"), 0.4)
        assert not db.is_inconsistent(env("a"))
        db.add(env("b"), 0.5)
        assert db.is_inconsistent(env("b", "c"))

    def test_invalid_degree_rejected(self):
        db = NogoodDatabase()
        with pytest.raises(ValueError):
            db.add(env("a"), 0.0)
        with pytest.raises(ValueError):
            db.add(env("a"), 1.5)

    def test_merge_and_clear(self):
        db = NogoodDatabase()
        db.merge([WeightedNogood(env("a"), 1.0), WeightedNogood(env("b"), 0.5)])
        assert len(db) == 2
        db.clear()
        assert len(db) == 0

    def test_iteration_yields_sorted(self):
        db = NogoodDatabase()
        db.add(env("a"), 0.5)
        db.add(env("b"), 1.0)
        degrees = [n.degree for n in db]
        assert degrees == [1.0, 0.5]
