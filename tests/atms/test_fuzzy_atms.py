"""Tests for the fuzzy ATMS extension (paper section 6)."""

import pytest

from repro.atms import Environment, FuzzyATMS
from repro.fuzzy.logic import t_norm_product


@pytest.fixture
def fatms():
    return FuzzyATMS()


class TestUncertainJustifications:
    def test_degree_travels_with_derivation(self, fatms):
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        fatms.justify("rule", [a], x, degree=0.7)
        env = Environment.of(a.assumption)
        assert x.degree_in(env) == pytest.approx(0.7)

    def test_min_t_norm_chains(self, fatms):
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        y = fatms.create_node("y")
        fatms.justify("r1", [a], x, degree=0.7)
        fatms.justify("r2", [x], y, degree=0.9)
        assert y.degree_in(Environment.of(a.assumption)) == pytest.approx(0.7)

    def test_product_t_norm_chains(self):
        fatms = FuzzyATMS(t_norm=t_norm_product)
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        y = fatms.create_node("y")
        fatms.justify("r1", [a], x, degree=0.7)
        fatms.justify("r2", [x], y, degree=0.9)
        assert y.degree_in(Environment.of(a.assumption)) == pytest.approx(0.63)

    def test_stronger_derivation_wins(self, fatms):
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        fatms.justify("weak", [a], x, degree=0.4)
        fatms.justify("strong", [a], x, degree=0.9)
        assert x.degree_in(Environment.of(a.assumption)) == pytest.approx(0.9)

    def test_zero_degree_rejected(self, fatms):
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        with pytest.raises(ValueError):
            fatms.justify("bad", [a], x, degree=0.0)

    def test_larger_env_at_higher_degree_not_subsumed(self, fatms):
        """Minimality is degree-aware: a superset may carry a higher degree."""
        a = fatms.create_assumption("A")
        b = fatms.create_assumption("B")
        x = fatms.create_node("x")
        fatms.justify("weak", [a], x, degree=0.4)
        fatms.justify("strong", [a, b], x, degree=1.0)
        env_a = Environment.of(a.assumption)
        env_ab = Environment.of(a.assumption, b.assumption)
        assert x.degree_in(env_a) == pytest.approx(0.4)
        assert x.degree_in(env_ab) == pytest.approx(1.0)
        assert len(x.label) == 2


class TestSoftNogoods:
    def test_partial_conflict_keeps_environments(self, fatms):
        """A Dc=0.5 conflict weights candidates but does not prune labels."""
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        fatms.justify("j", [a], x)
        fatms.declare_soft_nogood("partial", [a], 0.5)
        assert x.is_in  # still believed
        assert fatms.weighted_nogoods()[0].degree == pytest.approx(0.5)

    def test_total_conflict_prunes(self, fatms):
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        fatms.justify("j", [a], x)
        fatms.declare_soft_nogood("total", [a], 1.0)
        assert not x.is_in

    def test_zero_conflict_ignored(self, fatms):
        a = fatms.create_assumption("A")
        fatms.declare_soft_nogood("corroboration", [a], 0.0)
        assert len(fatms.weighted_nogoods()) == 0

    def test_paper_diode_nogood_ranking(self, fatms):
        """Figure 5: nogoods {r1,d1}@0.5 and {r2,d1}@1, ordered by degree."""
        r1 = fatms.create_assumption("ok(r1)", "r1")
        r2 = fatms.create_assumption("ok(r2)", "r2")
        d1 = fatms.create_assumption("ok(d1)", "d1")
        fatms.declare_soft_nogood("Ir1", [r1, d1], 0.5)
        fatms.declare_soft_nogood("Ir2", [r2, d1], 1.0)
        ranked = fatms.weighted_nogoods()
        assert ranked[0].degree == 1.0
        assert {a.datum for a in ranked[0].environment} == {"r2", "d1"}
        assert ranked[1].degree == 0.5
        assert {a.datum for a in ranked[1].environment} == {"r1", "d1"}

    def test_suspicion_scores(self, fatms):
        r1 = fatms.create_assumption("ok(r1)", "r1")
        r2 = fatms.create_assumption("ok(r2)", "r2")
        d1 = fatms.create_assumption("ok(d1)", "d1")
        fatms.declare_soft_nogood("Ir1", [r1, d1], 0.5)
        fatms.declare_soft_nogood("Ir2", [r2, d1], 1.0)
        scores = {a.datum: s for a, s in fatms.assumption_suspicions().items()}
        assert scores == {"d1": 1.0, "r2": 1.0, "r1": 0.5}

    def test_environment_degree_reflects_conflicts(self, fatms):
        a = fatms.create_assumption("A")
        b = fatms.create_assumption("B")
        fatms.declare_soft_nogood("p", [a], 0.3)
        assert fatms.environment_degree(Environment.of(a.assumption)) == pytest.approx(0.7)
        assert fatms.environment_degree(Environment.of(b.assumption)) == pytest.approx(1.0)

    def test_soft_threshold_configuration(self):
        """Lowering the hard threshold makes partial conflicts prune."""
        fatms = FuzzyATMS(hard_threshold=0.4)
        a = fatms.create_assumption("A")
        x = fatms.create_node("x")
        fatms.justify("j", [a], x)
        fatms.declare_soft_nogood("partial", [a], 0.5)
        assert not x.is_in

    def test_soft_nogood_strengthening(self, fatms):
        a = fatms.create_assumption("A")
        b = fatms.create_assumption("B")
        fatms.declare_soft_nogood("first", [a, b], 0.3)
        fatms.declare_soft_nogood("second", [a, b], 0.8)
        assert fatms.weighted_nogoods()[0].degree == pytest.approx(0.8)


class TestNonHornClauses:
    def test_disjunction_creates_choices(self, fatms):
        x = fatms.create_node("x")
        y = fatms.create_node("y")
        choices = fatms.add_disjunction("d", [x, y])
        assert len(choices) == 2
        assert x.is_in and y.is_in

    def test_disjunct_holds_under_its_choice(self, fatms):
        x = fatms.create_node("x")
        y = fatms.create_node("y")
        cx, cy = fatms.add_disjunction("d", [x, y])
        assert x.holds_in(Environment.of(cx.assumption))
        assert not x.holds_in(Environment.of(cy.assumption))

    def test_rejecting_all_disjuncts_is_contradictory(self, fatms):
        x = fatms.create_node("x")
        y = fatms.create_node("y")
        fatms.add_disjunction("d", [x, y])
        negs = [n for name, n in fatms.nodes.items() if name.startswith("not(")]
        env = Environment(frozenset(n.assumption for n in negs))
        assert not fatms.consistent(env)

    def test_empty_disjunction_rejected(self, fatms):
        with pytest.raises(ValueError):
            fatms.add_disjunction("d", [])

    def test_uncertain_disjunction_degree(self, fatms):
        x = fatms.create_node("x")
        (cx,) = fatms.add_disjunction("d", [x], degree=0.6)
        assert x.degree_in(Environment.of(cx.assumption)) == pytest.approx(0.6)
