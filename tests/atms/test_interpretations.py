"""Unit tests for maximal consistent environments."""


from repro.atms import Environment, NogoodDatabase
from repro.atms.assumptions import Assumption
from repro.atms.interpretations import interpretations


def asm(name):
    return Assumption(name, name)


def env(*names):
    return Environment(frozenset(asm(n) for n in names))


class TestInterpretations:
    def test_no_nogoods_single_full_interpretation(self):
        assumptions = [asm(n) for n in "abc"]
        maximal = interpretations(assumptions, NogoodDatabase())
        assert maximal == [env("a", "b", "c")]

    def test_single_pairwise_conflict_splits(self):
        db = NogoodDatabase()
        db.add(env("a", "b"))
        maximal = interpretations([asm(n) for n in "abc"], db)
        assert set(maximal) == {env("a", "c"), env("b", "c")}

    def test_disjoint_conflicts_multiply(self):
        db = NogoodDatabase()
        db.add(env("a", "b"))
        db.add(env("c", "d"))
        maximal = interpretations([asm(n) for n in "abcd"], db)
        assert len(maximal) == 4

    def test_soft_nogoods_do_not_prune(self):
        """Only hard nogoods constrain the interpretations."""
        db = NogoodDatabase()
        db.add(env("a", "b"), 0.5)
        maximal = interpretations([asm(n) for n in "ab"], db)
        assert maximal == [env("a", "b")]

    def test_results_are_maximal(self):
        db = NogoodDatabase()
        db.add(env("a", "b"))
        db.add(env("b", "c"))
        maximal = interpretations([asm(n) for n in "abc"], db)
        for m1 in maximal:
            for m2 in maximal:
                assert not m1.is_proper_subset(m2)

    def test_limit_bounds_results(self):
        db = NogoodDatabase()
        for i in range(5):
            db.add(env(f"x{2 * i}", f"x{2 * i + 1}"))
        assumptions = [asm(f"x{i}") for i in range(10)]
        bounded = interpretations(assumptions, db, limit=3)
        assert len(bounded) <= 3

    def test_empty_assumption_set(self):
        assert interpretations([], NogoodDatabase()) == [Environment.empty()]

    def test_singleton_nogood_excludes_assumption(self):
        db = NogoodDatabase()
        db.add(env("a"))
        maximal = interpretations([asm("a"), asm("b")], db)
        assert maximal == [env("b")]
