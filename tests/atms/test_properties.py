"""Property-based tests for ATMS invariants."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atms import ATMS, Environment, FuzzyATMS, NogoodDatabase, minimal_hitting_sets
from repro.atms.assumptions import Assumption, minimal_antichain
from repro.atms.interpretations import interpretations
from repro.kernel import FastFuzzyATMS

_names = st.sampled_from(["a", "b", "c", "d", "e"])
_sets = st.sets(_names, min_size=1, max_size=4).map(
    lambda s: frozenset(Assumption(n, n) for n in s)
)


class TestHittingSetProperties:
    @given(st.lists(_sets, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_every_hitter_hits_everything(self, conflict_sets):
        for h in minimal_hitting_sets(conflict_sets):
            assert all(h & s for s in conflict_sets)

    @given(st.lists(_sets, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_results_form_antichain(self, conflict_sets):
        hs = minimal_hitting_sets(conflict_sets)
        for h1, h2 in itertools.combinations(hs, 2):
            assert not (h1 <= h2 or h2 <= h1)

    @given(st.lists(_sets, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, conflict_sets):
        universe = sorted({a for s in conflict_sets for a in s})
        brute = [
            frozenset(combo)
            for r in range(len(universe) + 1)
            for combo in itertools.combinations(universe, r)
            if all(frozenset(combo) & s for s in conflict_sets)
        ]
        brute_minimal = {h for h in brute if not any(h2 < h for h2 in brute)}
        assert set(minimal_hitting_sets(conflict_sets)) == brute_minimal


class TestNogoodDatabaseProperties:
    @given(
        st.lists(
            st.tuples(_sets, st.floats(min_value=0.05, max_value=1.0)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_store_is_degree_antichain(self, entries):
        db = NogoodDatabase()
        for s, d in entries:
            db.add(Environment(s), d)
        stored = db.minimal()
        for n1, n2 in itertools.combinations(stored, 2):
            if n1.environment.is_proper_subset(n2.environment):
                assert n1.degree < n2.degree
            if n2.environment.is_proper_subset(n1.environment):
                assert n2.degree < n1.degree

    @given(
        st.lists(
            st.tuples(_sets, st.floats(min_value=0.05, max_value=1.0)),
            min_size=1,
            max_size=8,
        ),
        _sets,
    )
    @settings(max_examples=60, deadline=None)
    def test_conflict_degree_never_decreases_with_more_nogoods(self, entries, probe):
        db = NogoodDatabase()
        degrees = []
        for s, d in entries:
            db.add(Environment(s), d)
            degrees.append(db.conflict_degree(Environment(probe)))
        assert all(x <= y + 1e-12 for x, y in zip(degrees, degrees[1:]))


class TestAntichainHelper:
    @given(st.lists(_sets, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_minimal_antichain(self, sets):
        envs = [Environment(s) for s in sets]
        kept = minimal_antichain(envs)
        for e1, e2 in itertools.combinations(kept, 2):
            assert not (e1.is_subset(e2) or e2.is_subset(e1))
        # Every original environment is covered by some kept subset.
        for env in envs:
            assert any(k.is_subset(env) for k in kept)


class TestInterpretationProperties:
    @given(st.lists(_sets, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_interpretations_consistent_and_maximal(self, nogood_sets):
        db = NogoodDatabase()
        for s in nogood_sets:
            db.add(Environment(s), 1.0)
        assumptions = [Assumption(n, n) for n in ["a", "b", "c", "d", "e"]]
        maximal = interpretations(assumptions, db)
        for env in maximal:
            assert not db.is_inconsistent(env)
            # Maximal: adding any missing assumption breaks consistency
            # unless another interpretation contains the extension.
            for a in assumptions:
                if not env.contains(a):
                    extended = Environment(env.assumptions | {a})
                    covered = any(
                        extended.is_subset(other) for other in maximal
                    )
                    assert db.is_inconsistent(extended) or not covered or extended in maximal


class TestLabelInvariantsAfterNogoods:
    """Label soundness after nogood installation, on both kernels.

    Whatever sequence of justifications and (soft or hard) nogoods is
    installed, every node label must stay a degree-consistent minimal
    antichain of environments none of which is hard-inconsistent.
    """

    @pytest.mark.parametrize("atms_cls", [FuzzyATMS, FastFuzzyATMS])
    @given(
        rules=st.lists(
            st.tuples(st.sets(_names, min_size=1, max_size=3), _names),
            min_size=1,
            max_size=5,
        ),
        nogoods=st.lists(
            st.tuples(
                st.sets(_names, min_size=1, max_size=3),
                st.floats(min_value=0.1, max_value=1.0),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_stay_sound(self, atms_cls, rules, nogoods):
        atms = atms_cls()
        assumptions = {}

        def assume(name):
            if name not in assumptions:
                assumptions[name] = atms.create_assumption(f"ok({name})", name)
            return assumptions[name]

        for ants, cons in rules:
            consequent = atms.create_node(f"n_{cons}")
            atms.justify("r", [assume(a) for a in sorted(ants)], consequent)
        for i, (members, degree) in enumerate(nogoods):
            atms.declare_soft_nogood(
                f"m{i}", [assume(a) for a in sorted(members)], degree
            )

        for node in atms.nodes.values():
            label = node.label
            for env, degree in label.items():
                assert 0.0 < degree <= 1.0
                # No environment at or past the hard threshold survives.
                assert not atms.nogoods.is_inconsistent(env)
            for e1, e2 in itertools.combinations(label, 2):
                # Minimality: a kept proper subset must be strictly
                # weaker, else it would have subsumed the superset.
                if e1.is_proper_subset(e2):
                    assert label[e1] < label[e2]
                if e2.is_proper_subset(e1):
                    assert label[e2] < label[e1]

    @pytest.mark.parametrize("atms_cls", [FuzzyATMS, FastFuzzyATMS])
    @given(
        nogoods=st.lists(
            st.tuples(
                st.sets(_names, min_size=1, max_size=3),
                st.floats(min_value=0.1, max_value=1.0),
            ),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_nogood_degrees_monotone_under_weighting(self, atms_cls, nogoods):
        """Installing more nogoods never weakens an existing one."""
        atms = atms_cls()
        assumptions = {
            n: atms.create_assumption(f"ok({n})", n) for n in ["a", "b", "c", "d", "e"]
        }
        watched = Environment(frozenset(n.assumption for n in assumptions.values()))
        degrees = []
        for i, (members, degree) in enumerate(nogoods):
            atms.declare_soft_nogood(
                f"m{i}", [assumptions[a] for a in sorted(members)], degree
            )
            degrees.append(atms.nogoods.conflict_degree(watched))
        assert all(x <= y + 1e-12 for x, y in zip(degrees, degrees[1:]))


class TestATMSLabelProperties:
    @given(
        st.lists(
            st.tuples(st.sets(_names, min_size=1, max_size=3), _names),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_are_minimal_antichains(self, rules):
        atms = ATMS()
        for ants, cons in rules:
            ant_nodes = [atms.create_assumption(f"A_{n}") for n in sorted(ants)]
            consequent = atms.create_node(f"n_{cons}")
            atms.justify("r", ant_nodes, consequent)
        for node in atms.nodes.values():
            envs = list(node.label)
            for e1, e2 in itertools.combinations(envs, 2):
                assert not e1.is_proper_subset(e2) or node.label[e1] < node.label[e2]
                assert not e2.is_proper_subset(e1) or node.label[e2] < node.label[e1]
