"""The staged pipeline: stage spans, interruption contract, threading.

The byte-identity of the unbounded pipeline with the pre-staged engine
is pinned elsewhere (tests/golden); here we check the *new* behaviour:
span trees name every stage, deadlines and budgets interrupt without
breaking result shape, and the context threads through sessions,
planners and the fleet service.
"""

import pytest

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.generators import resistor_ladder
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.core.session import TroubleshootingSession
from repro.runtime import STAGES, DiagnosisPipeline, RunContext


def _amp_measurements():
    golden = three_stage_amplifier()
    faulty = apply_fault(golden, Fault(FaultKind.SHORT, "R2"))
    op = DCSolver(faulty).solve()
    return golden, probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)


def _ladder_measurements(rungs=16, probes=8):
    golden = resistor_ladder(rungs)
    faulty = apply_fault(golden, Fault(FaultKind.OPEN, "Rp3"))
    op = DCSolver(faulty).solve()
    nets = [n for n in sorted(op.voltages) if n != "0"][:probes]
    return golden, probe_all(op, nets, imprecision=0.02)


class TestStages:
    def test_every_stage_appears_in_the_trace(self):
        golden, measurements = _amp_measurements()
        ctx = RunContext(tracing=True)
        result = Flames(golden).diagnose(measurements, ctx=ctx)
        assert not result.interrupted
        assert result.trace is not None
        (root,) = result.trace["spans"]
        assert root["name"] == "diagnose"
        assert root["meta"]["circuit"] == golden.name
        assert [child["name"] for child in root["children"]] == list(STAGES)

    def test_propagate_span_carries_step_count(self):
        golden, measurements = _amp_measurements()
        ctx = RunContext(tracing=True)
        result = Flames(golden).diagnose(measurements, ctx=ctx)
        (root,) = result.trace["spans"]
        propagate = next(c for c in root["children"] if c["name"] == "propagate")
        assert propagate["meta"]["steps"] == result.propagation.steps
        assert propagate["meta"]["quiescent"] is True

    def test_no_context_means_no_trace(self):
        golden, measurements = _amp_measurements()
        result = Flames(golden).diagnose(measurements)
        assert result.trace is None
        assert result.interrupted is False

    def test_pipeline_direct_call_matches_engine(self):
        golden, measurements = _amp_measurements()
        engine = Flames(golden)
        via_engine = engine.diagnose(measurements)
        via_pipeline = DiagnosisPipeline(engine).run(measurements)
        assert via_engine.suspicions == via_pipeline.suspicions
        assert via_engine.propagation.steps == via_pipeline.propagation.steps

    def test_unknown_probe_still_raises_key_error(self):
        golden, measurements = _amp_measurements()
        from repro.circuit.measurements import Measurement
        from repro.fuzzy import FuzzyInterval

        bad = Measurement("V(nope)", FuzzyInterval.number(1.0, 0.02))
        with pytest.raises(KeyError):
            Flames(golden).diagnose([bad], ctx=RunContext())


class TestInterruption:
    def test_partial_result_is_well_formed(self):
        golden, measurements = _ladder_measurements()
        full = Flames(golden).diagnose(measurements)
        budget = full.propagation.steps // 2
        ctx = RunContext(step_budget=budget, tracing=True)
        result = Flames(golden).diagnose(measurements, ctx=ctx)
        assert result.interrupted
        assert result.trace["interrupted"] is True
        assert result.trace["stop_reason"] == "step-budget"
        # Every downstream stage still ran: the result ranks and serialises.
        assert isinstance(result.ranked_components(), list)
        assert result.propagation is not None
        from repro.service.jobs import diagnosis_to_dict

        payload = diagnosis_to_dict(result)
        assert payload["stats"]["interrupted"] is True
        assert payload["stats"]["quiescent"] is False

    def test_uninterrupted_payload_has_no_interrupted_key(self):
        golden, measurements = _amp_measurements()
        from repro.service.jobs import diagnosis_to_dict

        payload = diagnosis_to_dict(Flames(golden).diagnose(measurements))
        assert "interrupted" not in payload["stats"]

    def test_cancelled_before_start_still_returns(self):
        golden, measurements = _amp_measurements()
        ctx = RunContext()
        ctx.cancel()
        result = Flames(golden).diagnose(measurements, ctx=ctx)
        assert result.interrupted
        assert ctx.stop_reason == "cancelled"
        assert result.propagation.steps == 0


class TestSessionThreading:
    def test_observe_accepts_a_context(self):
        golden, measurements = _amp_measurements()
        session = TroubleshootingSession(golden)
        ctx = RunContext(tracing=True)
        result = session.observe(*measurements, ctx=ctx)
        assert result.trace is not None
        assert session.result is result

    def test_recommend_next_respects_budget(self):
        golden, measurements = _amp_measurements()
        session = TroubleshootingSession(golden)
        session.observe(*measurements)
        unbounded = session.recommend_next()
        assert unbounded is not None
        # A context with an exhausted budget yields no recommendations.
        ctx = RunContext(step_budget=0)
        assert session.recommend_next(ctx=ctx) is None
        assert ctx.stop_reason == "step-budget"

    def test_planner_span_when_tracing(self):
        golden, measurements = _amp_measurements()
        session = TroubleshootingSession(golden)
        session.observe(*measurements)
        ctx = RunContext(tracing=True)
        session.recommend_next(ctx=ctx)
        (plan,) = ctx.trace()["spans"]
        assert plan["name"] == "plan"
        assert plan["meta"]["points"] > 0


class TestServiceThreading:
    def test_fleet_engine_interrupts_and_does_not_cache(self):
        from repro.service import FleetEngine
        from repro.service.jobs import DiagnosisJob

        golden, measurements = _ladder_measurements()
        job = DiagnosisJob.build("unit-1", golden, measurements)
        full_steps = Flames(golden).diagnose(measurements).propagation.steps

        engine = FleetEngine(workers=1, executor="serial")
        # A supplied context governs the run entirely: budget AND tracing.
        ctx = RunContext(step_budget=full_steps // 2, tracing=True)
        result = engine.run_job(job, ctx=ctx)
        assert result.status == "interrupted"
        assert "interrupted" in result.error
        assert result.diagnosis["stats"]["interrupted"] is True
        assert result.trace
        # Partial results never warm the cache: a rerun recomputes fully.
        clean = engine.run_job(job)
        assert clean.status == "ok"
        assert not clean.cache_hit
        assert engine.telemetry.counter("jobs_interrupted") == 1

    def test_batch_tracing_folds_engine_phases_into_telemetry(self):
        from repro.service import FleetEngine
        from repro.service.jobs import DiagnosisJob

        golden, measurements = _amp_measurements()
        job = DiagnosisJob.build("unit-1", golden, measurements)
        engine = FleetEngine(workers=1, executor="serial", tracing=True)
        report = engine.run_batch([job])
        assert report.results[0].status == "ok"
        assert report.results[0].trace
        phases = report.telemetry["phases"]
        assert "engine.diagnose" in phases
        assert "engine.diagnose.propagate" in phases

    def test_in_band_timeout_interrupts_pooled_worker(self):
        from repro.service import FleetEngine
        from repro.service.jobs import DiagnosisJob

        golden, measurements = _ladder_measurements(rungs=24, probes=10)
        job = DiagnosisJob.build("unit-slow", golden, measurements)
        # A deadline far shorter than the ladder's propagation time: the
        # worker thread observes it in-band and winds down on its own.
        engine = FleetEngine(workers=1, executor="thread", timeout=0.005)
        report = engine.run_batch([job])
        result = report.results[0]
        assert result.status == "interrupted"
        assert result.diagnosis["stats"]["interrupted"] is True
        # Not retried (partial, not failed) and not cached.
        assert result.attempts == 1
        assert engine.cache.get(job.content_hash) is None
