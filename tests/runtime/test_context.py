"""RunContext unit behaviour: deadlines, cancellation, budgets, spans."""

import threading

import pytest

from repro.runtime import CancelToken, RunContext, Span, render_trace


class TestCancelToken:
    def test_latches(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled

    def test_shared_across_contexts(self):
        token = CancelToken()
        a = RunContext(cancel=token)
        b = RunContext(cancel=token)
        a.cancel()
        assert b.should_stop()
        assert b.stop_reason == "cancelled"

    def test_visible_across_threads(self):
        ctx = RunContext()
        seen = threading.Event()

        def worker():
            while not ctx.should_stop():
                pass
            seen.set()

        t = threading.Thread(target=worker)
        t.start()
        ctx.cancel()
        assert seen.wait(timeout=5), "worker never observed the cancellation"
        t.join(timeout=5)


class TestDeadline:
    def _fake_clock(self, step=1.0):
        now = [0.0]

        def clock():
            now[0] += step
            return now[0]

        return clock

    def test_no_deadline_is_unbounded(self):
        ctx = RunContext.background()
        assert ctx.remaining() is None
        for _ in range(100):
            assert not ctx.tick()
        assert not ctx.interrupted

    def test_with_timeout_none_never_expires(self):
        ctx = RunContext.with_timeout(None, clock=self._fake_clock())
        assert ctx.deadline is None
        assert not ctx.should_stop()

    def test_deadline_expiry_latches_reason(self):
        # clock: 1.0 at construction -> deadline 4.0; checks at 2, 3, 4.
        ctx = RunContext.with_timeout(3.0, clock=self._fake_clock())
        assert not ctx.should_stop()
        assert not ctx.should_stop()
        assert ctx.should_stop()
        assert ctx.interrupted
        assert ctx.stop_reason == "deadline"

    def test_remaining_floors_at_zero(self):
        ctx = RunContext.with_timeout(0.5, clock=self._fake_clock())
        assert ctx.remaining() == 0.0

    def test_first_reason_wins(self):
        ctx = RunContext.with_timeout(0.0, clock=self._fake_clock())
        assert ctx.should_stop()
        assert ctx.stop_reason == "deadline"
        ctx.cancel()
        assert ctx.should_stop()
        assert ctx.stop_reason == "deadline"  # latched, not overwritten


class TestStepBudget:
    def test_budget_charges_deterministically(self):
        ctx = RunContext(step_budget=3)
        assert not ctx.tick()
        assert not ctx.tick()
        assert ctx.tick()
        assert ctx.steps_used == 3
        assert ctx.stop_reason == "step-budget"

    def test_bulk_charge(self):
        ctx = RunContext(step_budget=10)
        assert not ctx.tick(5)
        assert ctx.tick(5)

    def test_no_budget_counts_but_never_stops(self):
        ctx = RunContext()
        for _ in range(50):
            assert not ctx.tick()
        assert ctx.steps_used == 50


class TestSpans:
    def test_tracing_off_shares_noop_handle(self):
        ctx = RunContext()
        a = ctx.span("x")
        b = ctx.span("y", k=1)
        assert a is b  # one shared no-op object: zero per-call allocation
        with a as span:
            assert span is None
        assert ctx.spans == []

    def test_nested_spans_build_a_tree(self):
        ctx = RunContext(tracing=True)
        with ctx.span("outer", kind="test"):
            with ctx.span("inner-1"):
                pass
            with ctx.span("inner-2"):
                pass
        assert len(ctx.spans) == 1
        outer = ctx.spans[0]
        assert outer.name == "outer"
        assert outer.meta == {"kind": "test"}
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert outer.seconds >= 0.0

    def test_trace_dict_round_trips(self):
        ctx = RunContext(trace_id="abc123", tracing=True)
        with ctx.span("stage", steps=7):
            pass
        trace = ctx.trace()
        assert trace["trace_id"] == "abc123"
        assert trace["interrupted"] is False
        span = Span.from_dict(trace["spans"][0])
        assert span.name == "stage"
        assert span.meta == {"steps": 7}
        assert span.seconds >= 0.0

    def test_render_trace_marks_interruption(self):
        ctx = RunContext(trace_id="t1", tracing=True, step_budget=0)
        with ctx.span("diagnose"):
            ctx.tick()
        text = render_trace(ctx.trace())
        assert "trace t1" in text
        assert "interrupted: step-budget" in text
        assert "diagnose" in text

    def test_render_trace_empty(self):
        assert "(no spans recorded)" in render_trace({"trace_id": "x", "spans": []})


class TestConstruction:
    def test_trace_ids_are_unique_by_default(self):
        ids = {RunContext().trace_id for _ in range(20)}
        assert len(ids) == 20

    def test_supplied_trace_id_is_kept(self):
        assert RunContext(trace_id="req-7").trace_id == "req-7"

    def test_repr_smoke(self):
        ctx = RunContext.with_timeout(5.0, step_budget=10)
        text = repr(ctx)
        assert "remaining" in text and "budget" in text
