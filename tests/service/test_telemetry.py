"""Tests for the structured telemetry collector."""

import json
import threading

import pytest

from repro.service.telemetry import Telemetry


class TestCounters:
    def test_incr_accumulates(self):
        tel = Telemetry()
        tel.incr("jobs")
        tel.incr("jobs", 3)
        assert tel.counter("jobs") == 4

    def test_missing_counter_is_zero(self):
        assert Telemetry().counter("nope") == 0

    def test_thread_safety(self):
        tel = Telemetry()

        def bump():
            for _ in range(1000):
                tel.incr("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counter("n") == 4000


class TestObservations:
    def test_summary_stats(self):
        tel = Telemetry()
        for v in (1.0, 2.0, 3.0):
            tel.observe("latency", v)
        obs = tel.snapshot()["observations"]["latency"]
        assert obs["count"] == 3
        assert obs["mean"] == pytest.approx(2.0)
        assert obs["min"] == 1.0
        assert obs["max"] == 3.0


class TestPhases:
    def test_phase_accumulates_wall_clock(self):
        tel = Telemetry()
        with tel.phase("work"):
            pass
        with tel.phase("work"):
            pass
        phase = tel.snapshot()["phases"]["work"]
        assert phase["entries"] == 2
        assert phase["seconds"] >= 0.0

    def test_phase_records_even_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.phase("doomed"):
                raise RuntimeError("boom")
        assert tel.snapshot()["phases"]["doomed"]["entries"] == 1


class TestEventsAndSnapshot:
    def test_events_bounded(self):
        tel = Telemetry(max_events=3)
        for i in range(5):
            tel.event("tick", index=i)
        events = tel.snapshot()["events"]
        assert len(events) == 3
        assert events[0]["index"] == 2

    def test_snapshot_is_json_safe(self):
        tel = Telemetry()
        tel.incr("jobs")
        tel.observe("latency", 0.5)
        with tel.phase("work"):
            pass
        tel.event("done", unit="u1")
        json.dumps(tel.snapshot())

    def test_summary_mentions_everything(self):
        tel = Telemetry()
        tel.incr("jobs_ok", 2)
        tel.observe("job_seconds", 0.25)
        with tel.phase("execute"):
            pass
        text = tel.summary(title="fleet telemetry")
        assert "fleet telemetry" in text
        assert "jobs_ok: 2" in text
        assert "execute" in text
        assert "job_seconds" in text

    def test_empty_summary(self):
        assert "(empty)" in Telemetry().summary()

    def test_reset(self):
        tel = Telemetry()
        tel.incr("jobs")
        tel.reset()
        assert tel.counter("jobs") == 0


class TestPercentiles:
    def test_percentile_function(self):
        from repro.service.telemetry import percentile

        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([7.0], 0.99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_snapshot_reports_percentiles(self):
        tel = Telemetry()
        for v in range(1, 101):
            tel.observe("latency", float(v))
        obs = tel.snapshot()["observations"]["latency"]
        assert obs["p50"] == pytest.approx(50.0)
        assert obs["p95"] == pytest.approx(95.0)
        assert obs["p99"] == pytest.approx(99.0)
        json.dumps(tel.snapshot())

    def test_reservoir_bounds_memory_but_keeps_exact_extremes(self):
        tel = Telemetry(reservoir=10)
        for v in range(1, 1001):
            tel.observe("latency", float(v))
        obs = tel.snapshot()["observations"]["latency"]
        assert obs["count"] == 1000
        assert obs["min"] == 1.0 and obs["max"] == 1000.0
        # percentiles come from the last 10 samples only
        assert obs["p50"] >= 991.0

    def test_summary_mentions_percentiles(self):
        tel = Telemetry()
        for v in (0.1, 0.2, 0.3):
            tel.observe("job_seconds", v)
        assert "p95=" in tel.summary()


class TestGauges:
    def test_gauge_overwrites(self):
        tel = Telemetry()
        tel.gauge("streams_active", 3.0)
        tel.gauge("streams_active", 1.0)
        assert tel.gauge_value("streams_active") == 1.0

    def test_gauge_add_accumulates_deltas(self):
        tel = Telemetry()
        tel.gauge_add("streams_active", 1.0)
        tel.gauge_add("streams_active", 1.0)
        tel.gauge_add("streams_active", -1.0)
        assert tel.gauge_value("streams_active") == 1.0

    def test_unknown_gauge_reads_zero(self):
        assert Telemetry().gauge_value("nope") == 0.0

    def test_snapshot_carries_gauges(self):
        tel = Telemetry()
        tel.gauge("chain_length", 7.0)
        snap = tel.snapshot()
        assert snap["gauges"] == {"chain_length": 7.0}
        json.dumps(snap)

    def test_merge_sums_gauges_across_sources(self):
        # Each source reports its *current* value; the fleet-wide current
        # value is their sum (e.g. active streams per replica).
        a, b = Telemetry(), Telemetry()
        a.gauge("streams_active", 2.0)
        b.gauge("streams_active", 1.0)
        b.gauge("chain_length", 5.0)
        merged = Telemetry.merge([a.snapshot(), b.snapshot()])
        assert merged["gauges"] == {"streams_active": 3.0, "chain_length": 5.0}

    def test_merge_tolerates_sources_without_gauges(self):
        old_style = {"counters": {"jobs": 1}}  # pre-gauge snapshot shape
        tel = Telemetry()
        tel.gauge("streams_active", 1.0)
        merged = Telemetry.merge([old_style, tel.snapshot()])
        assert merged["gauges"] == {"streams_active": 1.0}

    def test_summary_renders_gauges(self):
        tel = Telemetry()
        tel.gauge("streams_active", 2.0)
        text = tel.summary()
        assert "gauges" in text
        assert "streams_active" in text

    def test_reset_clears_gauges(self):
        tel = Telemetry()
        tel.gauge("streams_active", 2.0)
        tel.reset()
        assert tel.gauge_value("streams_active") == 0.0
        assert Telemetry().summary().count("gauges") == 0
