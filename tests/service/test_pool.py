"""Tests for the fleet engine: parallel batches, caching, degradation."""

import time

import pytest

from repro.circuit.measurements import Measurement
from repro.fuzzy import FuzzyInterval
from repro.service.jobs import DiagnosisJob
from repro.service.pool import FleetEngine, execute_job

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)

BROKEN_NETLIST = "Rbroken top 0\n"


def _job(unit, volts=6.0, confirm=None, netlist=NETLIST):
    return DiagnosisJob.build(
        unit,
        netlist,
        [Measurement("V(mid)", FuzzyInterval.number(volts, 0.02))],
        confirm=confirm,
    )


def _fleet(n_healthy=8, n_faulty=8):
    """A fleet with heavy duplication, like a real repair queue."""
    jobs = [_job(f"healthy-{i}", 6.0) for i in range(n_healthy)]
    jobs += [_job(f"faulty-{i}", 7.5) for i in range(n_faulty)]
    return jobs


class TestExecuteJob:
    def test_ok_payload(self):
        payload = execute_job(_job("u", 7.5))
        assert payload["status"] == "ok"
        assert payload["diagnosis"]["status"] == "faulty"
        assert payload["elapsed"] > 0

    def test_crash_payload(self):
        payload = execute_job(_job("u", netlist=BROKEN_NETLIST))
        assert payload["status"] == "error"
        assert "NetlistError" in payload["error"]


class TestBatch:
    def test_results_in_job_order(self):
        engine = FleetEngine(workers=2, executor="thread")
        jobs = _fleet(3, 3)
        report = engine.run_batch(jobs)
        assert [r.unit for r in report.results] == [j.unit for j in jobs]
        assert all(r.ok for r in report.results)

    def test_duplicates_deduplicated_within_batch(self):
        engine = FleetEngine(workers=2, executor="thread")
        report = engine.run_batch(_fleet(8, 8))
        # 16 jobs but only 2 distinct contents: 2 leaders ran, 14 replayed.
        assert report.cache_hits == 14
        assert engine.cache.hits == 14
        assert engine.telemetry.counter("jobs_ok") == 16
        assert engine.telemetry.counter("propagation_passes") == 2

    def test_warm_second_pass_hits_cache(self):
        engine = FleetEngine(workers=2, executor="thread")
        jobs = _fleet(4, 4)
        engine.run_batch(jobs)
        hits_before = engine.cache.hits
        report = engine.run_batch(jobs)
        assert all(r.cache_hit for r in report.results)
        assert engine.cache.hits == hits_before + len(jobs)
        assert engine.telemetry.counter("cache_hits") == engine.cache.hits

    def test_crashing_job_is_isolated(self):
        engine = FleetEngine(workers=2, executor="thread", retries=1)
        jobs = _fleet(4, 4) + [_job("crasher", netlist=BROKEN_NETLIST)]
        report = engine.run_batch(jobs)
        by_unit = {r.unit: r for r in report.results}
        crash = by_unit["crasher"]
        assert crash.status == "error"
        assert "NetlistError" in crash.error
        assert crash.attempts == 2  # one retry granted, then surfaced
        assert engine.telemetry.counter("retries") == 1
        others = [r for r in report.results if r.unit != "crasher"]
        assert all(r.ok for r in others)
        assert report.failed == [crash]

    def test_error_results_not_cached(self):
        engine = FleetEngine(workers=1, executor="serial", retries=0)
        job = _job("crasher", netlist=BROKEN_NETLIST)
        engine.run_batch([job])
        assert len(engine.cache) == 0
        report = engine.run_batch([job])
        assert report.results[0].status == "error"
        assert not report.results[0].cache_hit

    def test_serial_executor(self):
        engine = FleetEngine(workers=1, executor="serial")
        report = engine.run_batch(_fleet(2, 2))
        assert all(r.ok for r in report.results)

    def test_process_executor_round_trip(self):
        engine = FleetEngine(workers=2, executor="process")
        report = engine.run_batch(_fleet(2, 2))
        assert all(r.ok for r in report.results)
        assert report.cache_hits == 2

    def test_empty_batch(self):
        engine = FleetEngine(workers=2, executor="thread")
        report = engine.run_batch([])
        assert report.results == []

    def test_report_dict_is_json_safe(self):
        import json

        engine = FleetEngine(workers=1, executor="serial")
        report = engine.run_batch(_fleet(1, 1))
        json.dumps(report.to_dict())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FleetEngine(workers=0)
        with pytest.raises(ValueError):
            FleetEngine(executor="rocket")
        with pytest.raises(ValueError):
            FleetEngine(retries=-1)


class TestTimeout:
    def test_hung_job_yields_structured_timeout(self, monkeypatch):
        # A worker hung *outside* the cooperative loop (it never checks
        # its RunContext) — the pool-side hard backstop must still fire.
        def sleepy(job, *args, **kwargs):
            time.sleep(5.0)
            return {"status": "ok", "diagnosis": {}, "elapsed": 5.0}

        import repro.service.pool as pool_mod

        monkeypatch.setattr(pool_mod, "execute_job", sleepy)
        engine = FleetEngine(workers=2, executor="thread", timeout=0.2, retries=2)
        report = engine.run_batch([_job("hung", 7.5)])
        res = report.results[0]
        assert res.status == "timeout"
        assert "budget" in res.error
        # timeouts are surfaced immediately, not retried
        assert engine.telemetry.counter("retries") == 0


class TestExperienceMerge:
    def test_confirmed_repairs_reach_shared_base(self):
        engine = FleetEngine(workers=2, executor="thread")
        jobs = [
            _job(f"shop-a-{i}", 7.5, confirm=("Rbot", "high")) for i in range(3)
        ]
        report = engine.run_batch(jobs)
        assert report.rules_learned == 1
        assert len(engine.experience) == 1
        rule = engine.experience.rules[0]
        assert rule.component == "Rbot"
        assert rule.occurrences == 3  # all three confirmations reinforce it
        assert engine.experience.episode_count == 3

    def test_merge_accumulates_across_batches(self):
        engine = FleetEngine(workers=1, executor="serial")
        engine.run_batch([_job("a", 7.5, confirm=("Rbot", "high"))])
        certainty_first = engine.experience.rules[0].certainty
        engine.run_batch([_job("b", 7.5, confirm=("Rbot", "high"))])
        assert len(engine.experience) == 1
        assert engine.experience.rules[0].occurrences == 2
        assert engine.experience.rules[0].certainty > certainty_first

    def test_experience_boosts_later_sessions(self):
        """The fleet's merged experience feeds an interactive session."""
        from repro.core.learning import SymptomSignature
        from repro.core.session import TroubleshootingSession

        engine = FleetEngine(workers=1, executor="serial")
        report = engine.run_batch(
            [_job(f"u{i}", 7.5, confirm=("Rbot", "high")) for i in range(3)]
        )
        signature = SymptomSignature.from_list(report.results[0].signature_entries())
        hits = engine.experience.suggest(signature)
        assert hits and hits[0][0].component == "Rbot"

        session = TroubleshootingSession(
            DiagnosisJob.build("x", NETLIST, []).circuit(),
            experience=engine.experience,
        )
        session.observe(Measurement("V(mid)", FuzzyInterval.number(7.5, 0.02)))
        ranked = session.candidates()
        assert ranked[0][0] == "Rbot"
        assert ranked[0][1] > 1.0  # evidence + experience

    def test_unconfirmed_jobs_learn_nothing(self):
        engine = FleetEngine(workers=1, executor="serial")
        engine.run_batch(_fleet(2, 2))
        assert len(engine.experience) == 0
