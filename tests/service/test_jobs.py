"""Tests for diagnosis jobs: hashing, manifests, JSON shapes."""

import json

import pytest

from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.components import Resistor, VoltageSource
from repro.circuit.spice import write_netlist
from repro.core.diagnosis import Flames
from repro.fuzzy import FuzzyInterval
from repro.service.jobs import (
    DiagnosisJob,
    JobResult,
    ManifestError,
    diagnosis_to_dict,
    load_manifest,
    measurement_from_dict,
    measurement_to_dict,
)

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)


def _measure(volts=6.0, spread=0.02):
    return [Measurement("V(mid)", FuzzyInterval.number(volts, spread))]


class TestContentHash:
    def test_deterministic(self):
        a = DiagnosisJob.build("u1", NETLIST, _measure())
        b = DiagnosisJob.build("u1", NETLIST, _measure())
        assert a.content_hash == b.content_hash

    def test_unit_label_not_hashed(self):
        a = DiagnosisJob.build("unit-a", NETLIST, _measure())
        b = DiagnosisJob.build("unit-b", NETLIST, _measure())
        assert a.content_hash == b.content_hash

    def test_confirm_not_hashed(self):
        a = DiagnosisJob.build("u", NETLIST, _measure())
        b = DiagnosisJob.build("u", NETLIST, _measure(), confirm=("Rtop", "short"))
        assert a.content_hash == b.content_hash

    def test_measurement_changes_hash(self):
        a = DiagnosisJob.build("u", NETLIST, _measure(6.0))
        b = DiagnosisJob.build("u", NETLIST, _measure(7.0))
        assert a.content_hash != b.content_hash

    def test_config_changes_hash(self):
        a = DiagnosisJob.build("u", NETLIST, _measure())
        b = DiagnosisJob.build("u", NETLIST, _measure(), config={"conflict_threshold": 0.2})
        assert a.content_hash != b.content_hash

    def test_component_order_does_not_change_hash(self):
        forward = Circuit("d")
        forward.add(VoltageSource("Vin", 12.0, p="top", n=GROUND))
        forward.add(Resistor("Rtop", 10e3, a="top", b="mid"))
        forward.add(Resistor("Rbot", 10e3, a="mid", b=GROUND))
        backward = Circuit("d-reordered")
        backward.add(Resistor("Rbot", 10e3, a="mid", b=GROUND))
        backward.add(Resistor("Rtop", 10e3, a="top", b="mid"))
        backward.add(VoltageSource("Vin", 12.0, p="top", n=GROUND))
        assert forward.fingerprint() == backward.fingerprint()
        a = DiagnosisJob.build("u", forward, _measure())
        b = DiagnosisJob.build("u", backward, _measure())
        assert a.content_hash == b.content_hash

    def test_parameter_changes_fingerprint(self):
        base = three_stage_amplifier()
        tweaked = base.clone()
        tweaked.component("R2").resistance *= 1.1
        assert base.fingerprint() != tweaked.fingerprint()

    def test_unparseable_netlist_still_hashes(self):
        bad = DiagnosisJob.build("u", "Rbroken top 0\n", _measure())
        assert bad.content_hash == DiagnosisJob.build("x", "Rbroken top 0\n", _measure()).content_hash

    def test_netlist_round_trip_same_hash(self):
        circuit = three_stage_amplifier()
        ms = _measure()
        direct = DiagnosisJob.build("u", circuit, ms)
        via_text = DiagnosisJob.build("u", write_netlist(circuit), ms)
        assert direct.content_hash == via_text.content_hash


class TestJobViews:
    def test_round_trips_measurements(self):
        job = DiagnosisJob.build("u", NETLIST, _measure(6.5, 0.03))
        [m] = job.to_measurements()
        assert m.point == "V(mid)"
        assert m.value.m1 == pytest.approx(6.5)
        assert m.value.alpha == pytest.approx(0.03)

    def test_flames_config_overrides(self):
        job = DiagnosisJob.build(
            "u", NETLIST, _measure(),
            config={"conflict_threshold": 0.1, "max_candidate_size": 2},
        )
        cfg = job.flames_config()
        assert cfg.conflict_threshold == pytest.approx(0.1)
        assert cfg.max_candidate_size == 2
        assert isinstance(cfg.max_candidate_size, int)

    def test_kernel_config_round_trips(self):
        job = DiagnosisJob.build("u", NETLIST, _measure(), config={"kernel": "fast"})
        assert job.flames_config().kernel == "fast"
        # The kernel choice is part of the job identity (cache key).
        plain = DiagnosisJob.build("u", NETLIST, _measure())
        assert plain.flames_config().kernel == "reference"
        assert job.content_hash != plain.content_hash

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ManifestError):
            DiagnosisJob.build("u", NETLIST, _measure(), config={"kernel": "turbo"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ManifestError):
            DiagnosisJob.build("u", NETLIST, _measure(), config={"bogus": 1})

    def test_job_is_picklable(self):
        import pickle

        job = DiagnosisJob.build("u", NETLIST, _measure(), confirm=("Rtop", ""))
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job


class TestDiagnosisDict:
    def test_shape_and_json_safety(self):
        job = DiagnosisJob.build("u", NETLIST, _measure(7.5))
        result = Flames(job.circuit(), job.flames_config()).diagnose(job.to_measurements())
        payload = diagnosis_to_dict(result)
        text = json.dumps(payload)  # must be JSON-serialisable
        back = json.loads(text)
        assert back["status"] == "faulty"
        assert back["suspicions"]
        assert back["measurements"][0]["point"] == "V(mid)"
        assert len(back["measurements"][0]["value"]) == 4
        assert back["stats"]["nogoods"] >= 1

    def test_measurement_dict_round_trip(self):
        m = Measurement("V(mid)", FuzzyInterval(5.9, 6.1, 0.02, 0.04))
        assert measurement_from_dict(measurement_to_dict(m)) == m

    def test_bad_measurement_spec(self):
        with pytest.raises(ManifestError):
            measurement_from_dict({"point": "V(x)", "value": [1, 2]})


class TestJobResult:
    def test_dict_round_trip(self):
        res = JobResult(
            unit="u", content_hash="abc", status="ok",
            diagnosis={"status": "consistent", "suspicions": {}},
            elapsed=0.5, attempts=2,
        )
        assert JobResult.from_dict(res.to_dict()) == res

    def test_relabel_marks_cache_hit(self):
        res = JobResult(unit="u", content_hash="abc", status="ok", elapsed=1.0)
        again = res.relabel("other")
        assert again.unit == "other"
        assert again.cache_hit
        assert again.elapsed == 0.0
        assert not res.cache_hit


class TestManifest:
    def _write(self, tmp_path, payload):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(payload))
        return path

    def test_probes_and_netlist_path(self, tmp_path):
        (tmp_path / "divider.cir").write_text(NETLIST)
        path = self._write(tmp_path, {"jobs": [
            {"unit": "a", "netlist": "divider.cir", "probes": {"mid": 6.0},
             "imprecision": 0.05},
        ]})
        [job] = load_manifest(path)
        assert job.unit == "a"
        [m] = job.to_measurements()
        assert m.point == "V(mid)"
        assert m.value.alpha == pytest.approx(0.05)

    def test_explicit_measurements_and_confirm(self, tmp_path):
        path = self._write(tmp_path, [
            {"netlist_text": NETLIST,
             "measurements": [{"point": "V(mid)", "value": [6, 6, 0.02, 0.02]}],
             "confirm": {"component": "Rbot", "mode": "high"}},
        ])
        [job] = load_manifest(path)
        assert job.unit == "unit-000"
        assert job.confirm == ("Rbot", "high")

    def test_missing_netlist_rejected(self, tmp_path):
        path = self._write(tmp_path, [{"unit": "a", "probes": {"mid": 6.0}}])
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_missing_measurements_rejected(self, tmp_path):
        path = self._write(tmp_path, [{"netlist_text": NETLIST}])
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_empty_manifest_rejected(self, tmp_path):
        path = self._write(tmp_path, {"jobs": []})
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_unreadable_netlist_path(self, tmp_path):
        path = self._write(tmp_path, [
            {"unit": "a", "netlist": "missing.cir", "probes": {"mid": 6.0}}
        ])
        with pytest.raises(ManifestError):
            load_manifest(path)


class TestJobFromSpec:
    def test_public_spec_parsing_inlines_netlist(self):
        from repro.service.jobs import job_from_spec

        job = job_from_spec(
            {"unit": "u1", "netlist_text": NETLIST, "probes": {"mid": 6.0}}
        )
        assert job.unit == "u1"
        assert job.measurements

    def test_netlist_paths_rejected_without_base_dir(self):
        from repro.service.jobs import ManifestError, job_from_spec

        with pytest.raises(ManifestError, match="netlist_text"):
            job_from_spec({"unit": "u1", "netlist": "design.cir", "probes": {"mid": 6.0}})
