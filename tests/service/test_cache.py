"""Tests for the content-addressed LRU result cache."""

import pytest

from repro.service.cache import ResultCache
from repro.service.jobs import JobResult


def _result(unit="u", key="k"):
    return JobResult(unit=unit, content_hash=key, status="ok")


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", _result(key="a"))
        assert cache.get("a").content_hash == "a"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _result(key="a"))
        cache.put("b", _result(key="b"))
        cache.get("a")  # refresh a: b is now the LRU entry
        cache.put("c", _result(key="c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _result(unit="first", key="a"))
        cache.put("a", _result(unit="second", key="a"))
        assert len(cache) == 1
        assert cache.get("a").unit == "second"

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.put("a", _result(key="a"))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_contains_does_not_count(self):
        cache = ResultCache()
        assert "a" not in cache
        assert cache.misses == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("a", _result(key="a"))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_snapshot(self):
        cache = ResultCache(capacity=8)
        cache.put("a", _result(key="a"))
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)


class TestConcurrency:
    def test_stress_from_many_threads(self):
        """get/put/snapshot hammered concurrently: no exceptions, sane books."""
        import random
        import threading

        cache = ResultCache(capacity=16)
        keys = [f"k{i}" for i in range(64)]
        errors = []
        gets = 8 * 500

        def hammer(seed):
            rng = random.Random(seed)
            try:
                for _ in range(500):
                    key = rng.choice(keys)
                    if cache.get(key) is None:
                        cache.put(key, _result(key=key))
                    if rng.random() < 0.05:
                        snap = cache.snapshot()
                        assert snap["size"] <= snap["capacity"]
                        len(cache)
                        key in cache
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = cache.snapshot()
        assert snap["size"] <= 16
        assert snap["hits"] + snap["misses"] == gets
        assert snap["evictions"] > 0
