"""Tests for linguistic faultiness estimations (section 8.1)."""

import pytest

from repro.fuzzy import FuzzyInterval, faultiness_scale
from repro.fuzzy.linguistic import FAULTINESS_5, LinguisticTerm, LinguisticVariable


class TestPaperAnchors:
    """The two terms whose definitions the paper publishes verbatim."""

    def test_correct_term(self):
        assert FAULTINESS_5.term("correct").value.as_tuple() == (0.0, 0.05, 0.0, 0.05)

    def test_likely_correct_term(self):
        assert FAULTINESS_5.term("likely correct").value.as_tuple() == (
            0.18,
            0.34,
            0.02,
            0.06,
        )


class TestScale:
    def test_five_terms_in_default_scale(self):
        assert len(FAULTINESS_5.terms) == 5

    def test_classify_extremes(self):
        assert FAULTINESS_5.classify(0.01) == "correct"
        assert FAULTINESS_5.classify(0.99) == "faulty"
        assert FAULTINESS_5.classify(0.5) == "unknown"

    def test_classify_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            FAULTINESS_5.classify(1.5)

    def test_scale_covers_most_of_unit_interval(self):
        """The published anchors leave small gaps; coverage stays above 85 %."""
        covered = sum(
            1
            for i in range(101)
            if max(FAULTINESS_5.memberships(i / 100.0).values()) > 0.0
        )
        assert covered >= 86

    def test_classify_falls_back_to_nearest_term_in_gaps(self):
        # 0.13 sits in the (0.10, 0.16) gap between the two published anchors.
        assert FAULTINESS_5.classify(0.13) in ("correct", "likely correct")

    def test_match_fuzzy_estimation(self):
        almost_faulty = FuzzyInterval(0.9, 0.95, 0.05, 0.05)
        assert FAULTINESS_5.match(almost_faulty) == "faulty"

    def test_match_mid_estimation(self):
        assert FAULTINESS_5.match(FuzzyInterval(0.5, 0.5, 0.05, 0.05)) == "unknown"

    def test_granularity_must_be_odd(self):
        with pytest.raises(ValueError):
            faultiness_scale(4)
        with pytest.raises(ValueError):
            faultiness_scale(1)

    def test_custom_granularity_builds_cover(self):
        scale = faultiness_scale(7)
        assert len(scale.terms) == 7
        for i in range(101):
            assert max(scale.memberships(i / 100.0).values()) > 0.0

    def test_granularity_five_is_the_paper_scale(self):
        assert faultiness_scale(5) is FAULTINESS_5


class TestLinguisticVariable:
    def test_unknown_term_raises(self):
        with pytest.raises(KeyError):
            FAULTINESS_5.term("implausible")

    def test_contains(self):
        assert "correct" in FAULTINESS_5
        assert "bogus" not in FAULTINESS_5

    def test_duplicate_names_rejected(self):
        t = LinguisticTerm("x", FuzzyInterval.crisp_interval(0.0, 1.0))
        with pytest.raises(ValueError):
            LinguisticVariable("v", (0.0, 1.0), [t, t])

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            LinguisticVariable("v", (1.0, 1.0), [])
