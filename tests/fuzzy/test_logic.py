"""Tests for fuzzy connectives."""

import pytest

from repro.fuzzy.logic import (
    S_NORMS,
    T_NORMS,
    fold,
    implication_goedel,
    implication_kleene_dienes,
    implication_lukasiewicz,
    negation,
    s_norm_lukasiewicz,
    s_norm_max,
    s_norm_probabilistic,
    t_norm_lukasiewicz,
    t_norm_min,
    t_norm_product,
)


class TestTNorms:
    @pytest.mark.parametrize("name,norm", sorted(T_NORMS.items()))
    def test_boundary_conditions(self, name, norm):
        for a in (0.0, 0.3, 0.7, 1.0):
            assert norm(a, 1.0) == pytest.approx(a)
            assert norm(1.0, a) == pytest.approx(a)
            assert norm(a, 0.0) == pytest.approx(0.0)

    @pytest.mark.parametrize("name,norm", sorted(T_NORMS.items()))
    def test_commutative(self, name, norm):
        assert norm(0.3, 0.8) == pytest.approx(norm(0.8, 0.3))

    @pytest.mark.parametrize("name,norm", sorted(T_NORMS.items()))
    def test_monotone(self, name, norm):
        assert norm(0.2, 0.5) <= norm(0.4, 0.5) + 1e-12

    def test_min_dominates_product_dominates_lukasiewicz(self):
        a, b = 0.6, 0.7
        assert t_norm_min(a, b) >= t_norm_product(a, b) >= t_norm_lukasiewicz(a, b)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            t_norm_min(1.2, 0.5)
        with pytest.raises(ValueError):
            t_norm_product(0.5, -0.1)


class TestSNorms:
    @pytest.mark.parametrize("name,norm", sorted(S_NORMS.items()))
    def test_boundary_conditions(self, name, norm):
        for a in (0.0, 0.3, 0.7, 1.0):
            assert norm(a, 0.0) == pytest.approx(a)
            assert norm(0.0, a) == pytest.approx(a)
            assert norm(a, 1.0) == pytest.approx(1.0)

    def test_max_dominated_by_probabilistic_and_bounded(self):
        a, b = 0.6, 0.7
        assert s_norm_max(a, b) <= s_norm_probabilistic(a, b) <= s_norm_lukasiewicz(a, b)


class TestNegationAndImplication:
    def test_negation_involutive(self):
        for a in (0.0, 0.25, 0.5, 1.0):
            assert negation(negation(a)) == pytest.approx(a)

    def test_kleene_dienes(self):
        assert implication_kleene_dienes(1.0, 0.3) == pytest.approx(0.3)
        assert implication_kleene_dienes(0.0, 0.3) == pytest.approx(1.0)

    def test_lukasiewicz_implication(self):
        assert implication_lukasiewicz(0.7, 0.4) == pytest.approx(0.7)
        assert implication_lukasiewicz(0.3, 0.4) == pytest.approx(1.0)

    def test_goedel_implication(self):
        assert implication_goedel(0.3, 0.4) == 1.0
        assert implication_goedel(0.8, 0.4) == 0.4


class TestFold:
    def test_fold_t_norm_over_many(self):
        assert fold(t_norm_min, [0.9, 0.5, 0.7], empty=1.0) == pytest.approx(0.5)

    def test_fold_empty_returns_neutral(self):
        assert fold(t_norm_min, [], empty=1.0) == 1.0
        assert fold(s_norm_max, [], empty=0.0) == 0.0

    def test_fold_product_associates(self):
        degrees = [0.9, 0.8, 0.5]
        assert fold(t_norm_product, degrees, empty=1.0) == pytest.approx(0.36)
