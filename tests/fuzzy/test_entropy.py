"""Tests for fuzzy Shannon entropy (section 8.2)."""

import math

import pytest

from repro.fuzzy import FuzzyInterval, fuzzy_entropy, expected_entropy
from repro.fuzzy.entropy import entropy_term, entropy_term_product_form


def crisp(x):
    return FuzzyInterval.crisp(x)


class TestEntropyTerm:
    def test_crisp_half_matches_shannon(self):
        term = entropy_term(crisp(0.5))
        assert term.centroid == pytest.approx(0.5)  # -0.5*log2(0.5)

    def test_zero_and_one_contribute_nothing(self):
        assert entropy_term(crisp(0.0)).centroid == pytest.approx(0.0, abs=1e-6)
        assert entropy_term(crisp(1.0)).centroid == pytest.approx(0.0, abs=1e-6)

    def test_peak_handled_when_support_straddles_one_over_e(self):
        fi = FuzzyInterval(0.2, 0.6, 0.1, 0.1)  # support [0.1, 0.7] contains 1/e
        term = entropy_term(fi)
        peak = -(1 / math.e) * math.log2(1 / math.e)
        assert term.support[1] == pytest.approx(peak)

    def test_values_outside_unit_interval_are_clamped(self):
        fi = FuzzyInterval(0.9, 1.1, 0.2, 0.2)
        term = entropy_term(fi)
        assert term.support[0] >= -1e-9

    def test_product_form_is_wider(self):
        fi = FuzzyInterval(0.6, 0.7, 0.05, 0.05)
        tight = entropy_term(fi)
        wide = entropy_term_product_form(fi)
        assert wide.width >= tight.width - 1e-9


class TestFuzzyEntropy:
    def test_empty_system_zero(self):
        assert fuzzy_entropy([]).is_close(crisp(0.0))

    def test_uniform_two_components_is_one_bit(self):
        ent = fuzzy_entropy([crisp(0.5), crisp(0.5)])
        assert ent.centroid == pytest.approx(1.0)

    def test_certain_system_has_zero_entropy(self):
        ent = fuzzy_entropy([crisp(1.0), crisp(0.0), crisp(0.0)])
        assert ent.centroid == pytest.approx(0.0, abs=1e-6)

    def test_fuzzier_estimations_give_fuzzier_entropy(self):
        sharp = fuzzy_entropy([crisp(0.3), crisp(0.7)])
        fuzzy = fuzzy_entropy(
            [FuzzyInterval(0.3, 0.3, 0.1, 0.1), FuzzyInterval(0.7, 0.7, 0.1, 0.1)]
        )
        assert fuzzy.width > sharp.width

    def test_entropy_additive_over_disjoint_systems(self):
        a = [crisp(0.4)]
        b = [crisp(0.9)]
        joint = fuzzy_entropy(a + b)
        separate = fuzzy_entropy(a) + fuzzy_entropy(b)
        assert joint.is_close(separate, tol=1e-9)

    def test_alternative_term_injection(self):
        ent = fuzzy_entropy([crisp(0.5)], term=entropy_term_product_form)
        assert ent.centroid == pytest.approx(0.5, abs=1e-6)


class TestExpectedEntropy:
    def test_uniform_outcomes(self):
        e1 = crisp(1.0)
        e2 = crisp(3.0)
        exp = expected_entropy([e1, e2])
        assert exp.centroid == pytest.approx(2.0)

    def test_weighted_outcomes(self):
        exp = expected_entropy([crisp(1.0), crisp(3.0)], [3.0, 1.0])
        assert exp.centroid == pytest.approx(1.5)

    def test_fuzzy_weights_allowed(self):
        w = FuzzyInterval(1.0, 1.0, 0.2, 0.2)
        exp = expected_entropy([crisp(2.0), crisp(2.0)], [w, w])
        assert exp.centroid == pytest.approx(2.0)

    def test_zero_weights_fall_back_to_uniform(self):
        exp = expected_entropy([crisp(1.0), crisp(3.0)], [0.0, 0.0])
        assert exp.centroid == pytest.approx(2.0)

    def test_requires_outcomes(self):
        with pytest.raises(ValueError):
            expected_entropy([])

    def test_weight_count_must_match(self):
        with pytest.raises(ValueError):
            expected_entropy([crisp(1.0)], [1.0, 2.0])
