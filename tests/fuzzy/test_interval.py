"""Unit tests for the trapezoidal fuzzy interval (paper figure 1 & section 3)."""


import pytest

from repro.fuzzy import FuzzyInterval


class TestConstruction:
    def test_crisp_number_has_degenerate_shape(self):
        m = FuzzyInterval.crisp(3.0)
        assert m.as_tuple() == (3.0, 3.0, 0.0, 0.0)
        assert m.is_crisp_number
        assert m.is_crisp_interval
        assert m.is_fuzzy_number

    def test_crisp_interval(self):
        v = FuzzyInterval.crisp_interval(2.95, 3.05)
        assert v.as_tuple() == (2.95, 3.05, 0.0, 0.0)
        assert v.is_crisp_interval
        assert not v.is_crisp_number

    def test_fuzzy_number(self):
        v = FuzzyInterval.number(3.0, 0.05)
        assert v.as_tuple() == (3.0, 3.0, 0.05, 0.05)
        assert v.is_fuzzy_number
        assert not v.is_crisp_interval

    def test_asymmetric_fuzzy_number(self):
        v = FuzzyInterval.number(3.0, 0.05, 0.1)
        assert v.alpha == 0.05
        assert v.beta == 0.1

    def test_triangular(self):
        v = FuzzyInterval.triangular(1.0, 2.0, 4.0)
        assert v.core == (2.0, 2.0)
        assert v.support == (1.0, 4.0)

    def test_triangular_rejects_unordered(self):
        with pytest.raises(ValueError):
            FuzzyInterval.triangular(2.0, 1.0, 4.0)

    def test_from_support_core(self):
        v = FuzzyInterval.from_support_core((0.0, 10.0), (2.0, 8.0))
        assert v.as_tuple() == (2.0, 8.0, 2.0, 2.0)

    def test_from_support_core_rejects_core_outside(self):
        with pytest.raises(ValueError):
            FuzzyInterval.from_support_core((0.0, 1.0), (-1.0, 0.5))

    def test_around_models_relative_tolerance(self):
        r = FuzzyInterval.around(100.0, 0.05)
        assert r.support == (95.0, 105.0)
        assert r.core == (100.0, 100.0)

    def test_inverted_core_rejected(self):
        with pytest.raises(ValueError):
            FuzzyInterval(2.0, 1.0)

    def test_negative_slopes_rejected(self):
        with pytest.raises(ValueError):
            FuzzyInterval(1.0, 2.0, -0.5, 0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            FuzzyInterval(float("nan"), 1.0)


class TestMembership:
    """The figure-1 membership formula, exactly."""

    def test_core_membership_is_one(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        assert v.membership(1.0) == 1.0
        assert v.membership(1.5) == 1.0
        assert v.membership(2.0) == 1.0

    def test_left_slope_is_linear(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        # mu(x) = (x - m1 + alpha) / alpha on [m1-alpha, m1]
        assert v.membership(0.75) == pytest.approx(0.5)
        assert v.membership(0.5) == pytest.approx(0.0)

    def test_right_slope_is_linear(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        # mu(x) = (m2 + beta - x) / beta on [m2, m2+beta]
        assert v.membership(2.25) == pytest.approx(0.5)
        assert v.membership(2.5) == pytest.approx(0.0)

    def test_outside_support_is_zero(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        assert v.membership(0.0) == 0.0
        assert v.membership(3.0) == 0.0

    def test_crisp_interval_membership_is_indicator(self):
        v = FuzzyInterval.crisp_interval(1.0, 2.0)
        assert v.membership(0.999) == 0.0
        assert v.membership(1.0) == 1.0
        assert v.membership(2.0) == 1.0
        assert v.membership(2.001) == 0.0

    def test_alpha_cut_interpolates_between_support_and_core(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 1.0)
        assert v.alpha_cut(1.0) == (1.0, 2.0)
        assert v.alpha_cut(0.5) == (0.75, 2.5)

    def test_alpha_cut_level_zero_invalid(self):
        with pytest.raises(ValueError):
            FuzzyInterval.crisp(1.0).alpha_cut(0.0)


class TestGeometry:
    def test_area_formula(self):
        v = FuzzyInterval(1.0, 3.0, 0.5, 1.5)
        assert v.area == pytest.approx((3.0 - 1.0) + 0.5 * (0.5 + 1.5))

    def test_crisp_point_has_zero_area(self):
        assert FuzzyInterval.crisp(7.0).area == 0.0

    def test_centroid_of_symmetric_trapezoid_is_centre(self):
        v = FuzzyInterval(1.0, 3.0, 1.0, 1.0)
        assert v.centroid == pytest.approx(2.0)

    def test_centroid_skews_toward_wider_slope(self):
        v = FuzzyInterval(0.0, 0.0, 0.0, 3.0)  # right triangle
        assert v.centroid == pytest.approx(1.0)

    def test_centroid_of_point_is_the_point(self):
        assert FuzzyInterval.crisp(5.0).centroid == 5.0

    def test_contains_nested(self):
        outer = FuzzyInterval(1.0, 3.0, 1.0, 1.0)
        inner = FuzzyInterval(1.5, 2.5, 0.2, 0.2)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_requires_core_nesting(self):
        outer = FuzzyInterval(1.0, 1.5, 2.0, 2.0)
        inner = FuzzyInterval(0.5, 2.0, 0.0, 0.0)  # support nested, core wider
        assert not outer.contains(inner)

    def test_blur_widens_both_slopes(self):
        v = FuzzyInterval(1.0, 2.0, 0.1, 0.2).blur(0.05)
        assert v.alpha == pytest.approx(0.15)
        assert v.beta == pytest.approx(0.25)

    def test_blur_rejects_negative(self):
        with pytest.raises(ValueError):
            FuzzyInterval.crisp(1.0).blur(-0.1)


class TestArithmetic:
    """Bonissone/Decker rules quoted in the paper's section 3.2."""

    def test_addition_rule(self):
        m = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        n = FuzzyInterval(3.0, 5.0, 0.3, 0.4)
        s = m + n
        assert s.as_tuple() == pytest.approx((4.0, 7.0, 0.4, 0.6))

    def test_subtraction_rule(self):
        m = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        n = FuzzyInterval(3.0, 5.0, 0.3, 0.4)
        d = m - n
        # [m1-n2, m2-n1, alpha+beta', beta+alpha']
        assert d.as_tuple() == pytest.approx((-4.0, -1.0, 0.5, 0.5))

    def test_negation_mirrors(self):
        v = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        assert (-v).as_tuple() == pytest.approx((-2.0, -1.0, 0.2, 0.1))

    def test_scalar_coercion(self):
        v = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        assert (v + 1).core == (2.0, 3.0)
        assert (1 + v).core == (2.0, 3.0)
        assert (v - 1).core == (0.0, 1.0)
        assert (3 - v).core == (1.0, 2.0)

    def test_addition_commutes(self):
        m = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        n = FuzzyInterval(3.0, 5.0, 0.3, 0.4)
        assert (m + n).is_close(n + m)

    def test_multiplication_positive_operands(self):
        m = FuzzyInterval(2.0, 3.0, 0.5, 0.5)
        n = FuzzyInterval(4.0, 5.0, 1.0, 1.0)
        p = m * n
        assert p.core == (8.0, 15.0)
        assert p.support == (pytest.approx(1.5 * 3.0), pytest.approx(3.5 * 6.0))

    def test_multiplication_handles_negative_operands(self):
        m = FuzzyInterval(-3.0, -2.0, 0.5, 0.5)
        n = FuzzyInterval(4.0, 5.0, 0.0, 0.0)
        p = m * n
        assert p.core == (-15.0, -8.0)
        assert p.support == (pytest.approx(-3.5 * 5.0), pytest.approx(-1.5 * 4.0))

    def test_multiplication_spanning_zero(self):
        m = FuzzyInterval(-1.0, 1.0, 0.5, 0.5)
        n = FuzzyInterval(2.0, 2.0, 0.0, 0.0)
        p = m * n
        assert p.core == (-2.0, 2.0)
        assert p.support == (-3.0, 3.0)

    def test_division(self):
        m = FuzzyInterval(8.0, 15.0, 0.0, 0.0)
        n = FuzzyInterval(4.0, 5.0, 0.0, 0.0)
        q = m / n
        assert q.core == (pytest.approx(8.0 / 5.0), pytest.approx(15.0 / 4.0))

    def test_division_by_zero_spanning_interval_raises(self):
        with pytest.raises(ZeroDivisionError):
            FuzzyInterval.crisp(1.0) / FuzzyInterval(-1.0, 1.0)

    def test_division_by_zero_support_raises(self):
        # Core excludes zero but support does not.
        with pytest.raises(ZeroDivisionError):
            FuzzyInterval.crisp(1.0) / FuzzyInterval(0.5, 1.0, 1.0, 0.0)

    def test_reciprocal_round_trip(self):
        n = FuzzyInterval(4.0, 5.0, 0.5, 0.5)
        r = n.reciprocal()
        assert r.core == (pytest.approx(0.2), pytest.approx(0.25))

    def test_scale_positive(self):
        v = FuzzyInterval(1.0, 2.0, 0.1, 0.2).scale(10.0)
        assert v.as_tuple() == pytest.approx((10.0, 20.0, 1.0, 2.0))

    def test_scale_negative_mirrors(self):
        v = FuzzyInterval(1.0, 2.0, 0.1, 0.2).scale(-1.0)
        assert v.as_tuple() == pytest.approx((-2.0, -1.0, 0.2, 0.1))

    def test_apply_monotone_increasing(self):
        v = FuzzyInterval(1.0, 4.0, 0.75, 5.0)
        sq = v.apply_monotone(lambda x: x * x)
        assert sq.core == (1.0, 16.0)
        assert sq.support == (pytest.approx(0.0625), pytest.approx(81.0))

    def test_apply_monotone_decreasing(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        inv = v.apply_monotone(lambda x: 1.0 / x, increasing=False)
        assert inv.core == (0.5, 1.0)
        assert inv.support == (pytest.approx(0.4), pytest.approx(2.0))

    def test_apply_unimodal_includes_peak(self):
        # g(x) = -(x-1)^2 peaks at x=1 with value 0.
        v = FuzzyInterval(0.0, 2.0, 0.5, 0.5)
        img = v.apply_unimodal(lambda x: -((x - 1.0) ** 2), peak_x=1.0)
        assert img.core[1] == pytest.approx(0.0)
        assert img.support[0] == pytest.approx(-2.25)


class TestPaperFigure2:
    """The cascade example of section 4.2, literally."""

    AMP1 = FuzzyInterval(1.0, 1.0, 0.05, 0.05)
    AMP2 = FuzzyInterval(2.0, 2.0, 0.05, 0.05)
    AMP3 = FuzzyInterval(3.0, 3.0, 0.05, 0.05)

    def test_fuzzy_number_input_case(self):
        va = FuzzyInterval(3.0, 3.0, 0.05, 0.05)
        vb = va * self.AMP1
        vc = vb * self.AMP2
        vd = vb * self.AMP3
        assert vb.core == (3.0, 3.0)
        assert vb.alpha == pytest.approx(0.20, abs=0.005)
        assert vb.beta == pytest.approx(0.20, abs=0.005)
        assert vc.alpha == pytest.approx(0.54, abs=0.01)
        assert vc.beta == pytest.approx(0.57, abs=0.01)
        assert vd.alpha == pytest.approx(0.73, abs=0.01)
        assert vd.beta == pytest.approx(0.77, abs=0.01)

    def test_crisp_interval_input_case(self):
        va = FuzzyInterval.crisp_interval(2.95, 3.05)
        vb = va * self.AMP1
        assert vb.core == (2.95, 3.05)
        assert vb.alpha == pytest.approx(0.15, abs=0.005)
        assert vb.beta == pytest.approx(0.15, abs=0.005)
        vd = vb * self.AMP3
        assert vd.core == (pytest.approx(8.85), pytest.approx(9.15))
        assert vd.alpha == pytest.approx(0.58, abs=0.01)
        assert vd.beta == pytest.approx(0.62, abs=0.01)


class TestSetOperations:
    def test_overlap_detection(self):
        a = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        b = FuzzyInterval(3.0, 4.0, 0.6, 0.0)
        assert a.overlaps(b)  # 2.5 vs 2.4 — supports cross
        c = FuzzyInterval(4.0, 5.0, 0.5, 0.0)
        assert not a.overlaps(c)

    def test_intersection_area_identical(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        assert v.intersection_area(v) == pytest.approx(v.area)

    def test_intersection_area_disjoint_is_zero(self):
        a = FuzzyInterval(0.0, 1.0, 0.0, 0.0)
        b = FuzzyInterval(2.0, 3.0, 0.0, 0.0)
        assert a.intersection_area(b) == 0.0

    def test_intersection_area_nested(self):
        outer = FuzzyInterval(0.0, 10.0, 0.0, 0.0)
        inner = FuzzyInterval(4.0, 6.0, 1.0, 1.0)
        assert outer.intersection_area(inner) == pytest.approx(inner.area)

    def test_intersection_area_crisp_overlap(self):
        a = FuzzyInterval.crisp_interval(0.0, 2.0)
        b = FuzzyInterval.crisp_interval(1.0, 3.0)
        assert a.intersection_area(b) == pytest.approx(1.0)

    def test_intersection_area_sloped_overlap(self):
        # Two symmetric triangles centred at 0 and 2, each half-width 2:
        # min peaks at x=1 with membership 0.5; area = 2 * (0.5*1*0.5) = 0.5.
        a = FuzzyInterval.triangular(-2.0, 0.0, 2.0)
        b = FuzzyInterval.triangular(0.0, 2.0, 4.0)
        assert a.intersection_area(b) == pytest.approx(0.5)

    def test_intersection_area_symmetric(self):
        a = FuzzyInterval(1.0, 2.0, 0.7, 0.3)
        b = FuzzyInterval(1.5, 3.0, 0.5, 0.9)
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))

    def test_intersection_hull_of_overlapping_cores(self):
        a = FuzzyInterval(1.0, 3.0, 1.0, 1.0)
        b = FuzzyInterval(2.0, 4.0, 1.0, 1.0)
        h = a.intersection_hull(b)
        assert h.core == (2.0, 3.0)
        assert h.support == (1.0, 4.0)

    def test_intersection_hull_disjoint_is_none(self):
        a = FuzzyInterval(0.0, 1.0, 0.0, 0.0)
        b = FuzzyInterval(5.0, 6.0, 0.0, 0.0)
        assert a.intersection_hull(b) is None

    def test_intersection_hull_core_disjoint_peaks_at_crossing(self):
        a = FuzzyInterval.triangular(-2.0, 0.0, 2.0)
        b = FuzzyInterval.triangular(0.0, 2.0, 4.0)
        h = a.intersection_hull(b)
        assert h is not None
        assert h.core[0] == pytest.approx(1.0)
        assert h.core[1] == pytest.approx(1.0)

    def test_union_hull_covers_both(self):
        a = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        b = FuzzyInterval(4.0, 5.0, 0.5, 0.5)
        u = a.union_hull(b)
        assert u.contains(a)
        assert u.contains(b)


class TestMisc:
    def test_hashable_and_equal(self):
        a = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        b = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_is_close(self):
        a = FuzzyInterval(1.0, 2.0, 0.1, 0.2)
        b = FuzzyInterval(1.0 + 1e-12, 2.0, 0.1, 0.2)
        assert a.is_close(b)
        assert not a.is_close(FuzzyInterval(1.1, 2.0, 0.1, 0.2))

    def test_repr_is_compact(self):
        assert repr(FuzzyInterval(1.0, 2.0, 0.1, 0.2)) == "[1,2,0.1,0.2]"

    def test_type_error_on_weird_operand(self):
        with pytest.raises(TypeError):
            FuzzyInterval.crisp(1.0) + "three"
