"""Tests for linguistic hedges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fuzzy import FuzzyInterval
from repro.fuzzy.hedges import about, concentrate, dilate, roughly, somewhat, very


@pytest.fixture()
def base():
    return FuzzyInterval(4.0, 6.0, 1.0, 2.0)


class TestConcentration:
    def test_very_is_contained(self, base):
        assert base.contains(very(base))

    def test_core_preserved(self, base):
        assert very(base).core == base.core

    def test_half_cut_matches_exact_transform(self, base):
        hedged = very(base)
        # Exact: mu^2 = 0.5 at mu = sqrt(0.5); on the left slope that is
        # at x = m1 - alpha*(1 - sqrt(0.5)).
        exact_x = base.m1 - base.alpha * (1.0 - 0.5**0.5)
        lo, _ = hedged.alpha_cut(0.5)
        assert lo == pytest.approx(exact_x)

    def test_power_must_exceed_one(self, base):
        with pytest.raises(ValueError):
            concentrate(base, 1.0)

    def test_stronger_power_narrower(self, base):
        assert concentrate(base, 3.0).width < concentrate(base, 2.0).width


class TestDilation:
    def test_somewhat_contains_original(self, base):
        assert somewhat(base).contains(base)

    def test_core_preserved(self, base):
        assert somewhat(base).core == base.core

    def test_power_must_exceed_one(self, base):
        with pytest.raises(ValueError):
            dilate(base, 0.5)

    def test_somewhat_very_roundtrip_contains(self, base):
        """Hedging there and back keeps the original inside."""
        assert somewhat(very(base)).contains(very(base))


class TestRoughly:
    def test_widens_core_and_slopes(self, base):
        hedged = roughly(base)
        assert hedged.m1 < base.m1
        assert hedged.m2 > base.m2
        assert hedged.contains(base)

    def test_negative_widen_rejected(self, base):
        with pytest.raises(ValueError):
            roughly(base, widen=-0.1)

    def test_point_value_becomes_interval(self):
        hedged = roughly(FuzzyInterval.crisp(5.0))
        assert hedged.width > 0.0


class TestAbout:
    def test_spread_scales_with_magnitude(self):
        assert about(100.0).alpha == pytest.approx(10.0)
        assert about(1.0).alpha == pytest.approx(0.1)

    def test_zero_gets_absolute_spread(self):
        assert about(0.0).width > 0.0

    def test_membership_peaks_at_value(self):
        assert about(6.0).membership(6.0) == 1.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            about(1.0, spread_fraction=0.0)


@st.composite
def trapezoids(draw):
    m1 = draw(st.floats(min_value=-20, max_value=20, allow_nan=False))
    m2 = draw(st.floats(min_value=m1, max_value=21, allow_nan=False))
    alpha = draw(st.floats(min_value=0.01, max_value=5, allow_nan=False))
    beta = draw(st.floats(min_value=0.01, max_value=5, allow_nan=False))
    return FuzzyInterval(m1, m2, alpha, beta)


class TestHedgeProperties:
    @given(trapezoids())
    def test_very_concentrates(self, value):
        assert value.contains(very(value))

    @given(trapezoids())
    def test_somewhat_dilates(self, value):
        assert somewhat(value).contains(value)

    @given(trapezoids(), st.floats(min_value=-25, max_value=25, allow_nan=False))
    def test_very_membership_never_higher(self, value, x):
        assert very(value).membership(x) <= value.membership(x) + 1e-9

    @given(trapezoids(), st.floats(min_value=-25, max_value=25, allow_nan=False))
    def test_somewhat_membership_never_lower(self, value, x):
        assert somewhat(value).membership(x) >= value.membership(x) - 1e-9
