"""Property-based tests (hypothesis) for the fuzzy-arithmetic invariants.

These pin down the algebra FLAMES relies on: commutativity/associativity
of the LR arithmetic, membership/cut coherence, Dc bounds and
monotonicity, and entropy bounds.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fuzzy import FuzzyInterval, consistency, possibility
from repro.fuzzy.entropy import entropy_term, fuzzy_entropy

_coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
_widths = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def fuzzy_intervals(draw, lo=-50.0, hi=50.0):
    m1 = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    m2 = draw(st.floats(min_value=m1, max_value=hi, allow_nan=False))
    alpha = draw(_widths)
    beta = draw(_widths)
    return FuzzyInterval(m1, m2, alpha, beta)


@st.composite
def positive_fuzzy_intervals(draw):
    m1 = draw(st.floats(min_value=0.5, max_value=50.0, allow_nan=False))
    m2 = draw(st.floats(min_value=m1, max_value=60.0, allow_nan=False))
    alpha = draw(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
    beta = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    return FuzzyInterval(m1, m2, alpha, beta)


@st.composite
def unit_fuzzy_numbers(draw):
    m = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    alpha = draw(st.floats(min_value=0.0, max_value=0.2, allow_nan=False))
    beta = draw(st.floats(min_value=0.0, max_value=0.2, allow_nan=False))
    return FuzzyInterval(m, m, alpha, beta)


class TestArithmeticAlgebra:
    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_addition_commutes(self, a, b):
        assert (a + b).is_close(b + a, tol=1e-6)

    @given(fuzzy_intervals(), fuzzy_intervals(), fuzzy_intervals())
    def test_addition_associates(self, a, b, c):
        assert ((a + b) + c).is_close(a + (b + c), tol=1e-6)

    @given(fuzzy_intervals())
    def test_additive_identity(self, a):
        assert (a + FuzzyInterval.crisp(0.0)).is_close(a)

    @given(fuzzy_intervals())
    def test_double_negation(self, a):
        assert (-(-a)).is_close(a)

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_subtraction_is_addition_of_negation(self, a, b):
        assert (a - b).is_close(a + (-b), tol=1e-6)

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_multiplication_commutes(self, a, b):
        assert (a * b).is_close(b * a, tol=1e-6)

    @given(fuzzy_intervals())
    def test_multiplicative_identity(self, a):
        assert (a * FuzzyInterval.crisp(1.0)).is_close(a, tol=1e-9)

    @given(positive_fuzzy_intervals(), positive_fuzzy_intervals())
    def test_division_inverts_multiplication_core(self, a, b):
        """Core of (a*b)/b contains the core of a (interval arithmetic widens)."""
        q = (a * b) / b
        assert q.m1 <= a.m1 + 1e-6
        assert q.m2 >= a.m2 - 1e-6

    @given(fuzzy_intervals(), st.floats(min_value=-5.0, max_value=5.0, allow_nan=False))
    def test_scale_matches_crisp_multiplication(self, a, k):
        assert a.scale(k).is_close(a * FuzzyInterval.crisp(k), tol=1e-6)

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_sum_support_is_minkowski(self, a, b):
        s = a + b
        assert math.isclose(s.support[0], a.support[0] + b.support[0], rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(s.support[1], a.support[1] + b.support[1], rel_tol=1e-9, abs_tol=1e-9)


class TestShapeInvariants:
    @given(fuzzy_intervals())
    def test_support_contains_core(self, a):
        assert a.support[0] <= a.core[0] <= a.core[1] <= a.support[1]

    @given(fuzzy_intervals(), st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_membership_in_unit_interval(self, a, x):
        assert 0.0 <= a.membership(x) <= 1.0

    @given(fuzzy_intervals(), st.floats(min_value=0.01, max_value=1.0))
    def test_alpha_cuts_nested(self, a, level):
        lo_hi = a.alpha_cut(level)
        full = a.alpha_cut(1.0)
        assert lo_hi[0] <= full[0] + 1e-9
        assert lo_hi[1] >= full[1] - 1e-9

    @given(fuzzy_intervals())
    def test_area_non_negative(self, a):
        assert a.area >= 0.0

    @given(fuzzy_intervals())
    def test_centroid_within_support(self, a):
        lo, hi = a.support
        assert lo - 1e-9 <= a.centroid <= hi + 1e-9

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_union_hull_contains_both(self, a, b):
        u = a.union_hull(b)
        assert u.contains(a)
        assert u.contains(b)


class TestConsistencyProperties:
    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_degree_in_unit_interval(self, vm, vn):
        c = consistency(vm, vn)
        assert 0.0 <= c.degree <= 1.0

    @given(fuzzy_intervals(lo=-5.0, hi=5.0))
    def test_included_measurement_fully_consistent(self, vn):
        # Shrink the nominal value to build a measurement it must contain.
        vm = FuzzyInterval.from_support_core(
            vn.support, (0.5 * (vn.m1 + vn.m2), 0.5 * (vn.m1 + vn.m2))
        )
        assert consistency(vm, vn).degree == 1.0

    @given(fuzzy_intervals())
    def test_self_consistency(self, v):
        assert consistency(v, v).degree == 1.0

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_disjoint_supports_zero_degree(self, vm, vn):
        assume(not vm.overlaps(vn))
        c = consistency(vm, vn)
        assert c.degree == 0.0
        assert c.direction != 0

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_intersection_area_symmetric(self, a, b):
        left = a.intersection_area(b)
        right = b.intersection_area(a)
        assert math.isclose(left, right, rel_tol=1e-6, abs_tol=1e-6)

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_intersection_area_bounded(self, a, b):
        inter = a.intersection_area(b)
        assert inter <= min(a.area, b.area) + 1e-6

    @given(fuzzy_intervals(), fuzzy_intervals())
    def test_possibility_bounds(self, a, b):
        assert 0.0 <= possibility(a, b) <= 1.0

    @given(fuzzy_intervals(), fuzzy_intervals())
    @settings(max_examples=50)
    def test_possibility_dominates_sampled_min(self, a, b):
        pi = possibility(a, b)
        lo = min(a.support[0], b.support[0])
        hi = max(a.support[1], b.support[1])
        if hi == lo:
            return
        for i in range(40):
            x = lo + (hi - lo) * i / 39.0
            assert min(a.membership(x), b.membership(x)) <= pi + 1e-6


class TestEntropyProperties:
    @given(st.lists(unit_fuzzy_numbers(), max_size=6))
    def test_entropy_support_non_negative(self, estimations):
        ent = fuzzy_entropy(estimations)
        assert ent.support[0] >= -1e-9

    @given(unit_fuzzy_numbers())
    def test_entropy_term_bounded_by_peak(self, fi):
        peak = -(1 / math.e) * math.log2(1 / math.e)
        term = entropy_term(fi)
        assert term.support[1] <= peak + 1e-9

    @given(st.lists(unit_fuzzy_numbers(), min_size=1, max_size=5))
    def test_entropy_grows_with_extra_uncertain_component(self, estimations):
        base = fuzzy_entropy(estimations)
        more = fuzzy_entropy(estimations + [FuzzyInterval.crisp(0.5)])
        assert more.centroid >= base.centroid - 1e-9
