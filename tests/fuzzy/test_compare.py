"""Tests for the degree of consistency Dc and possibility measures (section 6.1.2)."""

import pytest

from repro.fuzzy import FuzzyInterval, consistency, possibility, necessity, rank_key
from repro.fuzzy.compare import Consistency


class TestConsistencyDegree:
    def test_inclusion_gives_one(self):
        nominal = FuzzyInterval(0.0, 10.0, 1.0, 1.0)
        measured = FuzzyInterval(4.0, 6.0, 0.5, 0.5)
        c = consistency(measured, nominal)
        assert c.degree == 1.0
        assert c.is_corroboration
        assert c.direction == 0

    def test_disjoint_gives_zero(self):
        nominal = FuzzyInterval(0.0, 1.0, 0.0, 0.0)
        measured = FuzzyInterval(5.0, 6.0, 0.0, 0.0)
        c = consistency(measured, nominal)
        assert c.degree == 0.0
        assert c.is_total_conflict
        assert c.direction == 1

    def test_partial_overlap_strictly_between(self):
        nominal = FuzzyInterval(0.0, 2.0, 0.5, 0.5)
        measured = FuzzyInterval(1.5, 3.5, 0.5, 0.5)
        c = consistency(measured, nominal)
        assert 0.0 < c.degree < 1.0
        assert c.is_partial_conflict

    def test_paper_diode_example_degree_half(self):
        """Ir1 = 105 uA against the <=100 uA fuzzy set [-1,100,0,10] -> 0.5."""
        nominal = FuzzyInterval(-1.0, 100.0, 0.0, 10.0)
        measured = FuzzyInterval.crisp(105.0)
        c = consistency(measured, nominal)
        assert c.degree == pytest.approx(0.5)
        assert c.conflict_degree == pytest.approx(0.5)

    def test_paper_diode_example_total_conflict(self):
        """Ir2 = 200 uA is entirely outside the fuzzy current bound -> Dc 0."""
        nominal = FuzzyInterval(-1.0, 100.0, 0.0, 10.0)
        measured = FuzzyInterval.crisp(200.0)
        c = consistency(measured, nominal)
        assert c.degree == 0.0
        assert c.conflict_degree == 1.0
        assert c.direction == 1

    def test_point_measurement_uses_membership(self):
        nominal = FuzzyInterval(1.0, 2.0, 1.0, 1.0)
        c = consistency(FuzzyInterval.crisp(0.5), nominal)
        assert c.degree == pytest.approx(0.5)

    def test_point_nominal_uses_measured_membership(self):
        measured = FuzzyInterval(1.0, 2.0, 1.0, 1.0)
        c = consistency(measured, FuzzyInterval.crisp(2.5))
        assert c.degree == pytest.approx(0.5)

    def test_two_coincident_points_fully_consistent(self):
        c = consistency(FuzzyInterval.crisp(3.0), FuzzyInterval.crisp(3.0))
        assert c.degree == 1.0
        assert c.direction == 0

    def test_two_distinct_points_fully_inconsistent(self):
        c = consistency(FuzzyInterval.crisp(3.0), FuzzyInterval.crisp(4.0))
        assert c.degree == 0.0
        assert c.direction == -1

    def test_degree_monotone_in_deviation(self):
        """Sliding a measurement away from nominal never raises Dc."""
        nominal = FuzzyInterval(10.0, 10.0, 1.0, 1.0)
        degrees = [
            consistency(FuzzyInterval(10.0 + d, 10.0 + d, 0.3, 0.3), nominal).degree
            for d in (0.0, 0.4, 0.8, 1.2, 1.6)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(degrees, degrees[1:]))


class TestDirectionAndSign:
    def test_signed_matches_degree_when_overlapping(self):
        nominal = FuzzyInterval(0.0, 2.0, 0.5, 0.5)
        measured = FuzzyInterval(1.5, 3.5, 0.5, 0.5)
        c = consistency(measured, nominal)
        assert c.signed == c.degree

    def test_signed_is_minus_one_for_total_low_conflict(self):
        """Figure 7's 'Dc(V1m, V1n) = -1' for the open-node defect."""
        nominal = FuzzyInterval(5.0, 5.0, 0.5, 0.5)
        measured = FuzzyInterval.crisp(0.0)
        c = consistency(measured, nominal)
        assert c.signed == -1.0
        assert c.direction == -1

    def test_signed_is_plus_one_for_total_high_conflict(self):
        nominal = FuzzyInterval(5.0, 5.0, 0.5, 0.5)
        measured = FuzzyInterval.crisp(10.0)
        c = consistency(measured, nominal)
        assert c.signed == 1.0

    def test_direction_reported_for_partial_conflicts(self):
        nominal = FuzzyInterval(5.0, 5.0, 1.0, 1.0)
        low = consistency(FuzzyInterval(4.4, 4.4, 0.5, 0.5), nominal)
        high = consistency(FuzzyInterval(5.6, 5.6, 0.5, 0.5), nominal)
        assert low.direction == -1
        assert high.direction == 1

    def test_signed_zero_conflict_without_direction(self):
        c = Consistency(0.0, 0)
        assert c.signed == 0.0


class TestPossibilityNecessity:
    def test_possibility_one_when_cores_meet(self):
        a = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        b = FuzzyInterval(2.0, 3.0, 0.5, 0.5)
        assert possibility(a, b) == 1.0

    def test_possibility_zero_when_disjoint(self):
        a = FuzzyInterval(0.0, 1.0, 0.0, 0.0)
        b = FuzzyInterval(2.0, 3.0, 0.0, 0.0)
        assert possibility(a, b) == 0.0

    def test_possibility_at_slope_crossing(self):
        a = FuzzyInterval.triangular(-2.0, 0.0, 2.0)
        b = FuzzyInterval.triangular(0.0, 2.0, 4.0)
        assert possibility(a, b) == pytest.approx(0.5)

    def test_possibility_symmetric(self):
        a = FuzzyInterval(1.0, 2.0, 0.7, 0.9)
        b = FuzzyInterval(2.4, 3.0, 0.8, 0.1)
        assert possibility(a, b) == pytest.approx(possibility(b, a))

    def test_possibility_crisp_edges(self):
        a = FuzzyInterval.crisp_interval(0.0, 2.0)
        b = FuzzyInterval(3.0, 4.0, 1.5, 0.0)
        # b's rising slope at x=2 has membership (2-1.5)/1.5 = 1/3.
        assert possibility(a, b) == pytest.approx(1.0 / 3.0)

    def test_necessity_one_when_certainly_inside(self):
        a = FuzzyInterval(4.0, 6.0, 0.5, 0.5)
        b = FuzzyInterval.crisp_interval(0.0, 10.0)
        assert necessity(a, b) == pytest.approx(1.0)

    def test_necessity_zero_when_possibly_outside(self):
        a = FuzzyInterval.crisp_interval(0.0, 10.0)
        b = FuzzyInterval.crisp_interval(4.0, 6.0)
        assert necessity(a, b) == pytest.approx(0.0)

    def test_necessity_bounded_by_possibility(self):
        a = FuzzyInterval(1.0, 2.0, 0.5, 1.5)
        b = FuzzyInterval(1.5, 2.5, 0.5, 0.5)
        assert necessity(a, b) <= possibility(a, b) + 1e-9


class TestRanking:
    def test_rank_orders_by_centroid(self):
        small = FuzzyInterval(1.0, 1.0, 0.1, 0.1)
        large = FuzzyInterval(5.0, 5.0, 0.1, 0.1)
        assert rank_key(small) < rank_key(large)

    def test_rank_breaks_ties_on_width(self):
        narrow = FuzzyInterval(1.0, 1.0, 0.1, 0.1)
        wide = FuzzyInterval(1.0, 1.0, 0.5, 0.5)
        assert rank_key(narrow) < rank_key(wide)

    def test_sorting_fuzzy_values(self):
        values = [
            FuzzyInterval(3.0, 3.0, 0.1, 0.1),
            FuzzyInterval(1.0, 1.0, 0.1, 0.1),
            FuzzyInterval(2.0, 2.0, 0.1, 0.1),
        ]
        ordered = sorted(values, key=rank_key)
        assert [v.m1 for v in ordered] == [1.0, 2.0, 3.0]
