"""Tests for defuzzification helpers."""

import pytest

from repro.fuzzy import FuzzyInterval
from repro.fuzzy.membership import (
    breakpoints,
    defuzzify_bisector,
    defuzzify_centroid,
    defuzzify_mean_of_max,
    sample_membership,
)


class TestDefuzzification:
    def test_centroid_delegates(self):
        v = FuzzyInterval(1.0, 3.0, 1.0, 1.0)
        assert defuzzify_centroid(v) == pytest.approx(v.centroid)

    def test_mean_of_max(self):
        v = FuzzyInterval(1.0, 3.0, 0.5, 2.0)
        assert defuzzify_mean_of_max(v) == pytest.approx(2.0)

    def test_bisector_symmetric_equals_centre(self):
        v = FuzzyInterval(1.0, 3.0, 1.0, 1.0)
        assert defuzzify_bisector(v) == pytest.approx(2.0)

    def test_bisector_of_point(self):
        assert defuzzify_bisector(FuzzyInterval.crisp(4.0)) == 4.0

    def test_bisector_skewed(self):
        # Right triangle on [0, 2]: area 1, half-area at x where x - x^2/4 = 0.5
        v = FuzzyInterval(0.0, 0.0, 0.0, 2.0)
        x = defuzzify_bisector(v)
        area_left = x - x * x / 4.0
        assert area_left == pytest.approx(0.5 * v.area, abs=1e-6)

    def test_bisector_of_crisp_interval(self):
        v = FuzzyInterval.crisp_interval(2.0, 6.0)
        assert defuzzify_bisector(v) == pytest.approx(4.0)

    def test_all_defuzzifiers_agree_on_symmetric(self):
        v = FuzzyInterval(4.0, 6.0, 1.0, 1.0)
        assert defuzzify_centroid(v) == pytest.approx(5.0)
        assert defuzzify_mean_of_max(v) == pytest.approx(5.0)
        assert defuzzify_bisector(v) == pytest.approx(5.0)


class TestSampling:
    def test_sample_count_and_range(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        pts = sample_membership(v, n=11)
        assert len(pts) == 11
        assert pts[0][0] == pytest.approx(0.5)
        assert pts[-1][0] == pytest.approx(2.5)

    def test_sample_memberships_match_formula(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.5)
        for x, mu in sample_membership(v, n=21):
            assert mu == pytest.approx(v.membership(x))

    def test_sample_degenerate_support(self):
        pts = sample_membership(FuzzyInterval.crisp(3.0))
        assert pts == [(3.0, 1.0)]

    def test_sample_requires_two_points(self):
        with pytest.raises(ValueError):
            sample_membership(FuzzyInterval(1.0, 2.0), n=1)

    def test_breakpoints_sorted_unique(self):
        v = FuzzyInterval(1.0, 2.0, 0.5, 0.0)
        assert list(breakpoints(v)) == [0.5, 1.0, 2.0]
