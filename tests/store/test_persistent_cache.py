"""Tests for the two-tier persistent result cache and the engine's use
of it: write-through, restart warmth, corruption containment, tenant
namespacing."""

import pytest

from repro.service import FleetEngine
from repro.service.jobs import JobResult, job_from_spec
from repro.store import (
    DiagnosisStore,
    PersistentResultCache,
    namespaced_key,
)

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)

FAULTY_SPEC = {"unit": "u1", "netlist_text": NETLIST, "probes": {"mid": 7.5}}
HEALTHY_SPEC = {"unit": "u2", "netlist_text": NETLIST, "probes": {"mid": 6.0}}


def _result(unit="u", key="k"):
    return JobResult(unit=unit, content_hash=key, status="ok")


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


class TestNamespacedKey:
    def test_public_maps_to_bare_key(self):
        assert namespaced_key("abc") == "abc"
        assert namespaced_key("abc", None) == "abc"
        assert namespaced_key("abc", "public") == "abc"

    def test_tenant_prefixes(self):
        assert namespaced_key("abc", "acme") == "acme::abc"


class TestTwoTier:
    def test_miss_populates_both_tiers(self, store):
        cache = PersistentResultCache(store, capacity=4)
        cache.put("k", _result())
        assert store.cache_rows("public") == 1
        assert cache.get("k") is not None
        assert cache.hits_mem == 1
        assert cache.hits_disk == 0

    def test_disk_hit_after_memory_eviction(self, store):
        cache = PersistentResultCache(store, capacity=1)
        cache.put("a", _result(key="a"))
        cache.put("b", _result(key="b"))  # evicts a from memory, not disk
        assert cache.get("a") is not None
        assert cache.hits_disk == 1
        # The disk hit promoted the entry back into memory.
        assert cache.get("a") is not None
        assert cache.hits_mem == 1

    def test_restart_warm_is_byte_identical(self, tmp_path):
        path = tmp_path / "store.db"
        original = _result(unit="first", key="k")
        with DiagnosisStore(path) as db:
            PersistentResultCache(db, capacity=4).put("k", original)
        with DiagnosisStore(path) as db:
            cache = PersistentResultCache(db, capacity=4)
            restored = cache.get("k")
        assert restored is not None
        assert cache.hits_disk == 1
        assert restored.to_dict() == original.to_dict()

    def test_tampered_disk_row_counts_and_purges(self, store):
        cache = PersistentResultCache(store, capacity=1)
        cache.put("a", _result(key="a"))
        cache.put("b", _result(key="b"))  # a now lives only on disk
        assert cache.tamper_disk("a")
        assert cache.get("a") is None  # corrupt -> counted miss, no crash
        assert cache.corruptions == 1
        assert cache.misses == 1
        assert store.cache_rows("public") == 1  # the bad row is gone

    def test_disk_capacity_evicts_lru_rows(self, store):
        cache = PersistentResultCache(store, capacity=1, disk_capacity=2)
        cache.put("a", _result(key="a"))
        cache.put("b", _result(key="b"))
        cache.put("c", _result(key="c"))
        assert cache.disk_evictions == 1
        assert store.cache_rows("public") == 2
        assert cache.get("a") is None  # the LRU row was dropped

    def test_tenant_keys_do_not_collide(self, store):
        cache = PersistentResultCache(store, capacity=4)
        cache.put(namespaced_key("k", "acme"), _result(unit="acme-unit", key="k"))
        cache.put(namespaced_key("k", "globex"), _result(unit="globex-unit", key="k"))
        assert cache.get(namespaced_key("k", "acme")).unit == "acme-unit"
        assert cache.get(namespaced_key("k", "globex")).unit == "globex-unit"
        assert cache.get("k") is None

    def test_snapshot_reports_tiers(self, store):
        cache = PersistentResultCache(store, capacity=2, disk_capacity=8)
        cache.put("a", _result(key="a"))
        snap = cache.snapshot()
        assert snap["disk_capacity"] == 8
        assert snap["disk_rows"] == 1
        assert snap["hits_mem"] == 0
        assert snap["hits_disk"] == 0


class TestEngineWithStore:
    def _engine(self, store):
        return FleetEngine(workers=1, executor="serial", store=store)

    def test_restart_warm_engine_serves_from_disk(self, tmp_path):
        path = tmp_path / "store.db"
        job = job_from_spec(FAULTY_SPEC, index=0)
        with DiagnosisStore(path) as db:
            cold = self._engine(db).run_job(job)
        assert not cold.cache_hit
        with DiagnosisStore(path) as db:
            engine = self._engine(db)
            warm = engine.run_job(job_from_spec(FAULTY_SPEC, index=0))
        assert warm.cache_hit
        assert engine.cache.hits_disk == 1
        assert warm.diagnosis == cold.diagnosis

    def test_experience_restored_and_seed_tracked(self, tmp_path):
        path = tmp_path / "store.db"
        confirmed = dict(FAULTY_SPEC, confirm={"component": "Rbot", "mode": "open"})
        jobs = [job_from_spec(confirmed, index=0)]
        with DiagnosisStore(path) as db:
            engine = self._engine(db)
            report = engine.run_batch(jobs)
        assert report.rules_learned >= 1
        with DiagnosisStore(path) as db:
            engine = self._engine(db)
            assert engine.experience.rules, "experience did not survive restart"
            assert engine.experience_seed, "seed baseline missing after restore"
            occurrences = sum(engine.experience_seed.values())
            assert occurrences == sum(r.occurrences for r in engine.experience.rules)

    def test_tenant_runs_are_isolated(self, tmp_path):
        with DiagnosisStore(tmp_path / "store.db") as db:
            engine = self._engine(db)
            first = engine.run_job(job_from_spec(FAULTY_SPEC, index=0), tenant="acme")
            # Same content hash under another tenant must not see the
            # cached result or the learned experience.
            second = engine.run_job(
                job_from_spec(FAULTY_SPEC, index=0), tenant="globex"
            )
            assert not first.cache_hit
            assert not second.cache_hit
            third = engine.run_job(job_from_spec(FAULTY_SPEC, index=0), tenant="acme")
            assert third.cache_hit

    def test_history_recorded_per_tenant(self, tmp_path):
        with DiagnosisStore(tmp_path / "store.db") as db:
            engine = self._engine(db)
            engine.run_job(job_from_spec(FAULTY_SPEC, index=0), tenant="acme")
            engine.run_job(job_from_spec(HEALTHY_SPEC, index=0))
            assert db.history_count("acme") == 1
            assert db.history_count("public") == 1
            [row] = db.history_rows("acme")
            assert row["status"] == "ok"
            assert row["consistent"] is False
            assert row["top_culprit"]

    def test_without_store_nothing_is_persisted(self, tmp_path):
        engine = FleetEngine(workers=1, executor="serial")
        res = engine.run_job(job_from_spec(HEALTHY_SPEC, index=0))
        assert res.status == "ok"
        assert engine.store is None
        assert not isinstance(engine.cache, PersistentResultCache)
