"""Crash-recovery tests: SIGKILL mid-write must never cost committed
state.  The store runs WAL journaling with explicit transactions, so a
hard kill loses at most the uncommitted tail — the reopened database
replays the WAL and serves everything that was committed."""

import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.store import DiagnosisStore

_SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)

#: The victim: commits real writes through the store, then parks inside
#: an *uncommitted* transaction and waits to be killed.
_WRITER = textwrap.dedent(
    """
    import sqlite3, sys
    from repro.store import DiagnosisStore
    from tests.store.test_db import _seal

    path = sys.argv[1]
    store = DiagnosisStore(path)
    for i in range(20):
        blob, digest = _seal({"i": i})
        store.cache_put("public", f"k{i}", blob, digest)
    store.merge_experience("public", {
        "base_certainty": 0.6, "episode_count": 1,
        "rules": [{"signature": [["V(out)", "conflict", -1]],
                   "component": "R1", "mode": "open",
                   "certainty": 0.6, "occurrences": 1}],
    })
    # Now crash mid-write: open a transaction, insert, never commit.
    conn = sqlite3.connect(path)
    conn.isolation_level = None
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "INSERT OR REPLACE INTO cache_entries (namespace, key, blob, digest, seq)"
        " VALUES ('public', 'uncommitted', 'garbage', 'bad-digest', 999)"
    )
    print("INFLIGHT", flush=True)
    import time
    time.sleep(60)  # the parent SIGKILLs us here
    """
)


def _spawn_writer(path):
    env = dict(os.environ)
    root = os.path.dirname(_SRC_DIR)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC_DIR, root, env.get("PYTHONPATH", "")) if p
    )
    process = subprocess.Popen(
        [sys.executable, "-c", _WRITER, str(path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 30
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"writer died early ({process.returncode}): {lines + [process.stdout.read()]}"
            )
        line = process.stdout.readline()
        lines.append(line)
        if "INFLIGHT" in line:
            return process
    raise AssertionError(f"writer never reached INFLIGHT: {lines}")


class TestSigkillRecovery:
    def test_committed_writes_survive_a_hard_kill(self, tmp_path):
        path = tmp_path / "store.db"
        process = _spawn_writer(path)
        try:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()

        # Reopen: WAL replay must hand back every committed row, drop
        # the in-flight one, and raise nothing.
        with DiagnosisStore(path) as store:
            assert store.cache_rows("public") == 20
            for i in range(20):
                status, _blob = store.cache_get("public", f"k{i}")
                assert status == "hit", f"k{i} lost or corrupt after kill"
            assert store.cache_get("public", "uncommitted") == ("miss", None)
            data, version = store.load_experience("public")
            assert version == 1
            assert len(data["rules"]) == 1

    def test_reopen_is_writable_after_kill(self, tmp_path):
        path = tmp_path / "store.db"
        process = _spawn_writer(path)
        try:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
        with DiagnosisStore(path) as store:
            from tests.store.test_db import _seal

            blob, digest = _seal({"fresh": True})
            store.cache_put("public", "fresh", blob, digest)
            assert store.cache_get("public", "fresh")[0] == "hit"
            version = store.merge_experience(
                "public",
                {
                    "base_certainty": 0.6,
                    "episode_count": 1,
                    "rules": [
                        {
                            "signature": [["V(out)", "ok", 1]],
                            "component": "R2",
                            "mode": "short",
                            "certainty": 0.6,
                            "occurrences": 1,
                        }
                    ],
                },
            )
            assert version == 2
