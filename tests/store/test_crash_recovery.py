"""Crash-recovery tests: SIGKILL mid-write must never cost committed
state.  The store runs WAL journaling with explicit transactions, so a
hard kill loses at most the uncommitted tail — the reopened database
replays the WAL and serves everything that was committed."""

import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.store import DiagnosisStore

_SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)

#: The victim: commits real writes through the store, then parks inside
#: an *uncommitted* transaction and waits to be killed.
_WRITER = textwrap.dedent(
    """
    import sqlite3, sys
    from repro.store import DiagnosisStore
    from tests.store.test_db import _seal

    path = sys.argv[1]
    store = DiagnosisStore(path)
    for i in range(20):
        blob, digest = _seal({"i": i})
        store.cache_put("public", f"k{i}", blob, digest)
    store.merge_experience("public", {
        "base_certainty": 0.6, "episode_count": 1,
        "rules": [{"signature": [["V(out)", "conflict", -1]],
                   "component": "R1", "mode": "open",
                   "certainty": 0.6, "occurrences": 1}],
    })
    # Now crash mid-write: open a transaction, insert, never commit.
    conn = sqlite3.connect(path)
    conn.isolation_level = None
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "INSERT OR REPLACE INTO cache_entries (namespace, key, blob, digest, seq)"
        " VALUES ('public', 'uncommitted', 'garbage', 'bad-digest', 999)"
    )
    print("INFLIGHT", flush=True)
    import time
    time.sleep(60)  # the parent SIGKILLs us here
    """
)


#: Commits a known number of quota debits, then parks inside an
#: *uncommitted* debit-shaped transaction — the double-charge scenario.
_DEBITOR = textwrap.dedent(
    """
    import sqlite3, sys, time
    from repro.store import DiagnosisStore

    path = sys.argv[1]
    store = DiagnosisStore(path)
    # 5 committed debits against a 100-token bucket (refill negligible).
    for _ in range(5):
        allowed, _r, _t = store.quota_debit("acme", 100, 1e9, now=0.0)
        assert allowed
    # Now the crash window: a debit that never commits.
    conn = sqlite3.connect(path)
    conn.isolation_level = None
    conn.execute("BEGIN IMMEDIATE")
    conn.execute("UPDATE quota_buckets SET tokens = 0 WHERE tenant = 'acme'")
    print("INFLIGHT", flush=True)
    time.sleep(60)  # the parent SIGKILLs us here
    """
)

#: Commits durable rows, then loops checkpoint + retention forever —
#: the parent kills it mid-maintenance.
_MAINTAINER = textwrap.dedent(
    """
    import sys
    from repro.store import DiagnosisStore
    from tests.store.test_db import _seal

    path = sys.argv[1]
    store = DiagnosisStore(path)
    for i in range(20):
        blob, digest = _seal({"i": i})
        store.cache_put("public", f"k{i}", blob, digest)
        store.record_history("acme", f"u{i}", f"h{i}", "faulty", True,
                             "R1", 0.01, False)
    print("INFLIGHT", flush=True)
    while True:  # maintenance under fire: nothing here may eat a commit
        store.checkpoint()
        store.retain_history(max_age=3600.0, max_rows=0, batch=5)
        store.retain_cache(3600.0, batch=5)
    """
)


def _spawn_writer(path, script=_WRITER):
    env = dict(os.environ)
    root = os.path.dirname(_SRC_DIR)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC_DIR, root, env.get("PYTHONPATH", "")) if p
    )
    process = subprocess.Popen(
        [sys.executable, "-c", script, str(path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 30
    lines = []
    while time.time() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"writer died early ({process.returncode}): {lines + [process.stdout.read()]}"
            )
        line = process.stdout.readline()
        lines.append(line)
        if "INFLIGHT" in line:
            return process
    raise AssertionError(f"writer never reached INFLIGHT: {lines}")


def _kill(process):
    try:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()


class TestSigkillRecovery:
    def test_committed_writes_survive_a_hard_kill(self, tmp_path):
        path = tmp_path / "store.db"
        process = _spawn_writer(path)
        try:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()

        # Reopen: WAL replay must hand back every committed row, drop
        # the in-flight one, and raise nothing.
        with DiagnosisStore(path) as store:
            assert store.cache_rows("public") == 20
            for i in range(20):
                status, _blob = store.cache_get("public", f"k{i}")
                assert status == "hit", f"k{i} lost or corrupt after kill"
            assert store.cache_get("public", "uncommitted") == ("miss", None)
            data, version = store.load_experience("public")
            assert version == 1
            assert len(data["rules"]) == 1

    def test_reopen_is_writable_after_kill(self, tmp_path):
        path = tmp_path / "store.db"
        process = _spawn_writer(path)
        try:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
        with DiagnosisStore(path) as store:
            from tests.store.test_db import _seal

            blob, digest = _seal({"fresh": True})
            store.cache_put("public", "fresh", blob, digest)
            assert store.cache_get("public", "fresh")[0] == "hit"
            version = store.merge_experience(
                "public",
                {
                    "base_certainty": 0.6,
                    "episode_count": 1,
                    "rules": [
                        {
                            "signature": [["V(out)", "ok", 1]],
                            "component": "R2",
                            "mode": "short",
                            "certainty": 0.6,
                            "occurrences": 1,
                        }
                    ],
                },
            )
            assert version == 2


class TestSigkillQuota:
    def test_kill_mid_debit_never_double_charges(self, tmp_path):
        """The refill+debit transaction either committed or it didn't:
        after a SIGKILL inside an uncommitted debit, the bucket holds
        exactly what the committed debits left behind."""
        path = tmp_path / "store.db"
        process = _spawn_writer(path, script=_DEBITOR)
        _kill(process)
        with DiagnosisStore(path) as store:
            assert store.integrity_check() == "ok"
            # 100 capacity - 5 committed debits; the in-flight zeroing
            # of the bucket must have been rolled back by WAL replay.
            assert store.quota_levels() == {"acme": 95.0}
            # And the bucket still debits normally.
            allowed, _r, remaining = store.quota_debit("acme", 100, 1e9, now=0.0)
            assert allowed and remaining == 94.0


class TestSigkillMaintenance:
    def test_kill_mid_maintenance_loses_nothing(self, tmp_path):
        """SIGKILL while checkpoint/retention churn: every committed row
        survives and the reopened file passes integrity_check."""
        path = tmp_path / "store.db"
        process = _spawn_writer(path, script=_MAINTAINER)
        time.sleep(0.2)  # let a few maintenance iterations land
        _kill(process)
        with DiagnosisStore(path) as store:
            assert store.integrity_check() == "ok"
            assert store.scrub()["purged"] == 0
            assert store.cache_rows("public") == 20
            for i in range(20):
                assert store.cache_get("public", f"k{i}")[0] == "hit"
            assert store.history_count("acme") == 20
            # The store stays maintainable after the crash, too.
            busy, _log, _done = store.checkpoint()
            assert busy == 0
