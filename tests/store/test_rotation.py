"""Key rotation, revocation and the v1 -> v2 schema migration.

A tenant's API keys live in ``tenant_keys`` — several digests can be
active at once during a rotation overlap, revocation is terminal, and a
store created before the table existed gets its legacy digest migrated
in on first open.
"""

import sqlite3
import time

import pytest

from repro.store import DiagnosisStore, StoreError
from repro.store.tenants import TenantRegistry


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


class TestRotation:
    def test_rotate_kills_the_old_key_immediately(self, store):
        old = store.provision_tenant("acme")
        assert store.resolve_api_key(old) is not None
        new = store.rotate_key("acme")
        assert new != old
        assert store.resolve_api_key(old) is None
        record = store.resolve_api_key(new)
        assert record is not None and record.tenant_id == "acme"

    def test_overlap_gives_the_old_key_a_grace_window(self, store):
        t = time.time()
        old = store.provision_tenant("acme")
        new = store.rotate_key("acme", overlap=30.0, now=t)
        # Inside the window both keys resolve; past it only the new one.
        assert store.resolve_api_key(old, now=t + 10.0) is not None
        assert store.resolve_api_key(new, now=t + 10.0) is not None
        assert store.resolve_api_key(old, now=t + 31.0) is None
        assert store.resolve_api_key(new, now=t + 31.0) is not None

    def test_rotate_unknown_tenant_raises(self, store):
        with pytest.raises(ValueError):
            store.rotate_key("nope")

    def test_negative_overlap_rejected(self, store):
        store.provision_tenant("acme")
        with pytest.raises(ValueError):
            store.rotate_key("acme", overlap=-1.0)

    def test_list_keys_shows_metadata_never_keys(self, store):
        t = time.time()
        old = store.provision_tenant("acme")
        new = store.rotate_key("acme", overlap=60.0, now=t)
        keys = store.list_keys("acme")
        assert len(keys) == 2
        not_afters = sorted(entry["not_after"] for entry in keys)
        assert not_afters[0] == 0.0  # the fresh key: no expiry
        assert not_afters[1] == pytest.approx(t + 60.0)  # the retiring one
        for entry in keys:
            assert old not in str(entry) and new not in str(entry)
            assert len(entry["digest_prefix"]) == 12


class TestRevocation:
    def test_revoke_rejects_every_key(self, store):
        old = store.provision_tenant("acme")
        new = store.rotate_key("acme", overlap=3600.0)
        assert store.revoke_keys("acme") == 2
        assert store.resolve_api_key(old) is None
        assert store.resolve_api_key(new) is None

    def test_revoke_is_idempotent(self, store):
        store.provision_tenant("acme")
        assert store.revoke_keys("acme") == 1
        assert store.revoke_keys("acme") == 0

    def test_rotation_unwedges_a_revoked_tenant(self, store):
        store.provision_tenant("acme")
        store.revoke_keys("acme")
        fresh = store.rotate_key("acme")
        assert store.resolve_api_key(fresh) is not None

    def test_registry_ttl_is_the_revocation_latency(self, store):
        """A cached record keeps working until the TTL lapses — after
        that, the registry re-reads the store and sees the revocation."""
        key = store.provision_tenant("acme")
        clock = [0.0]
        registry = TenantRegistry(store, ttl=5.0, clock=lambda: clock[0])
        assert registry.resolve(key) is not None
        store.revoke_keys("acme")
        assert registry.resolve(key) is not None  # inside the TTL: cached
        clock[0] += 6.0
        assert registry.resolve(key) is None      # TTL lapsed: revoked


def _build_v1_store(path):
    """A store file exactly as the schema-v1 code laid it out."""
    conn = sqlite3.connect(str(path))
    conn.executescript(
        """
        CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE cache_entries (
            namespace TEXT NOT NULL, key TEXT NOT NULL, blob TEXT NOT NULL,
            digest TEXT NOT NULL, seq INTEGER NOT NULL,
            PRIMARY KEY (namespace, key));
        CREATE INDEX cache_entries_seq ON cache_entries (seq);
        CREATE TABLE experience_meta (
            tenant TEXT PRIMARY KEY, version INTEGER NOT NULL,
            episode_count INTEGER NOT NULL, base_certainty REAL NOT NULL);
        CREATE TABLE experience_rules (
            tenant TEXT NOT NULL, rule_key TEXT NOT NULL,
            signature TEXT NOT NULL, component TEXT NOT NULL,
            mode TEXT NOT NULL, certainty REAL NOT NULL,
            occurrences INTEGER NOT NULL, version INTEGER NOT NULL,
            PRIMARY KEY (tenant, rule_key));
        CREATE TABLE tenants (
            tenant_id TEXT PRIMARY KEY, name TEXT NOT NULL,
            key_digest TEXT NOT NULL UNIQUE, quota_limit INTEGER NOT NULL,
            quota_interval REAL NOT NULL, created_at REAL NOT NULL);
        CREATE TABLE history (
            id INTEGER PRIMARY KEY AUTOINCREMENT, tenant TEXT NOT NULL,
            unit TEXT NOT NULL, content_hash TEXT NOT NULL,
            status TEXT NOT NULL, consistent INTEGER NOT NULL,
            top_culprit TEXT NOT NULL, elapsed REAL NOT NULL,
            cache_hit INTEGER NOT NULL, created_at REAL NOT NULL);
        CREATE INDEX history_tenant ON history (tenant);
        INSERT INTO meta (key, value) VALUES ('schema_version', '1');
        """
    )
    import hashlib

    digest = hashlib.sha256(b"rk_legacy").hexdigest()
    conn.execute(
        "INSERT INTO tenants VALUES ('acme', 'Acme', ?, 5, 60.0, 123.0)",
        (digest,),
    )
    blob = '{"unit":"u1"}'
    conn.execute(
        "INSERT INTO cache_entries VALUES ('public', 'k1', ?, ?, 1)",
        (blob, hashlib.sha256(blob.encode()).hexdigest()),
    )
    conn.commit()
    conn.close()


class TestMigration:
    def test_v1_store_migrates_on_open(self, tmp_path):
        path = tmp_path / "legacy.db"
        _build_v1_store(path)
        with DiagnosisStore(path) as store:
            # The legacy digest moved into tenant_keys and still works.
            record = store.resolve_api_key("rk_legacy")
            assert record is not None
            assert record.tenant_id == "acme"
            assert record.quota_limit == 5
            # Pre-existing cache rows got stamped "now", not mass-expired.
            status, _blob = store.cache_get("public", "k1")
            assert status == "hit"
            assert store.retain_cache(3600.0) == 0
            keys = store.list_keys("acme")
            assert len(keys) == 1 and not keys[0]["revoked"]

    def test_migration_is_one_way_and_sticky(self, tmp_path):
        path = tmp_path / "legacy.db"
        _build_v1_store(path)
        DiagnosisStore(path).close()
        conn = sqlite3.connect(str(path))
        version = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        conn.close()
        assert version == "2"
        # Reopening a migrated store is a no-op, not a re-migration.
        with DiagnosisStore(path) as store:
            assert len(store.list_keys("acme")) == 1

    def test_future_schema_versions_are_refused(self, tmp_path):
        path = tmp_path / "future.db"
        DiagnosisStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError):
            DiagnosisStore(path)
