"""Tests for quota tracking, the API-key registry cache and the
tenant fleet-health report."""

import pytest

from repro.store import (
    DiagnosisStore,
    QuotaTracker,
    TenantRecord,
    TenantRegistry,
    build_report,
)


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


class _Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def _tenant(tenant_id="acme", limit=3, interval=60.0):
    return TenantRecord(tenant_id, tenant_id, limit, interval, created_at=0.0)


class TestQuotaTracker:
    def test_fixed_window_rejects_over_limit(self):
        clock = _Clock()
        quotas = QuotaTracker(clock=clock)
        acme = _tenant(limit=3)
        for _ in range(3):
            assert quotas.check(acme)
        decision = quotas.check(acme)
        assert not decision
        assert 0 < decision.retry_after <= 60.0

    def test_window_rolls_over(self):
        clock = _Clock()
        quotas = QuotaTracker(clock=clock)
        acme = _tenant(limit=1)
        assert quotas.check(acme)
        assert not quotas.check(acme)
        clock.now += 61.0
        assert quotas.check(acme)

    def test_zero_limit_is_unlimited(self):
        quotas = QuotaTracker()
        acme = _tenant(limit=0)
        for _ in range(100):
            decision = quotas.check(acme)
            assert decision
            assert decision.remaining == -1

    def test_tenants_tracked_independently(self):
        clock = _Clock()
        quotas = QuotaTracker(clock=clock)
        assert quotas.check(_tenant("acme", limit=1))
        assert not quotas.check(_tenant("acme", limit=1))
        assert quotas.check(_tenant("globex", limit=1))

    def test_snapshot_counts_rejections(self):
        quotas = QuotaTracker(clock=_Clock())
        acme = _tenant(limit=1)
        quotas.check(acme)
        quotas.check(acme)
        snap = quotas.snapshot()
        assert snap["rejections"] == 1


class TestTenantRegistry:
    def test_resolves_and_caches(self, store):
        key = store.provision_tenant("acme")
        clock = _Clock()
        registry = TenantRegistry(store, ttl=5.0, clock=clock)
        assert registry.resolve(key).tenant_id == "acme"
        assert registry.resolve("rk_junk") is None
        # Within the TTL a re-resolve never hits sqlite again: closing
        # the store under the registry proves the answer came from cache.
        store.close()
        assert registry.resolve(key).tenant_id == "acme"
        assert registry.resolve("rk_junk") is None

    def test_ttl_expiry_rereads(self, store):
        key = store.provision_tenant("acme")
        clock = _Clock()
        registry = TenantRegistry(store, ttl=5.0, clock=clock)
        assert registry.resolve(key) is not None
        clock.now += 6.0
        assert registry.resolve(key) is not None  # re-read, still there

    def test_invalidate_clears(self, store):
        key = store.provision_tenant("acme")
        registry = TenantRegistry(store, ttl=600.0)
        assert registry.resolve(key) is not None
        registry.invalidate()
        store.close()
        with pytest.raises(Exception):
            registry.resolve(key)


class TestBuildReport:
    def test_unknown_tenant_is_none(self, store):
        assert build_report(store, "nobody") is None

    def test_report_reflects_history(self, store):
        store.provision_tenant("acme", quota_limit=10, quota_interval=30.0)
        store.record_history("acme", "u1", "h1", "ok", False, "R1", 0.2, False)
        store.record_history("acme", "u2", "h2", "ok", False, "R1", 0.3, False)
        store.record_history("acme", "u3", "h3", "ok", True, "", 0.1, False)
        store.record_history("acme", "u4", "h4", "error", False, "", 0.0, False)
        store.record_history("acme", "u1", "h1", "ok", False, "R1", 0.0, True)
        report = build_report(store, "acme")
        assert report["tenant"] == "acme"
        assert report["quota"] == {"limit": 10, "interval": 30.0}
        history = report["history"]
        assert history["total"] == 5
        assert history["faulty"] == 3
        assert history["consistent"] == 1
        assert history["error_rate"] == pytest.approx(0.2)
        assert history["cache_hit_rate"] == pytest.approx(0.2)
        assert report["top_culprits"][0] == {"component": "R1", "count": 3}
        assert report["latency_ms"]["executed"] == 4
        assert report["latency_ms"]["p50"] > 0

    def test_limit_narrows_the_window(self, store):
        store.provision_tenant("acme")
        for i in range(4):
            store.record_history("acme", f"u{i}", f"h{i}", "ok", True, "", 0.0, False)
        store.record_history("acme", "u-err", "h", "error", False, "", 0.0, False)
        report = build_report(store, "acme", limit=1)
        assert report["history"]["window"] == 1
        assert report["history"]["error_rate"] == 1.0

    def test_report_includes_experience_version(self, store):
        store.provision_tenant("acme")
        store.merge_experience(
            "acme",
            {
                "base_certainty": 0.6,
                "episode_count": 1,
                "rules": [
                    {
                        "signature": [["V(out)", "conflict", -1]],
                        "component": "R1",
                        "mode": "open",
                        "certainty": 0.6,
                        "occurrences": 1,
                    }
                ],
            },
        )
        report = build_report(store, "acme")
        assert report["experience"] == {"version": 1, "rules": 1, "episodes": 1}
