"""Store lifecycle tests: checkpointing, retention, backup, scrub, and
the maintenance loop that drives them.

Everything here runs against the real sqlite file — a checkpoint must
actually shrink the WAL, a backup must actually serve byte-identical
cache rows, a scrub must actually catch a flipped bit.
"""

import hashlib
import json
import sqlite3
import threading
import time

import pytest

from repro.store import (
    DiagnosisStore,
    LifecycleConfig,
    RetentionPolicy,
    StoreMaintenance,
)
from tests.store.test_db import _seal


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


def _fill_history(store, n, tenant="acme"):
    for i in range(n):
        store.record_history(tenant, f"u{i}", f"h{i}", "faulty", True, "R1", 0.01, False)


class TestCheckpoint:
    def test_truncate_checkpoint_empties_the_wal(self, store):
        for i in range(50):
            blob, digest = _seal({"i": i})
            store.cache_put("public", f"k{i}", blob, digest)
        assert store.wal_size() > 0
        busy, log, done = store.checkpoint()
        assert busy == 0
        assert done == log
        assert store.wal_size() == 0

    def test_checkpoint_is_harmless_when_idle(self, store):
        busy, _log, _done = store.checkpoint()
        assert busy == 0
        assert store.integrity_check() == "ok"


class TestRetention:
    def test_age_window_deletes_only_expired_rows(self, store):
        _fill_history(store, 10)
        cutoff = time.time() + 100  # everything is "older than 50s" from here
        assert store.retain_history(max_age=50.0, now=cutoff) == 10
        assert store.history_count("acme") == 0

    def test_age_window_spares_fresh_rows(self, store):
        _fill_history(store, 5)
        assert store.retain_history(max_age=3600.0) == 0
        assert store.history_count("acme") == 5

    def test_row_window_keeps_the_newest(self, store):
        _fill_history(store, 10)
        deleted = store.retain_history(max_rows=4)
        assert deleted == 6
        rows = store.history_rows("acme")
        assert [r["unit"] for r in rows] == ["u6", "u7", "u8", "u9"]

    def test_deletes_are_batch_bounded(self, store):
        _fill_history(store, 12)
        cutoff = time.time() + 100
        got = [store.retain_history(max_age=1.0, batch=5, now=cutoff) for _ in range(4)]
        assert got == [5, 5, 2, 0]

    def test_zero_windows_delete_nothing(self, store):
        _fill_history(store, 3)
        assert store.retain_history(max_age=0.0, max_rows=0) == 0
        assert store.history_count("acme") == 3

    def test_cache_age_window(self, store):
        blob, digest = _seal({"v": 1})
        store.cache_put("public", "old", blob, digest)
        assert store.retain_cache(3600.0) == 0  # fresh row survives
        assert store.retain_cache(10.0, now=time.time() + 100) == 1
        assert store.cache_get("public", "old") == ("miss", None)


class TestBackup:
    def test_backup_refuses_the_live_path(self, store):
        with pytest.raises(ValueError):
            store.backup(store.path)

    def test_backup_serves_byte_identical_cache_rows(self, store, tmp_path):
        blob, digest = _seal({"unit": "u1", "rank": [1, 2, 3]})
        store.cache_put("public", "k1", blob, digest)
        result = store.backup(tmp_path / "bk.db")
        assert result["bytes"] > 0
        with DiagnosisStore(tmp_path / "bk.db") as restored:
            status, got = restored.cache_get("public", "k1")
            assert status == "hit"
            assert got == blob
            assert restored.integrity_check() == "ok"

    def test_backup_under_live_writes_is_consistent(self, store, tmp_path):
        """A writer hammering the store while backup runs: the snapshot
        still opens clean and every row it holds verifies its seal."""
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                blob, digest = _seal({"i": i})
                store.cache_put("public", f"w{i}", blob, digest)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            store.backup(tmp_path / "bk.db", pages=16)
        finally:
            stop.set()
            thread.join()
        with DiagnosisStore(tmp_path / "bk.db") as restored:
            assert restored.integrity_check() == "ok"
            scrub = restored.scrub()
            assert scrub["purged"] == 0


class TestScrub:
    def test_clean_store_scrubs_clean(self, store):
        blob, digest = _seal({"v": 1})
        store.cache_put("public", "k", blob, digest)
        assert store.scrub() == {"checked": 1, "purged": 0, "integrity": "ok"}

    def test_scrub_purges_a_tampered_row(self, store):
        for i in range(3):
            blob, digest = _seal({"i": i})
            store.cache_put("public", f"k{i}", blob, digest)
        # Flip bits behind the store's back: classic silent corruption.
        raw = sqlite3.connect(store.path)
        raw.execute(
            "UPDATE cache_entries SET blob = ? WHERE key = 'k1'",
            (json.dumps({"i": "poisoned"}),),
        )
        raw.commit()
        raw.close()
        result = store.scrub()
        assert result["checked"] == 3
        assert result["purged"] == 1
        assert result["integrity"] == "ok"
        assert store.cache_get("public", "k1") == ("miss", None)
        assert store.cache_get("public", "k0")[0] == "hit"
        assert store.cache_get("public", "k2")[0] == "hit"

    def test_seal_helper_matches_store_seal(self):
        blob, digest = _seal({"x": 1})
        assert hashlib.sha256(blob.encode()).hexdigest() == digest


class TestStoreMaintenance:
    def _config(self, **kw):
        kw.setdefault("checkpoint_interval", 60.0)
        kw.setdefault("retention", RetentionPolicy(history_max_age=0.0,
                                                   history_max_rows=0))
        return LifecycleConfig(**kw)

    def test_tick_checkpoints_and_retains(self, store):
        _fill_history(store, 8)
        config = LifecycleConfig(
            retention=RetentionPolicy(history_max_age=1.0, history_max_rows=0,
                                      batch=3),
        )
        maint = StoreMaintenance(store, config)
        result = maint.tick(now=time.time() + 100)
        assert result["checkpoint"]["busy"] == 0
        # 3-row batches, at most max_batches_per_tick=4 per tick: all 8 go.
        assert result["history_deleted"] == 8
        assert store.history_count("acme") == 0

    def test_batches_per_tick_bound_the_work(self, store):
        _fill_history(store, 10)
        config = LifecycleConfig(
            max_batches_per_tick=2,
            retention=RetentionPolicy(history_max_age=1.0, history_max_rows=0,
                                      batch=3),
        )
        maint = StoreMaintenance(store, config)
        result = maint.tick(now=time.time() + 100)
        assert result["history_deleted"] == 6  # two batches, not all ten
        assert store.history_count("acme") == 4

    def test_busy_checkpoint_backs_off_and_recovers(self, store, monkeypatch):
        maint = StoreMaintenance(store, self._config(), seed=7)
        monkeypatch.setattr(store, "checkpoint", lambda truncate=True: (1, 10, 4))
        maint.tick()
        assert maint.snapshot()["backoff"] == 2.0
        maint.tick()
        maint.tick()
        maint.tick()
        assert maint.snapshot()["backoff"] == 8.0  # capped at max_backoff
        assert maint.snapshot()["checkpoint_lag_frames"] == 6
        monkeypatch.setattr(store, "checkpoint", lambda truncate=True: (0, 10, 10))
        maint.tick()
        assert maint.snapshot()["backoff"] == 1.0

    def test_jittered_interval_stays_in_band(self, store):
        maint = StoreMaintenance(store, self._config(checkpoint_interval=100.0),
                                 seed=42)
        for _ in range(50):
            assert 80.0 <= maint._interval() <= 120.0

    def test_tick_swallows_database_errors(self, store, monkeypatch):
        maint = StoreMaintenance(store, self._config())

        def boom(*a, **kw):
            raise sqlite3.OperationalError("disk on fire")

        monkeypatch.setattr(store, "checkpoint", boom)
        result = maint.tick()  # must not raise
        assert "checkpoint" not in result
        assert maint.snapshot()["errors"] == 1

    def test_maybe_tick_is_interval_gated(self, store):
        clock = [0.0]
        maint = StoreMaintenance(
            store, self._config(checkpoint_interval=10.0), clock=lambda: clock[0]
        )
        assert maint.maybe_tick() is not None  # first call always ticks
        assert maint.maybe_tick() is None      # gated: no time elapsed
        clock[0] += 11.0
        assert maint.maybe_tick() is not None
        assert maint.snapshot()["ticks"] == 2

    def test_disabled_interval_never_ticks(self, store):
        maint = StoreMaintenance(store, self._config(checkpoint_interval=0.0))
        assert maint.maybe_tick() is None
        maint.start()
        assert not maint.running

    def test_start_stop_lifecycle(self, store):
        maint = StoreMaintenance(store, self._config(checkpoint_interval=0.01,
                                                     jitter=0.0))
        maint.start()
        assert maint.running
        deadline = time.time() + 5.0
        while maint.snapshot()["ticks"] < 2 and time.time() < deadline:
            time.sleep(0.01)
        maint.stop()
        assert not maint.running
        snap = maint.snapshot()
        assert snap["ticks"] >= 2
        assert snap["checkpoints"] >= 1

    def test_stop_runs_a_final_tick(self, store):
        maint = StoreMaintenance(store, self._config())
        for i in range(10):
            blob, digest = _seal({"i": i})
            store.cache_put("public", f"k{i}", blob, digest)
        assert store.wal_size() > 0
        maint.stop(final_tick=True)
        assert store.wal_size() == 0

    def test_run_backup_and_scrub_feed_the_snapshot(self, store, tmp_path):
        maint = StoreMaintenance(store, self._config())
        maint.run_backup(tmp_path / "bk.db")
        maint.run_scrub()
        snap = maint.snapshot()
        assert snap["backups"] == 1
        assert snap["last_scrub"] == {"checked": 0, "purged": 0, "integrity": "ok"}
