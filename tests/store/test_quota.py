"""Token-bucket quota tests: atomic debits, shared budgets, refill math.

The bucket lives in the store file (``quota_buckets``), refilled and
debited inside one ``BEGIN IMMEDIATE`` transaction — so two threads, or
two separate connections (two cluster replicas), can hammer the same
tenant and never jointly admit more than the budget allows.
"""

import sqlite3
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import DiagnosisStore, TenantRecord, TokenBucketQuota


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


class TestQuotaDebit:
    def test_bucket_admits_capacity_then_rejects(self, store):
        t = 1000.0
        for _ in range(3):
            allowed, retry, _rem = store.quota_debit("acme", 3, 60.0, now=t)
            assert allowed and retry == 0.0
        allowed, retry, _rem = store.quota_debit("acme", 3, 60.0, now=t)
        assert not allowed
        # Refill rate is 3/60 = 0.05 tok/s: one full token is 20s away.
        assert retry == pytest.approx(20.0)

    def test_retry_after_is_float_seconds_from_rate(self, store):
        t = 0.0
        store.quota_debit("acme", 2, 60.0, now=t)
        store.quota_debit("acme", 2, 60.0, now=t)
        allowed, retry, _rem = store.quota_debit("acme", 2, 60.0, now=t)
        assert not allowed
        assert retry == pytest.approx(30.0)
        # Partial refill shrinks the wait proportionally.
        allowed, retry, _rem = store.quota_debit("acme", 2, 60.0, now=t + 15.0)
        assert not allowed
        assert retry == pytest.approx(15.0)

    def test_refill_restores_tokens_up_to_capacity(self, store):
        t = 0.0
        for _ in range(2):
            store.quota_debit("acme", 2, 10.0, now=t)
        assert not store.quota_debit("acme", 2, 10.0, now=t)[0]
        # One token accrues every interval/capacity = 5 seconds.
        assert store.quota_debit("acme", 2, 10.0, now=t + 5.0)[0]
        # A long idle period refills to capacity, never beyond it.
        assert store.quota_debit("acme", 2, 10.0, now=t + 1000.0)[0]
        assert store.quota_debit("acme", 2, 10.0, now=t + 1000.0)[0]
        assert not store.quota_debit("acme", 2, 10.0, now=t + 1000.0)[0]

    def test_zero_capacity_means_unlimited(self, store):
        assert store.quota_debit("acme", 0, 60.0) == (True, 0.0, -1.0)
        assert store.quota_debit("acme", 3, 0.0) == (True, 0.0, -1.0)

    def test_clock_rewind_never_mints_tokens(self, store):
        store.quota_debit("acme", 1, 60.0, now=100.0)
        allowed, _retry, _rem = store.quota_debit("acme", 1, 60.0, now=50.0)
        assert not allowed

    def test_levels_expose_bucket_state(self, store):
        store.quota_debit("acme", 5, 60.0, now=0.0)
        levels = store.quota_levels()
        assert levels == {"acme": pytest.approx(4.0)}


class TestSharedBudget:
    def test_two_threads_never_over_admit(self, store):
        """100 concurrent attempts against a 50-token bucket: exactly 50 in."""
        admitted = []
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            for _ in range(50):
                allowed, _r, _t = store.quota_debit("acme", 50, 1e9, now=0.0)
                if allowed:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(admitted) == 50

    def test_two_connections_share_one_budget(self, store, tmp_path):
        """A second connection (another replica) sees the same bucket."""
        with DiagnosisStore(tmp_path / "store.db") as other:
            assert store.quota_debit("acme", 2, 60.0, now=0.0)[0]
            assert other.quota_debit("acme", 2, 60.0, now=0.0)[0]
            allowed, retry, _rem = other.quota_debit("acme", 2, 60.0, now=0.0)
            assert not allowed and retry > 0

    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=30.0),  # time advance
                st.integers(min_value=1, max_value=5),     # debit attempts
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_admissions_never_exceed_refill_budget(self, steps):
        """Property: over any schedule, admits <= capacity + elapsed*rate."""
        capacity, interval = 4.0, 40.0
        rate = capacity / interval
        with tempfile.TemporaryDirectory() as tmp:
            with DiagnosisStore(Path(tmp) / "prop.db") as db:
                now, admitted = 0.0, 0
                for advance, attempts in steps:
                    now += advance
                    for _ in range(attempts):
                        if db.quota_debit("acme", capacity, interval, now=now)[0]:
                            admitted += 1
                    assert admitted <= capacity + now * rate + 1e-6


class TestTokenBucketQuota:
    def _tenant(self, limit=2, interval=60.0):
        return TenantRecord("acme", "Acme", limit, interval, 0.0)

    def test_check_maps_bucket_to_decision(self, store):
        clock = [1000.0]
        quota = TokenBucketQuota(store, clock=lambda: clock[0])
        assert quota.check(self._tenant())
        assert quota.check(self._tenant())
        decision = quota.check(self._tenant())
        assert not decision
        assert decision.retry_after == pytest.approx(30.0)
        assert quota.rejections == 1

    def test_zero_limit_is_unlimited(self, store):
        quota = TokenBucketQuota(store)
        for _ in range(10):
            assert quota.check(self._tenant(limit=0))
        assert store.quota_levels() == {}

    def test_sqlite_error_fails_open(self, store, monkeypatch):
        quota = TokenBucketQuota(store)

        def boom(*a, **kw):
            raise sqlite3.OperationalError("disk glitch")

        monkeypatch.setattr(store, "quota_debit", boom)
        assert quota.check(self._tenant(limit=1))
        assert quota.errors == 1

    def test_snapshot_shape(self, store):
        quota = TokenBucketQuota(store, clock=lambda: 0.0)
        quota.check(self._tenant())
        snap = quota.snapshot()
        assert snap["kind"] == "token-bucket"
        assert snap["tenants_tracked"] == 1
        assert snap["buckets"]["acme"] == pytest.approx(1.0)
