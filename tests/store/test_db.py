"""Tests for the sqlite persistence plane: sealed cache rows, versioned
experience, tenant provisioning and diagnosis history."""

import hashlib
import json

import pytest

from repro.core.learning import ExperienceBase, rule_identity
from repro.store import PUBLIC_TENANT, DiagnosisStore


def _seal(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return blob, hashlib.sha256(blob.encode()).hexdigest()


@pytest.fixture
def store(tmp_path):
    with DiagnosisStore(tmp_path / "store.db") as db:
        yield db


class TestCacheRows:
    def test_miss_then_hit(self, store):
        status, blob = store.cache_get("public", "k1")
        assert (status, blob) == ("miss", None)
        body, digest = _seal({"unit": "u1"})
        store.cache_put("public", "k1", body, digest)
        status, blob = store.cache_get("public", "k1")
        assert status == "hit"
        assert json.loads(blob) == {"unit": "u1"}

    def test_rows_survive_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        body, digest = _seal({"unit": "u1"})
        with DiagnosisStore(path) as db:
            db.cache_put("public", "k1", body, digest)
        with DiagnosisStore(path) as db:
            status, blob = db.cache_get("public", "k1")
        assert status == "hit"
        assert blob == body

    def test_tampered_row_is_purged(self, store):
        body, digest = _seal({"unit": "u1"})
        store.cache_put("public", "k1", body, digest)
        assert store.cache_tamper("public", "k1")
        status, blob = store.cache_get("public", "k1")
        assert (status, blob) == ("corrupt", None)
        # Purged: the next read is an ordinary miss, not corrupt again.
        assert store.cache_get("public", "k1") == ("miss", None)
        assert store.cache_rows("public") == 0

    def test_namespaces_do_not_collide(self, store):
        body_a, digest_a = _seal({"unit": "a"})
        body_b, digest_b = _seal({"unit": "b"})
        store.cache_put("acme", "k", body_a, digest_a)
        store.cache_put("globex", "k", body_b, digest_b)
        assert json.loads(store.cache_get("acme", "k")[1])["unit"] == "a"
        assert json.loads(store.cache_get("globex", "k")[1])["unit"] == "b"
        assert store.cache_rows() == 2

    def test_lru_eviction_by_row_count(self, store):
        for i in range(4):
            body, digest = _seal({"i": i})
            store.cache_put("public", f"k{i}", body, digest, max_rows=4)
        store.cache_get("public", "k0")  # refresh k0: k1 is now the LRU row
        body, digest = _seal({"i": 4})
        evicted = store.cache_put("public", "k4", body, digest, max_rows=4)
        assert evicted == 1
        assert store.cache_get("public", "k1") == ("miss", None)
        assert store.cache_get("public", "k0")[0] == "hit"


class TestExperience:
    def _delta(self, certainty=0.6, occurrences=1):
        return {
            "base_certainty": 0.6,
            "episode_count": 1,
            "rules": [
                {
                    "signature": [["V(out)", "conflict", -1]],
                    "component": "R1",
                    "mode": "open",
                    "certainty": certainty,
                    "occurrences": occurrences,
                }
            ],
        }

    def test_merge_is_noisy_or(self, store):
        assert store.merge_experience("public", self._delta()) == 1
        assert store.merge_experience("public", self._delta()) == 2
        data, version = store.load_experience("public")
        assert version == 2
        [rule] = data["rules"]
        assert rule["occurrences"] == 2
        assert rule["certainty"] == pytest.approx(1.0 - 0.4 * 0.4)
        assert data["episode_count"] == 2

    def test_matches_in_memory_merge(self, store):
        """The sqlite fold and ExperienceBase.merge agree bit for bit."""
        store.merge_experience("public", self._delta())
        store.merge_experience("public", self._delta(certainty=0.8))
        persisted, _ = store.load_experience("public")

        base = ExperienceBase.from_dict(self._delta())
        base.merge(ExperienceBase.from_dict(self._delta(certainty=0.8)))
        in_memory = base.to_dict()
        assert persisted["rules"] == in_memory["rules"]
        assert persisted["episode_count"] == in_memory["episode_count"]

    def test_empty_delta_is_a_no_op(self, store):
        store.merge_experience("public", self._delta())
        version = store.merge_experience(
            "public", {"base_certainty": 0.6, "episode_count": 0, "rules": []}
        )
        assert version == 1

    def test_tenants_are_isolated(self, store):
        store.merge_experience("acme", self._delta())
        data, version = store.load_experience("globex")
        assert version == 0
        assert data["rules"] == []
        data, version = store.load_experience("acme")
        assert version == 1
        assert len(data["rules"]) == 1

    def test_unseen_tenant_loads_empty(self, store):
        data, version = store.load_experience("nobody")
        assert version == 0
        assert data == {"base_certainty": 0.6, "episode_count": 0, "rules": []}

    def test_rule_identity_stable_across_entry_order(self):
        a = rule_identity([["V(a)", "ok", 1], ["V(b)", "conflict", -1]], "R1", "open")
        b = rule_identity([["V(b)", "conflict", -1], ["V(a)", "ok", 1]], "R1", "open")
        assert a == b


class TestTenants:
    def test_provision_and_resolve(self, store):
        key = store.provision_tenant("acme", quota_limit=5)
        assert key.startswith("rk_")
        record = store.resolve_api_key(key)
        assert record is not None
        assert record.tenant_id == "acme"
        assert record.quota_limit == 5
        assert store.resolve_api_key("rk_wrong") is None
        assert store.resolve_api_key("") is None

    def test_key_is_stored_hashed(self, store, tmp_path):
        key = store.provision_tenant("acme")
        # WAL mode: the row may still live in store.db-wal, so scan both.
        raw = b"".join(p.read_bytes() for p in tmp_path.glob("store.db*"))
        assert key.encode() not in raw

    def test_duplicate_tenant_rejected(self, store):
        store.provision_tenant("acme")
        with pytest.raises(ValueError, match="already exists"):
            store.provision_tenant("acme")

    @pytest.mark.parametrize("bad", ["", "a:b", "a/b", "a b", "a\tb"])
    def test_bad_tenant_ids_rejected(self, store, bad):
        with pytest.raises(ValueError):
            store.provision_tenant(bad)

    def test_list_tenants_never_exposes_keys(self, store):
        key = store.provision_tenant("acme")
        [record] = store.list_tenants()
        assert key not in json.dumps(record.to_dict())


class TestHistory:
    def test_record_and_read_back(self, store):
        store.record_history(PUBLIC_TENANT, "u1", "h1", "ok", False, "R1", 0.25, False)
        store.record_history(PUBLIC_TENANT, "u2", "h2", "ok", True, "", 0.01, True)
        rows = store.history_rows(PUBLIC_TENANT)
        assert [r["unit"] for r in rows] == ["u1", "u2"]
        assert rows[0]["top_culprit"] == "R1"
        assert rows[1]["cache_hit"] is True
        assert store.history_count(PUBLIC_TENANT) == 2

    def test_limit_keeps_most_recent(self, store):
        for i in range(5):
            store.record_history("acme", f"u{i}", f"h{i}", "ok", True, "", 0.0, False)
        rows = store.history_rows("acme", limit=2)
        assert [r["unit"] for r in rows] == ["u3", "u4"]

    def test_snapshot_counts(self, store):
        body, digest = _seal({"unit": "u"})
        store.cache_put("public", "k", body, digest)
        store.provision_tenant("acme")
        store.record_history("acme", "u", "h", "ok", True, "", 0.0, False)
        snap = store.snapshot()
        assert snap["cache_rows"] == 1
        assert snap["tenants"] == 1
        assert snap["history_rows"] == 1
