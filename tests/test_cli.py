"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def divider_netlist(tmp_path):
    path = tmp_path / "divider.cir"
    path.write_text(
        ".title cli divider\n"
        "Vin top 0 12\n"
        "Rtop top mid 10k tol=0.05\n"
        "Rbot mid 0 10k tol=0.05\n"
    )
    return str(path)


class TestSimulate:
    def test_prints_operating_point(self, divider_netlist, capsys):
        assert main(["simulate", divider_netlist]) == 0
        out = capsys.readouterr().out
        assert "V(mid)" in out
        assert "V(top) = 12" in out


class TestDiagnose:
    def test_healthy_exit_zero(self, divider_netlist, capsys):
        code = main(["diagnose", divider_netlist, "--probe", "mid=6.0"])
        assert code == 0
        assert "behaves nominally" in capsys.readouterr().out

    def test_faulty_exit_one_with_candidates(self, divider_netlist, capsys):
        code = main(["diagnose", divider_netlist, "--probe", "mid=7.0"])
        assert code == 1
        out = capsys.readouterr().out
        assert "minimal candidates" in out
        assert "fault-mode refinement" in out

    def test_no_refine_flag(self, divider_netlist, capsys):
        main(["diagnose", divider_netlist, "--probe", "mid=7.0", "--no-refine"])
        assert "fault-mode refinement" not in capsys.readouterr().out

    def test_bad_probe_spec(self, divider_netlist):
        with pytest.raises(SystemExit):
            main(["diagnose", divider_netlist, "--probe", "mid"])

    def test_imprecision_flag_sets_measurement_spread(self, divider_netlist, capsys):
        main(["diagnose", divider_netlist, "--probe", "mid=7.0",
              "--imprecision", "0.25", "--json"])
        payload = json.loads(capsys.readouterr().out)
        [m] = payload["measurements"]
        assert m["value"] == [7.0, 7.0, 0.25, 0.25]

    def test_json_output(self, divider_netlist, capsys):
        code = main(["diagnose", divider_netlist, "--probe", "mid=7.0", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "faulty"
        assert payload["circuit"] == "cli divider"
        assert payload["measurements"][0]["point"] == "V(mid)"
        assert len(payload["measurements"][0]["value"]) == 4
        assert payload["suspicions"]
        assert payload["refinements"]

    def test_json_healthy(self, divider_netlist, capsys):
        assert main(["diagnose", divider_netlist, "--probe", "mid=6.0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "consistent"
        assert payload["candidates"] == []


@pytest.fixture()
def manifest(tmp_path, divider_netlist):
    """A small fleet: duplicated healthy/faulty units plus one crasher."""
    jobs = []
    for i in range(3):
        jobs.append({"unit": f"healthy-{i}", "netlist": divider_netlist,
                     "probes": {"mid": 6.0}})
    for i in range(3):
        jobs.append({"unit": f"faulty-{i}", "netlist": divider_netlist,
                     "probes": {"mid": 7.5},
                     "confirm": {"component": "Rbot", "mode": "high"}})
    jobs.append({"unit": "crasher", "netlist_text": "Rbroken top 0\n",
                 "probes": {"mid": 1.0}})
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"jobs": jobs}))
    return str(path)


class TestBatch:
    ARGS = ["--workers", "2", "--executor", "thread"]

    def test_fleet_report(self, manifest, capsys):
        code = main(["batch", manifest] + self.ARGS)
        assert code == 1  # the crasher surfaces in the exit code
        out = capsys.readouterr().out
        assert "fleet of 7 units" in out
        assert "healthy-0: healthy" in out
        assert "(cached)" in out  # duplicated units replayed
        assert "faulty-0: faulty" in out
        assert "crasher: ERROR" in out
        assert "fleet telemetry" in out
        assert "experience: 1 rule(s)" in out

    def test_json_report(self, manifest, capsys):
        code = main(["batch", manifest, "--json"] + self.ARGS)
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 7
        statuses = {r["unit"]: r["status"] for r in payload["results"]}
        assert statuses["crasher"] == "error"
        assert payload["telemetry"]["counters"]["cache_hits"] > 0
        assert payload["rules_learned"] == 1

    def test_repeat_warms_cache(self, manifest, capsys):
        code = main(["batch", manifest, "--repeat", "2", "--json"] + self.ARGS)
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        # second pass: every healthy/faulty unit replays from cache
        hits = [r for r in payload["results"] if r["cache_hit"]]
        assert len(hits) == 6

    def test_all_ok_exit_zero(self, tmp_path, divider_netlist, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps([
            {"unit": "a", "netlist": divider_netlist, "probes": {"mid": 6.0}},
        ]))
        assert main(["batch", str(path)] + self.ARGS) == 0

    def test_bad_manifest_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["batch", str(path)] + self.ARGS) == 2
        assert "bad manifest" in capsys.readouterr().err


class TestTables:
    def test_single_table(self, capsys):
        assert main(["tables", "figure2"]) == 0
        assert "masking demonstration" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["tables", "figure99"]) == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "short R2" in out
        assert "minimal candidates" in out


class TestCorpus:
    # One tiny deterministic recipe keeps every CLI-level corpus test
    # in the sub-second range; the full loop lives in tests/corpus/.
    RECIPE = ["--seed", "5", "--per-class", "1", "--classes", "single-hard"]
    RUN_ARGS = ["--kernel", "fast", "--executor", "serial", "--workers", "1"]

    def test_generate_to_stdout(self, capsys):
        assert main(["corpus", "generate"] + self.RECIPE) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["classes"] == ["single-hard"]
        assert len(payload["scenarios"]) == 1

    def test_generate_to_file_then_run_manifest(self, tmp_path, capsys):
        path = tmp_path / "corpus.json"
        assert main(["corpus", "generate", "--out", str(path)] + self.RECIPE) == 0
        assert "wrote 1 scenarios" in capsys.readouterr().out
        code = main(["corpus", "run", "--manifest", str(path)] + self.RUN_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel fast:" in out
        assert "single-hard" in out
        assert "overall" in out

    def test_run_json_report(self, capsys):
        code = main(["corpus", "run", "--json"] + self.RECIPE + self.RUN_ARGS)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        cell = payload["kernels"]["fast"]["single-hard"]
        assert cell["accuracy"]["n"] == 1
        assert cell["accuracy"]["failures"] == 0

    def test_floor_breach_exits_one(self, tmp_path, capsys):
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({"floors": {"top1": {"overall": 2.0}}}))
        code = main(["corpus", "run", "--floor", str(floor)]
                    + self.RECIPE + self.RUN_ARGS)
        assert code == 1
        assert "FLOOR BREACH" in capsys.readouterr().err

    def test_floor_holds_exits_zero(self, tmp_path, capsys):
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({"floors": {"top1": {"overall": 0.0}}}))
        code = main(["corpus", "run", "--floor", str(floor)]
                    + self.RECIPE + self.RUN_ARGS)
        assert code == 0
        assert "accuracy floor holds" in capsys.readouterr().err

    def test_unknown_class_exit_two(self, capsys):
        code = main(["corpus", "generate", "--classes", "nonsense"])
        assert code == 2
        assert "bad corpus recipe" in capsys.readouterr().err
