"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture()
def divider_netlist(tmp_path):
    path = tmp_path / "divider.cir"
    path.write_text(
        ".title cli divider\n"
        "Vin top 0 12\n"
        "Rtop top mid 10k tol=0.05\n"
        "Rbot mid 0 10k tol=0.05\n"
    )
    return str(path)


class TestSimulate:
    def test_prints_operating_point(self, divider_netlist, capsys):
        assert main(["simulate", divider_netlist]) == 0
        out = capsys.readouterr().out
        assert "V(mid)" in out
        assert "V(top) = 12" in out


class TestDiagnose:
    def test_healthy_exit_zero(self, divider_netlist, capsys):
        code = main(["diagnose", divider_netlist, "--probe", "mid=6.0"])
        assert code == 0
        assert "behaves nominally" in capsys.readouterr().out

    def test_faulty_exit_one_with_candidates(self, divider_netlist, capsys):
        code = main(["diagnose", divider_netlist, "--probe", "mid=7.0"])
        assert code == 1
        out = capsys.readouterr().out
        assert "minimal candidates" in out
        assert "fault-mode refinement" in out

    def test_no_refine_flag(self, divider_netlist, capsys):
        main(["diagnose", divider_netlist, "--probe", "mid=7.0", "--no-refine"])
        assert "fault-mode refinement" not in capsys.readouterr().out

    def test_bad_probe_spec(self, divider_netlist):
        with pytest.raises(SystemExit):
            main(["diagnose", divider_netlist, "--probe", "mid"])


class TestTables:
    def test_single_table(self, capsys):
        assert main(["tables", "figure2"]) == 0
        assert "masking demonstration" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["tables", "figure99"]) == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "short R2" in out
        assert "minimal candidates" in out
