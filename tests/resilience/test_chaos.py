"""Chaos integration: the fleet engine under a deterministic fault plan.

Every test arms a seeded :class:`FaultPlan` and asserts the engine
degrades the way the resilience plane promises: structured results for
every job, quarantine instead of retry loops, breaker fallback with
reference-identical answers, corruption counted as misses — and, with
no plan armed, byte-identical behaviour to the pre-resilience engine.
"""

import pytest

from repro.circuit.measurements import Measurement
from repro.fuzzy import FuzzyInterval
from repro.resilience import FaultPlan, FaultRule, FleetSupervisor, faults
from repro.resilience import supervisor as supervisor_mod
from repro.service.jobs import DiagnosisJob
from repro.service.pool import FleetEngine

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)


@pytest.fixture(autouse=True)
def fresh_worker_breaker():
    """Tests that trip the process-local breaker must not leak state."""
    supervisor_mod._worker_breaker = None
    yield
    supervisor_mod._worker_breaker = None


def _job(unit, volts=7.5, sanitize="strict", kernel=None, points=("mid",)):
    config = {"kernel": kernel} if kernel else None
    return DiagnosisJob.build(
        unit,
        NETLIST,
        [
            Measurement(f"V({p})", FuzzyInterval.number(v, 0.02))
            for p, v in zip(points, (volts, 12.0))
        ],
        config=config,
        sanitize=sanitize,
    )


class TestWorkerCrash:
    def test_crash_yields_structured_error_without_supervisor(self):
        engine = FleetEngine(
            workers=1,
            executor="serial",
            retries=2,
            fault_plan=FaultPlan.build(seed=0, pool_worker_crash=1.0),
        )
        res = engine.run_batch([_job("u1")]).results[0]
        assert res.status == "error"
        assert "injected fault at pool.worker_crash" in res.error
        assert res.attempts == 3  # the full retry budget was spent
        assert engine.telemetry.counter("retries") == 2

    def test_supervisor_quarantines_inside_the_retry_loop(self):
        sup = FleetSupervisor(quarantine_after=2)
        engine = FleetEngine(
            workers=1,
            executor="serial",
            retries=5,
            supervisor=sup,
            fault_plan=FaultPlan.build(seed=0, pool_worker_crash=1.0),
        )
        res = engine.run_batch([_job("u1")]).results[0]
        assert res.status == "quarantined"
        # Quarantine interrupts the retry budget: 2 attempts, not 6.
        assert res.attempts == 2
        assert engine.telemetry.counter("retries") == 1
        assert engine.telemetry.counter("jobs_quarantined_total") == 1

    def test_quarantined_job_never_reenters_the_pool(self):
        sup = FleetSupervisor(quarantine_after=1)
        engine = FleetEngine(
            workers=1,
            executor="serial",
            retries=3,
            supervisor=sup,
            fault_plan=FaultPlan.build(seed=0, pool_worker_crash=1.0),
        )
        first = engine.run_batch([_job("u1")]).results[0]
        assert first.status == "quarantined" and first.attempts == 1
        executed_before = engine.telemetry.counter("retries")
        second = engine.run_batch([_job("u1")]).results[0]
        assert second.status == "quarantined"
        assert second.attempts == 0  # answered from quarantine, never executed
        assert engine.telemetry.counter("retries") == executed_before
        # run_job takes the same short-circuit.
        third = engine.run_job(_job("u1"))
        assert third.status == "quarantined" and third.attempts == 0

    def test_health_eviction_restarts_a_sick_pool(self):
        sup = FleetSupervisor(quarantine_after=100, health_floor=0.3)
        engine = FleetEngine(
            workers=2,
            executor="thread",
            retries=0,
            supervisor=sup,
            fault_plan=FaultPlan.build(seed=0, pool_worker_crash=1.0),
        )
        engine.run_batch([_job(f"u{i}", 5.0 + i * 0.1) for i in range(8)])
        assert engine.telemetry.counter("pool_restarts") >= 1
        assert engine.telemetry.counter("worker_evictions") >= 1
        assert sup.health == 1.0  # reset optimistically after the restart


class TestWorkerExit:
    def test_dead_worker_process_revives_the_pool(self):
        # os._exit fires only inside spawned worker processes; the pool
        # breaks, the engine revives it and the job resolves structurally.
        engine = FleetEngine(
            workers=1,
            executor="process",
            retries=1,
            fault_plan=FaultPlan.build(seed=0, pool_worker_exit=1.0),
        )
        res = engine.run_batch([_job("u1")]).results[0]
        assert res.status == "error"
        assert engine.telemetry.counter("pool_restarts") >= 1


class TestKernelBreaker:
    def _plan(self):
        return FaultPlan.build(seed=0, kernel_exception=1.0)

    def test_exception_falls_back_to_reference_identical_result(self):
        chaotic = FleetEngine(
            workers=1, executor="serial", supervisor=FleetSupervisor(),
            fault_plan=self._plan(),
        )
        clean = FleetEngine(workers=1, executor="serial")
        job = _job("u1", kernel="fast")
        hit = chaotic.run_batch([job]).results[0]
        ref = clean.run_batch([job]).results[0]
        assert hit.status == "ok"
        assert hit.diagnosis == ref.diagnosis  # the reference result won
        assert chaotic.telemetry.counter("kernel_fallbacks") == 1

    def test_breaker_trips_then_bypasses(self):
        sup = FleetSupervisor(breaker_threshold=3, breaker_probe_after=1000)
        engine = FleetEngine(
            workers=1, executor="serial", supervisor=sup, fault_plan=self._plan(),
        )
        jobs = [_job(f"u{i}", 5.0 + i * 0.1, kernel="fast") for i in range(6)]
        report = engine.run_batch(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert sup.breaker.state == "open"
        assert engine.telemetry.counter("kernel_breaker_trips") == 1
        # After the trip the fast kernel is bypassed outright — no more
        # injected exceptions reach it, but the fallback is still counted.
        assert engine.telemetry.counter("kernel_fallbacks") == 6

    def test_reference_jobs_never_touch_the_breaker(self):
        sup = FleetSupervisor()
        engine = FleetEngine(
            workers=1, executor="serial", supervisor=sup, fault_plan=self._plan(),
        )
        res = engine.run_batch([_job("u1")]).results[0]  # reference kernel
        assert res.status == "ok"
        assert sup.breaker.state == "closed"
        assert engine.telemetry.counter("kernel_fallbacks") == 0

    def test_verify_kernel_differential_is_clean_without_faults(self):
        engine = FleetEngine(
            workers=1, executor="serial", supervisor=FleetSupervisor(),
            verify_kernel=True,
        )
        res = engine.run_batch([_job("u1", kernel="fast")]).results[0]
        assert res.status == "ok"
        assert engine.telemetry.counter("kernel_fallbacks") == 0


class TestMalformedMeasurements:
    def _plan(self):
        return FaultPlan.build(seed=0, measurement_malformed=1.0)

    def test_strict_job_errors(self):
        engine = FleetEngine(
            workers=1, executor="serial", retries=0, fault_plan=self._plan(),
        )
        res = engine.run_batch([_job("u1")]).results[0]
        assert res.status == "error"

    def test_repair_job_degrades_and_flags_the_report(self):
        engine = FleetEngine(
            workers=1, executor="serial", fault_plan=self._plan(),
        )
        job = _job("u1", sanitize="repair", points=("mid", "top"))
        res = engine.run_batch([job]).results[0]
        assert res.status == "degraded"
        assert res.completed
        assert res.diagnosis["degraded"]["dropped"] == ["V(mid)"]
        assert res.diagnosis["status"] in ("consistent", "faulty")

    def test_degraded_results_are_cached(self):
        engine = FleetEngine(
            workers=1, executor="serial", fault_plan=self._plan(),
        )
        job = _job("u1", sanitize="repair", points=("mid", "top"))
        engine.run_batch([job])
        res = engine.run_batch([job]).results[0]
        assert res.status == "degraded"
        assert res.cache_hit

    def test_repair_with_nothing_left_is_an_error(self):
        engine = FleetEngine(
            workers=1, executor="serial", retries=0, fault_plan=self._plan(),
        )
        res = engine.run_batch([_job("u1", sanitize="repair")]).results[0]
        assert res.status == "error"
        assert "dropped every measurement" in res.error


class TestCacheCorruption:
    def test_corrupt_hit_recomputes(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("cache.corrupt", rate=1.0),))
        engine = FleetEngine(workers=1, executor="serial", fault_plan=plan)
        job = _job("u1")
        first = engine.run_batch([job]).results[0]
        second = engine.run_batch([job]).results[0]
        assert first.status == second.status == "ok"
        assert not second.cache_hit  # the poisoned entry was never served
        assert first.diagnosis == second.diagnosis
        assert engine.cache.snapshot()["corruptions"] >= 1


class TestFaultFreeParity:
    def test_resilience_machinery_is_byte_identical_when_disarmed(self):
        jobs = [
            _job(f"u{i}", 5.0 + i * 0.25, kernel="fast" if i % 2 else None)
            for i in range(6)
        ]
        plain = FleetEngine(workers=1, executor="serial")
        armed = FleetEngine(
            workers=1, executor="serial", supervisor=FleetSupervisor(),
        )
        a = plain.run_batch(jobs)
        b = armed.run_batch(jobs)
        for x, y in zip(a.results, b.results):
            assert x.status == y.status == "ok"
            assert x.diagnosis == y.diagnosis
            assert x.content_hash == y.content_hash


class TestChaosAcceptance:
    """The PR's acceptance run: 200 jobs, every injection armed, seed 0."""

    STRUCTURED = {"ok", "degraded", "quarantined", "timeout", "interrupted"}

    def _fleet(self, n=200):
        # Distinct content per unit (no dedup) with two probes each, so a
        # dropped reading degrades the run instead of emptying it.
        return [
            _job(
                f"unit-{i:03d}",
                5.0 + (i % 40) * 0.05 + i * 1e-4,
                sanitize="repair",
                kernel="fast",
                points=("mid", "top"),
            )
            for i in range(n)
        ]

    def _plan(self):
        return FaultPlan(
            seed=0,
            rules=(
                FaultRule("pool.worker_crash", rate=0.06),
                FaultRule("pool.worker_exit", rate=0.02),  # no-op in threads
                FaultRule("pool.worker_hang", rate=0.008, seconds=2.0),
                FaultRule("pool.slow_response", rate=0.05, seconds=0.02),
                FaultRule("cache.corrupt", rate=0.3),
                FaultRule("kernel.exception", rate=0.2),
                FaultRule("measurement.malformed", rate=0.08),
            ),
        )

    def test_200_jobs_all_structured_and_reference_identical(self):
        jobs = self._fleet()
        sup = FleetSupervisor(quarantine_after=3)
        engine = FleetEngine(
            workers=4,
            executor="thread",
            timeout=0.5,
            retries=2,
            cache_size=512,
            supervisor=sup,
            fault_plan=self._plan(),
        )
        report = engine.run_batch(jobs)

        # 1. Every job answered, in order, with a structured status.
        assert len(report.results) == len(jobs)
        assert [r.unit for r in report.results] == [j.unit for j in jobs]
        statuses = {r.status for r in report.results}
        assert statuses <= self.STRUCTURED, statuses
        assert "error" not in statuses  # persistent failures quarantine instead
        for r in report.results:
            if not r.completed:
                assert r.error  # failures carry a reason

        # 2. The chaos actually happened.
        tel = report.telemetry["counters"]
        assert tel.get("jobs_quarantined_total", 0) >= 1
        # Breaker *trips* need a consecutive-failure streak on the shared
        # breaker, which thread interleaving decides — TestKernelBreaker
        # covers tripping deterministically; here we pin the per-fire
        # fallback counter, which is scheduling-independent.
        assert tel.get("kernel_fallbacks", 0) >= 1
        counts = faults.fire_counts()
        assert counts.get("pool.worker_crash", 0) >= 1
        assert counts.get("kernel.exception", 0) >= 1
        assert counts.get("measurement.malformed", 0) >= 1

        # 3. Breaker fallback is sound: every ok result matches the
        #    fault-free engine bit for bit (golden parity).
        clean = FleetEngine(workers=4, executor="thread", cache_size=512)
        faults.uninstall_plan()  # the clean engine runs genuinely clean
        reference = clean.run_batch(jobs)
        for chaotic, ref in zip(report.results, reference.results):
            assert ref.status == "ok"
            if chaotic.status == "ok":
                assert chaotic.diagnosis == ref.diagnosis, chaotic.unit

        # 4. A warm second pass stays structured and exercises the
        #    corrupt-entry path (counted misses, never crashes).
        faults.install_plan(self._plan())
        second = engine.run_batch(jobs)
        assert {r.status for r in second.results} <= self.STRUCTURED
        assert engine.cache.snapshot()["corruptions"] >= 1
