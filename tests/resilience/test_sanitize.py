"""The measurement sanitizer and the session's degraded mode."""

import math

import pytest

from repro.circuit.measurements import Measurement
from repro.circuit.spice import parse_netlist
from repro.core.session import TroubleshootingSession
from repro.fuzzy import FuzzyInterval
from repro.resilience.sanitize import sanitize_measurements, sanitize_tuples

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)


class TestSanitizeTuples:
    def test_clean_inputs_pass_through_verbatim(self):
        raw = [("V(mid)", 5.9, 6.1, 0.02, 0.02)]
        survivors, report = sanitize_tuples(raw)
        assert survivors == raw
        assert not report.degraded

    def test_non_finite_dropped(self):
        survivors, report = sanitize_tuples(
            [
                ("V(a)", float("nan"), float("nan"), 0.02, 0.02),
                ("V(b)", float("inf"), float("inf"), 0.02, 0.02),
                ("V(c)", 6.0, 6.0, 0.02, 0.02),
            ]
        )
        assert [s[0] for s in survivors] == ["V(c)"]
        assert report.dropped == ["V(a)", "V(b)"]
        assert all(a.action == "dropped" for a in report.actions)

    def test_absurd_magnitude_dropped(self):
        survivors, report = sanitize_tuples([("V(a)", 1e12, 1e12, 0.02, 0.02)])
        assert survivors == []
        assert "beyond" in report.actions[0].reason

    def test_out_of_range_widened_support_still_covers(self):
        raw = [("V(a)", 2e6, 2e6, 0.1, 0.1)]
        survivors, report = sanitize_tuples(raw)
        assert report.widened == ["V(a)"]
        point, m1, m2, alpha, beta = survivors[0]
        assert abs(m1) <= 1e6 and abs(m2) <= 1e6
        # The widened support still covers the original claim.
        assert m1 - alpha <= 2e6 - 0.1
        assert m2 + beta >= 2e6 + 0.1
        # And the result is a valid, finite interval.
        FuzzyInterval(m1, m2, alpha, beta)

    def test_inverted_core_and_negative_slopes_dropped(self):
        survivors, report = sanitize_tuples(
            [("V(a)", 6.0, 5.0, 0.02, 0.02), ("V(b)", 6.0, 6.0, -0.1, 0.02)]
        )
        assert survivors == []
        assert len(report.actions) == 2

    def test_non_numeric_dropped(self):
        survivors, report = sanitize_tuples([("V(a)", "twelve", 6.0, 0.02, 0.02)])
        assert survivors == []
        assert "non-numeric" in report.actions[0].reason

    def test_report_dict_is_json_safe(self):
        import json

        _, report = sanitize_tuples([("V(a)", float("nan"), 1.0, 0.0, 0.0)])
        json.dumps(report.to_dict())
        assert report.to_dict()["policy"] == "repair"


class TestSanitizeMeasurements:
    def test_widens_rich_objects(self):
        measurements = [Measurement("V(a)", FuzzyInterval(2e6, 2e6, 0.1, 0.1))]
        survivors, report = sanitize_measurements(measurements)
        assert report.widened == ["V(a)"]
        assert survivors[0].value.m1 <= 1e6


class TestSessionDegradedMode:
    def _session(self, **kwargs):
        return TroubleshootingSession(parse_netlist(NETLIST), **kwargs)

    def test_strict_session_unchanged(self):
        strict = self._session()
        repair = self._session(sanitize="repair")
        m = Measurement("V(mid)", FuzzyInterval.number(7.5, 0.02))
        a = strict.observe(m)
        b = repair.observe(m)
        assert a.suspicions == b.suspicions
        assert not repair.degraded

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize policy"):
            self._session(sanitize="yolo")

    def test_repair_widens_and_flags_the_report(self):
        session = self._session(sanitize="repair")
        session.observe(
            Measurement("V(mid)", FuzzyInterval.number(7.5, 0.02)),
            Measurement("V(top)", FuzzyInterval(2e6, 2e6, 0.1, 0.1)),
        )
        assert session.degraded
        assert session.sanitize_report.widened == ["V(top)"]
        assert "DEGRADED MODE" in session.report()

    def test_repair_raises_when_nothing_survives(self):
        session = self._session(sanitize="repair")
        with pytest.raises(ValueError, match="dropped every observation"):
            session.observe(Measurement("V(mid)", FuzzyInterval(1e12, 1e12, 0.1, 0.1)))

    def test_next_unit_clears_the_degraded_flag(self):
        session = self._session(sanitize="repair")
        session.observe(
            Measurement("V(mid)", FuzzyInterval.number(7.5, 0.02)),
            Measurement("V(top)", FuzzyInterval(2e6, 2e6, 0.1, 0.1)),
        )
        assert session.degraded
        session.next_unit()
        assert not session.degraded

    def test_interval_rejects_non_finite(self):
        # The strict boundary: a glitched reading can't even be built.
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError):
                FuzzyInterval(bad, bad, 0.02, 0.02)
        with pytest.raises(ValueError):
            FuzzyInterval(6.0, 6.0, float("inf"), 0.02)
        assert math.isfinite(FuzzyInterval(6.0, 6.0, 0.02, 0.02).m1)
