"""The fault plane itself: determinism, serialisation, scoping, limits."""

import pytest

from repro.resilience import FaultPlan, FaultRule, InjectedFault, faults


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultRule(point="pool.nonsense")

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(point="pool.worker_crash", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(point="pool.worker_crash", rate=-0.1)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(point="pool.worker_hang", seconds=-1.0)


class TestDeterminism:
    def test_decide_is_pure(self):
        plan = FaultPlan.build(seed=0, pool_worker_crash=0.5)
        first = [plan.decide("pool.worker_crash", f"k{i}") for i in range(64)]
        second = [plan.decide("pool.worker_crash", f"k{i}") for i in range(64)]
        assert first == second

    def test_same_spec_same_decisions_across_instances(self):
        a = FaultPlan.build(seed=7, cache_corrupt=0.3)
        b = FaultPlan.from_json(a.to_json())
        for i in range(64):
            key = f"entry-{i}"
            assert (a.decide("cache.corrupt", key) is None) == (
                b.decide("cache.corrupt", key) is None
            )

    def test_different_seeds_differ(self):
        a = FaultPlan.build(seed=0, pool_worker_crash=0.5)
        b = FaultPlan.build(seed=1, pool_worker_crash=0.5)
        fires_a = {i for i in range(128) if a.decide("pool.worker_crash", f"k{i}")}
        fires_b = {i for i in range(128) if b.decide("pool.worker_crash", f"k{i}")}
        assert fires_a != fires_b

    def test_rate_roughly_honoured(self):
        plan = FaultPlan.build(seed=0, pool_worker_crash=0.25)
        fired = sum(
            1 for i in range(1000) if plan.decide("pool.worker_crash", f"k{i}")
        )
        assert 180 <= fired <= 320  # ~250 expected; sha256 draw, not RNG

    def test_rate_zero_never_fires_rate_one_always(self):
        silent = FaultPlan.build(seed=0, pool_worker_crash=0.0)
        loud = FaultPlan.build(seed=0, pool_worker_crash=1.0)
        assert all(silent.decide("pool.worker_crash", f"k{i}") is None for i in range(32))
        assert all(loud.decide("pool.worker_crash", f"k{i}") is not None for i in range(32))


class TestSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule("pool.worker_hang", rate=0.5, seconds=1.5),
                FaultRule("cache.corrupt", rate=0.1, limit=4),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self, monkeypatch):
        plan = FaultPlan.build(seed=9, server_io=0.5)
        for name, value in plan.env().items():
            monkeypatch.setenv(name, value)
        faults.uninstall_plan()  # forget the fixture's explicit disarm
        assert faults.active_plan() == plan

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_plan_pickles(self):
        import pickle

        plan = FaultPlan.build(seed=1, pool_worker_crash=0.5)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjectionHelpers:
    def test_disarmed_is_noop(self):
        assert faults.maybe_fire("pool.worker_crash", "k") is None
        faults.maybe_raise("pool.worker_crash", "k")  # must not raise
        assert faults.maybe_sleep("pool.worker_hang", "k") == 0.0

    def test_maybe_raise_fires(self):
        faults.install_plan(FaultPlan.build(seed=0, pool_worker_crash=1.0))
        with pytest.raises(InjectedFault) as err:
            faults.maybe_raise("pool.worker_crash", "job-1")
        assert err.value.point == "pool.worker_crash"

    def test_limit_caps_firings(self):
        faults.install_plan(
            FaultPlan(seed=0, rules=(FaultRule("pool.worker_crash", rate=1.0, limit=2),))
        )
        fired = sum(
            1
            for i in range(10)
            if faults.maybe_fire("pool.worker_crash", f"k{i}") is not None
        )
        assert fired == 2
        assert faults.fire_counts()["pool.worker_crash"] == 2

    def test_key_scope_binds_the_key(self):
        plan = FaultPlan.build(seed=0, kernel_exception=0.5)
        faults.install_plan(plan)
        hot = next(
            f"k{i}" for i in range(64) if plan.decide("kernel.exception", f"k{i}")
        )
        cold = next(
            f"k{i}"
            for i in range(64)
            if plan.decide("kernel.exception", f"k{i}") is None
        )
        with faults.key_scope(hot):
            assert faults.maybe_fire("kernel.exception") is not None
            with faults.key_scope(cold):  # nesting restores on exit
                assert faults.maybe_fire("kernel.exception") is None
            assert faults.current_key() == hot

    def test_maybe_exit_refuses_in_main_process(self):
        faults.install_plan(FaultPlan.build(seed=0, pool_worker_exit=1.0))
        faults.maybe_exit("pool.worker_exit", "k")  # still alive = pass

    def test_install_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan.build(seed=1).to_json())
        explicit = FaultPlan.build(seed=2, cache_corrupt=1.0)
        faults.install_plan(explicit)
        assert faults.active_plan() == explicit
