"""Server-boundary resilience: structured 400s/500s and jittered retries."""

import asyncio
import http.client
import json
import random
import threading
import time

import pytest

from repro.resilience import FaultPlan
from repro.server import ClientError, DiagnosisClient, DiagnosisServer, ServerConfig

NETLIST = (
    ".title divider\n"
    "Vin top 0 12\n"
    "Rtop top mid 10k tol=0.05\n"
    "Rbot mid 0 10k tol=0.05\n"
)


class RunningServer:
    """Run a :class:`DiagnosisServer` on a background thread for one test."""

    def __init__(self, config=None):
        self.config = config or ServerConfig(
            port=0, workers=2, queue_size=8, timeout=10.0, drain_grace=10.0
        )
        self.server = DiagnosisServer(self.config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.serve())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 10
        while self.server.port is None and time.time() < deadline:
            time.sleep(0.01)
        assert self.server.port, "server did not bind in time"
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass
        self.thread.join(timeout=15.0)
        assert not self.thread.is_alive(), "server did not drain in time"

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 10.0)
        kwargs.setdefault("backoff", 0.05)
        kwargs.setdefault("max_delay", 0.2)
        return DiagnosisClient(port=self.server.port, **kwargs)


class TestNonFiniteRequests:
    def test_nan_measurement_answers_structured_400(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                spec = {
                    "unit": "u1",
                    "netlist_text": NETLIST,
                    "measurements": [
                        {"point": "V(mid)", "value": [float("nan"), 6.0, 0.02, 0.02]}
                    ],
                }
                with pytest.raises(ClientError) as err:
                    client.diagnose(spec)
                assert err.value.status == 400
                message = json.dumps(err.value.payload)
                assert "finite" in message or "bad measurement" in message

    def test_infinite_probe_answers_structured_400(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                spec = {
                    "unit": "u1",
                    "netlist_text": NETLIST,
                    "probes": {"mid": float("inf")},
                }
                with pytest.raises(ClientError) as err:
                    client.diagnose(spec)
                assert err.value.status == 400

    def test_repair_policy_accepts_and_degrades_instead(self):
        with RunningServer() as rs:
            with rs.client(retries=0) as client:
                spec = {
                    "unit": "u1",
                    "netlist_text": NETLIST,
                    "sanitize": "repair",
                    "probes": {"mid": 7.5},
                    "measurements": [
                        {"point": "V(top)", "value": [float("nan"), 6.0, 0.02, 0.02]}
                    ],
                }
                result = client.diagnose(spec)
                assert result["status"] == "degraded"
                assert result["diagnosis"]["degraded"]["dropped"] == ["V(top)"]


class TestServerIoChaos:
    def test_injected_dispatch_fault_is_a_structured_500(self):
        plan = FaultPlan.build(seed=0, server_io=1.0)
        config = ServerConfig(
            port=0, workers=2, queue_size=8, timeout=10.0, drain_grace=10.0,
            faults=plan.to_json(),
        )
        with RunningServer(config) as rs:
            conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=10)
            try:
                conn.request("GET", "/healthz")
                first = conn.getresponse()
                body = json.loads(first.read())
                assert first.status == 500
                assert "InjectedFault" in body["error"]["message"]
                # The connection survived; the next request runs normally
                # (rate 1.0 still fires, but stays structured).
                conn.request("GET", "/healthz")
                second = conn.getresponse()
                assert second.status == 500
                json.loads(second.read())
            finally:
                conn.close()

    def test_bad_fault_plan_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            ServerConfig(port=0, faults="{broken")


class TestSupervisedServer:
    def test_metrics_expose_the_supervisor(self):
        config = ServerConfig(
            port=0, workers=2, queue_size=8, timeout=10.0, drain_grace=10.0,
            supervise=True,
        )
        with RunningServer(config) as rs:
            with rs.client() as client:
                metrics = client.metrics()
                sup = metrics["supervisor"]
                assert sup["health"] == 1.0
                assert sup["breaker"]["state"] == "closed"

    def test_unsupervised_metrics_say_so(self):
        with RunningServer() as rs:
            with rs.client() as client:
                assert client.metrics()["supervisor"] is None


class TestClientJitter:
    def _client(self, seed=0, backoff=0.1, max_delay=5.0):
        # Never connects — _delay is pure given the injected RNG.
        return DiagnosisClient(
            port=1, retries=0, backoff=backoff, max_delay=max_delay,
            rng=random.Random(seed),
        )

    def test_full_jitter_spans_the_window(self):
        client = self._client()
        delays = [client._delay(2, None) for _ in range(200)]
        ceiling = 0.1 * 2**2
        assert all(0.0 <= d <= ceiling for d in delays)
        # Full jitter, not equal jitter: draws land across the whole
        # window, including well below half the ceiling.
        assert min(delays) < ceiling * 0.25
        assert max(delays) > ceiling * 0.75

    def test_deterministic_with_a_seeded_rng(self):
        a = [self._client(seed=7)._delay(n, None) for n in range(6)]
        b = [self._client(seed=7)._delay(n, None) for n in range(6)]
        assert a == b

    def test_ceiling_respects_max_delay(self):
        client = self._client(max_delay=0.3)
        assert all(client._delay(10, None) <= 0.3 for _ in range(50))

    def test_retry_after_is_a_floor(self):
        client = self._client()
        error = ClientError(503, {})
        error.retry_after = "2.5"
        assert client._delay(0, error) == 2.5  # jitter window is [0, 0.1]

    def test_bad_retry_after_ignored(self):
        client = self._client()
        error = ClientError(503, {})
        error.retry_after = "soon"
        assert 0.0 <= client._delay(0, error) <= 0.1

    def test_default_rng_is_private_not_global(self):
        # Two clients must not share (or reseed) the module-global RNG.
        a = DiagnosisClient(port=1, retries=0)
        b = DiagnosisClient(port=1, retries=0)
        assert a.rng is not b.rng
        assert a.rng is not random
