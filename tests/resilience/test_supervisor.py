"""Breaker and supervisor state machines, plus cache-corruption handling."""

import pytest

from repro.resilience import CircuitBreaker, FleetSupervisor
from repro.service.cache import ResultCache
from repro.service.jobs import JobResult
from repro.service.telemetry import Telemetry


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.state == "closed"
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # this call trips it
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_window(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # streak restarted
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, probe_after=3)
        breaker.record_failure()
        assert breaker.state == "open"
        for _ in range(3):
            breaker.record_bypass()
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, probe_after=1)
        breaker.record_failure()
        breaker.record_bypass()
        assert breaker.state == "half-open"
        assert breaker.record_failure() is True  # the failed probe re-trips
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_snapshot_is_plain_data(self):
        snap = CircuitBreaker().snapshot()
        assert snap == {"state": "closed", "failures": 0, "trips": 0}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_after=0)


class TestQuarantine:
    def test_quarantines_after_k_failures(self):
        sup = FleetSupervisor(quarantine_after=3, telemetry=Telemetry())
        assert sup.record_failure("job-a", "boom") is False
        assert sup.record_failure("job-a", "boom") is False
        assert sup.record_failure("job-a", "boom") is True
        assert sup.is_quarantined("job-a")
        assert "3 failures" in sup.quarantine_reason("job-a")
        assert "boom" in sup.quarantine_reason("job-a")
        assert sup.telemetry.counter("jobs_quarantined_total") == 1

    def test_counts_are_cumulative_across_batches(self):
        sup = FleetSupervisor(quarantine_after=3)
        sup.record_failure("job-a")  # batch 1
        sup.record_failure("job-a")  # batch 2
        assert not sup.is_quarantined("job-a")
        assert sup.record_failure("job-a") is True  # batch 3

    def test_success_forgives_the_streak(self):
        sup = FleetSupervisor(quarantine_after=2)
        sup.record_failure("job-a")
        sup.record_job_success("job-a")
        assert sup.failure_count("job-a") == 0
        assert sup.record_failure("job-a") is False

    def test_already_quarantined_stays_quarantined(self):
        sup = FleetSupervisor(quarantine_after=1)
        assert sup.record_failure("job-a", "first") is True
        assert sup.record_failure("job-a", "second") is True
        assert "first" in sup.quarantine_reason("job-a")
        assert sup.quarantined_keys() == {"job-a": "first"}


class TestWorkerHealth:
    def test_health_decays_on_failures_and_recovers(self):
        sup = FleetSupervisor(health_floor=0.3, health_decay=0.7)
        assert sup.health == 1.0
        for _ in range(4):
            sup.record_worker_outcome(False)
        assert sup.should_evict()
        sup.record_eviction()
        assert sup.health == 1.0
        assert sup.evictions == 1
        assert not sup.should_evict()

    def test_healthy_stream_never_evicts(self):
        sup = FleetSupervisor()
        for _ in range(100):
            sup.record_worker_outcome(True)
        assert not sup.should_evict()

    def test_eviction_recorded_in_telemetry(self):
        tel = Telemetry()
        sup = FleetSupervisor(telemetry=tel)
        sup.record_eviction()
        assert tel.counter("worker_evictions") == 1
        assert any(e["kind"] == "worker_evicted" for e in tel.snapshot()["events"])

    def test_snapshot_shape(self):
        snap = FleetSupervisor().snapshot()
        assert set(snap) == {"health", "evictions", "quarantined", "breaker"}


class TestCacheIntegrity:
    def _result(self, key="h" * 64):
        return JobResult(
            unit="u", content_hash=key, status="ok", diagnosis={"status": "faulty"}
        )

    def test_tampered_entry_is_counted_miss_not_crash(self):
        cache = ResultCache(capacity=8)
        cache.put("k1", self._result())
        assert cache.tamper("k1")
        assert cache.get("k1") is None  # purged, not served, not raised
        snap = cache.snapshot()
        assert snap["corruptions"] == 1
        assert snap["misses"] == 1
        assert snap["hits"] == 0
        assert snap["size"] == 0

    def test_refill_after_corruption_serves_again(self):
        cache = ResultCache(capacity=8)
        cache.put("k1", self._result())
        cache.tamper("k1")
        assert cache.get("k1") is None
        cache.put("k1", self._result())
        assert cache.get("k1") is not None
        assert cache.snapshot()["corruptions"] == 1

    def test_tamper_missing_key_is_false(self):
        assert ResultCache().tamper("nope") is False

    def test_intact_entries_unaffected(self):
        cache = ResultCache(capacity=8)
        cache.put("k1", self._result())
        cache.put("k2", self._result())
        cache.tamper("k1")
        assert cache.get("k2") is not None
        assert cache.snapshot()["corruptions"] == 0  # k1 not read yet
