"""Tests for tolerance analysis (Monte Carlo, worst case, sweeps)."""

import pytest

from repro.circuit import (
    Circuit,
    GROUND,
    Resistor,
    VoltageSource,
    three_stage_amplifier,
)
from repro.circuit.analysis import dc_sweep, monte_carlo, worst_case


def divider(tolerance=0.05):
    ckt = Circuit("div")
    ckt.add(VoltageSource("Vin", 10.0, p="top", n=GROUND))
    ckt.add(Resistor("Rt", 1e3, tolerance, a="top", b="mid"))
    ckt.add(Resistor("Rb", 1e3, tolerance, a="mid", b=GROUND))
    return ckt


class TestMonteCarlo:
    def test_statistics_centre_on_nominal(self):
        result = monte_carlo(divider(), samples=200, seed=1)
        assert result.mean("mid") == pytest.approx(5.0, abs=0.1)
        assert result.std("mid") > 0.0
        assert result.failed == 0

    def test_deterministic_for_seed(self):
        a = monte_carlo(divider(), samples=50, seed=7)
        b = monte_carlo(divider(), samples=50, seed=7)
        assert a.voltages == b.voltages

    def test_spread_scales_with_tolerance(self):
        tight = monte_carlo(divider(0.01), samples=100, seed=3)
        loose = monte_carlo(divider(0.10), samples=100, seed=3)
        assert loose.spread("mid") > tight.spread("mid")

    def test_circuit_restored(self):
        golden = divider()
        monte_carlo(golden, samples=20, seed=0)
        assert golden.component("Rt").resistance == 1e3

    def test_net_selection(self):
        result = monte_carlo(divider(), samples=10, seed=0, nets=["mid"])
        assert set(result.voltages) == {"mid"}

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            monte_carlo(divider(), samples=0)

    def test_predictions_contain_monte_carlo_samples(self):
        """The fuzzy prediction envelopes must cover sampled behaviour —
        the cross-validation between the model database and reality."""
        from repro.core.predict import predict_nominal

        golden = three_stage_amplifier()
        predictions = predict_nominal(golden)
        result = monte_carlo(golden, samples=60, seed=5, nets=["v1", "v2", "vs"])
        for net in ("v1", "v2", "vs"):
            lo, hi = predictions[f"V({net})"].value.support
            for sample in result.voltages[net]:
                assert lo - 0.02 <= sample <= hi + 0.02, net


class TestWorstCase:
    def test_band_contains_nominal(self):
        from repro.circuit import DCSolver

        golden = divider()
        nominal = DCSolver(golden).solve().voltage("mid")
        result = worst_case(golden)
        lo, hi = result.band("mid")
        assert lo <= nominal <= hi

    def test_exhaustive_for_small_circuits(self):
        result = worst_case(divider())
        assert result.corners_examined == 4  # two toleranced resistors

    def test_corner_band_contains_monte_carlo(self):
        golden = divider()
        corners = worst_case(golden)
        sampled = monte_carlo(golden, samples=100, seed=2)
        lo, hi = corners.band("mid")
        assert lo - 1e-9 <= sampled.minimum("mid")
        assert sampled.maximum("mid") <= hi + 1e-9

    def test_one_at_a_time_fallback(self):
        golden = three_stage_amplifier()
        result = worst_case(golden, nets=["vs"], exhaustive_limit=3)
        # 2 corners per varied parameter + the 2 all-extreme corners.
        assert result.corners_examined > 10
        lo, hi = result.band("vs")
        assert lo < 16.32 < hi

    def test_circuit_restored(self):
        golden = divider()
        worst_case(golden)
        assert golden.component("Rb").resistance == 1e3


class TestDCSweep:
    def test_transfer_curve_linear_divider(self):
        curves = dc_sweep(divider(), "Vin", [0.0, 5.0, 10.0], ["mid"])
        assert curves["mid"] == pytest.approx([0.0, 2.5, 5.0], abs=1e-3)

    def test_source_restored(self):
        golden = divider()
        dc_sweep(golden, "Vin", [1.0], ["mid"])
        assert golden.component("Vin").voltage == 10.0

    def test_sweep_follower_clips_at_cutoff(self):
        golden = three_stage_amplifier()
        curves = dc_sweep(golden, "Vcc", [6.0, 12.0, 18.0], ["vs"])
        assert curves["vs"][0] < curves["vs"][1] < curves["vs"][2]

    def test_requires_voltage_source(self):
        with pytest.raises(ValueError):
            dc_sweep(divider(), "Rt", [1.0], ["mid"])

    def test_requires_values(self):
        with pytest.raises(ValueError):
            dc_sweep(divider(), "Vin", [], ["mid"])
