"""Tests for fault injection."""

import pytest

from repro.circuit import (
    Amplifier,
    Circuit,
    DCSolver,
    Fault,
    FaultKind,
    GROUND,
    Resistor,
    VoltageSource,
    apply_fault,
    three_stage_amplifier,
)
from repro.circuit.faults import OPEN_RESISTANCE, SHORT_RESISTANCE


@pytest.fixture
def divider():
    ckt = Circuit("div")
    ckt.add(VoltageSource("V1", 10.0, p="a", n=GROUND))
    ckt.add(Resistor("R1", 1e3, a="a", b="m"))
    ckt.add(Resistor("R2", 1e3, a="m", b=GROUND))
    return ckt


class TestApplication:
    def test_original_untouched(self, divider):
        apply_fault(divider, Fault(FaultKind.SHORT, "R2"))
        assert divider.component("R2").resistance == 1e3

    def test_short_resistor(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.SHORT, "R2"))
        assert faulty.component("R2").resistance == SHORT_RESISTANCE
        op = DCSolver(faulty).solve()
        assert op.voltage("m") == pytest.approx(0.0, abs=1e-3)

    def test_open_resistor(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.OPEN, "R1"))
        assert faulty.component("R1").resistance == OPEN_RESISTANCE
        op = DCSolver(faulty).solve()
        assert op.voltage("m") == pytest.approx(0.0, abs=1e-3)

    def test_param_drift(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.PARAM, "R2", value=3e3))
        assert faulty.component("R2").resistance == 3e3

    def test_param_default_parameter(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.PARAM, "R2", value=2e3))
        assert faulty.component("R2").resistance == 2e3

    def test_param_named_parameter(self):
        golden = three_stage_amplifier()
        faulty = apply_fault(golden, Fault(FaultKind.PARAM, "T2", "beta", 150.0))
        assert faulty.component("T2").beta == 150.0

    def test_param_unknown_parameter(self, divider):
        with pytest.raises(ValueError, match="no parameter"):
            apply_fault(divider, Fault(FaultKind.PARAM, "R2", "inductance", 1.0))

    def test_node_open_rewires_to_float_net(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.NODE_OPEN, "R2", pin="a"))
        assert faulty.component("R2").net("a").name.startswith("__float")
        op = DCSolver(faulty).solve()
        assert op.voltage("m") == pytest.approx(10.0, rel=1e-3)

    def test_node_open_unknown_pin(self, divider):
        with pytest.raises(ValueError, match="no pin"):
            apply_fault(divider, Fault(FaultKind.NODE_OPEN, "R2", pin="q"))

    def test_unknown_component(self, divider):
        with pytest.raises(KeyError):
            apply_fault(divider, Fault(FaultKind.SHORT, "R9"))

    def test_faulty_circuit_renamed(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.SHORT, "R2"))
        assert "short R2" in faulty.name


class TestKindSpecificBehaviour:
    def test_diode_open_never_conducts(self):
        from repro.circuit import Diode

        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", 5.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="k"))
        ckt.add(Diode("D1", anode="k", cathode=GROUND))
        faulty = apply_fault(ckt, Fault(FaultKind.OPEN, "D1"))
        op = DCSolver(faulty).solve()
        assert op.state("D1") == "off"
        assert op.voltage("k") == pytest.approx(5.0, rel=1e-3)

    def test_diode_short_zero_drop(self):
        from repro.circuit import Diode

        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", 5.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="k"))
        ckt.add(Diode("D1", anode="k", cathode=GROUND))
        faulty = apply_fault(ckt, Fault(FaultKind.SHORT, "D1"))
        op = DCSolver(faulty).solve()
        assert op.voltage("k") == pytest.approx(0.0, abs=1e-6)

    def test_bjt_open_cuts_off(self):
        golden = three_stage_amplifier()
        faulty = apply_fault(golden, Fault(FaultKind.OPEN, "T1"))
        op = DCSolver(faulty).solve()
        assert op.state("T1") == "cutoff"
        assert op.voltage("v1") == pytest.approx(0.0, abs=1e-3)

    def test_amplifier_open_is_dead(self):
        ckt = Circuit("a")
        ckt.add(VoltageSource("V1", 2.0, p="i", n=GROUND))
        ckt.add(Amplifier("A1", 3.0, inp="i", out="o"))
        faulty = apply_fault(ckt, Fault(FaultKind.OPEN, "A1"))
        op = DCSolver(faulty).solve()
        assert op.voltage("o") == pytest.approx(0.0, abs=1e-9)

    def test_voltage_source_open_rejected(self, divider):
        with pytest.raises(ValueError, match="unsolvable"):
            apply_fault(divider, Fault(FaultKind.OPEN, "V1"))

    def test_voltage_source_short_is_zero_volts(self, divider):
        faulty = apply_fault(divider, Fault(FaultKind.SHORT, "V1"))
        assert faulty.component("V1").voltage == 0.0


class TestDescribe:
    def test_descriptions(self):
        assert Fault(FaultKind.SHORT, "R2").describe() == "short R2"
        assert Fault(FaultKind.OPEN, "R3").describe() == "open R3"
        assert "R2.resistance -> 12180" == Fault(
            FaultKind.PARAM, "R2", "resistance", 12180.0
        ).describe()
        assert Fault(FaultKind.NODE_OPEN, "T1", pin="b").describe() == "open at T1.b"
