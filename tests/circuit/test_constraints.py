"""Tests for the constraint-network view (the model database)."""

import pytest

from repro.circuit import (
    Circuit,
    ConstraintNetwork,
    GROUND,
    Resistor,
    VoltageSource,
    diode_resistor_circuit,
    three_stage_amplifier,
)
from repro.circuit.constraints import (
    LinearConstraint,
    RangeConstraint,
    ScaledDifferenceConstraint,
    Variable,
)
from repro.fuzzy import FuzzyInterval


def var(name, kind="voltage"):
    return Variable(name, kind)


class TestVariable:
    def test_seed_ranges(self):
        assert var("V(x)").seed.support == (-60.0, 60.0)
        assert var("I(x)", "current").seed.support == (-10.0, 10.0)


class TestLinearConstraint:
    def test_projection_each_direction(self):
        x, y, z = var("x"), var("y"), var("z")
        c = LinearConstraint(
            "sum", {x: 1.0, y: 2.0, z: -1.0}, FuzzyInterval.crisp(10.0)
        )
        values = {"y": FuzzyInterval.crisp(3.0), "z": FuzzyInterval.crisp(2.0)}
        assert c.project(x, values).core == (6.0, 6.0)
        values = {"x": FuzzyInterval.crisp(6.0), "z": FuzzyInterval.crisp(2.0)}
        assert c.project(y, values).core == (3.0, 3.0)
        values = {"x": FuzzyInterval.crisp(6.0), "y": FuzzyInterval.crisp(3.0)}
        assert c.project(z, values).core == (2.0, 2.0)

    def test_fuzzy_rhs_propagates_spread(self):
        x, y = var("x"), var("y")
        c = LinearConstraint("d", {x: 1.0, y: -1.0}, FuzzyInterval(0.7, 0.7, 0.05, 0.05))
        projected = c.project(x, {"y": FuzzyInterval.crisp(1.0)})
        assert projected.core == (1.7, 1.7)
        assert projected.alpha == pytest.approx(0.05)

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            LinearConstraint("bad", {}, FuzzyInterval.crisp(0.0))

    def test_zero_coefficient_rejected(self):
        with pytest.raises(ValueError):
            LinearConstraint("bad", {var("x"): 0.0}, FuzzyInterval.crisp(0.0))


class TestScaledDifferenceConstraint:
    def _ohm(self):
        return ScaledDifferenceConstraint(
            "ohm",
            var("Va"),
            var("Vb"),
            var("I", "current"),
            FuzzyInterval.around(1e3, 0.05),
        )

    def test_solve_for_plus(self):
        c = self._ohm()
        out = c.project(
            var("Va"),
            {"Vb": FuzzyInterval.crisp(1.0), "I": FuzzyInterval.crisp(1e-3)},
        )
        assert out.core == (2.0, 2.0)

    def test_solve_for_minus(self):
        c = self._ohm()
        out = c.project(
            var("Vb"),
            {"Va": FuzzyInterval.crisp(2.0), "I": FuzzyInterval.crisp(1e-3)},
        )
        assert out.core == (1.0, 1.0)

    def test_solve_for_current(self):
        c = self._ohm()
        out = c.project(
            var("I", "current"),
            {"Va": FuzzyInterval.crisp(2.0), "Vb": FuzzyInterval.crisp(1.0)},
        )
        assert out.core == (pytest.approx(1e-3), pytest.approx(1e-3))

    def test_gain_without_minus_term(self):
        c = ScaledDifferenceConstraint(
            "gain", var("Vout"), None, var("Vin"), FuzzyInterval.number(2.0, 0.05)
        )
        out = c.project(var("Vout"), {"Vin": FuzzyInterval.crisp(3.0)})
        assert out.core == (6.0, 6.0)
        back = c.project(var("Vin"), {"Vout": FuzzyInterval.crisp(6.0)})
        assert back.core == (3.0, 3.0)

    def test_zero_spanning_coefficient_not_invertible(self):
        c = ScaledDifferenceConstraint(
            "odd", var("x"), None, var("y"), FuzzyInterval(-1.0, 1.0)
        )
        assert c.project(var("y"), {"x": FuzzyInterval.crisp(1.0)}) is None

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            self._ohm().project(var("nope"), {})


class TestRangeConstraint:
    def test_projects_its_interval(self):
        leak = FuzzyInterval(-1e-6, 100e-6, 0.0, 10e-6)
        c = RangeConstraint("leak", var("I", "current"), leak)
        assert c.project(var("I", "current"), {}) is leak


class TestGuards:
    def test_guard_defaults_to_applicable(self):
        c = RangeConstraint("r", var("x"), FuzzyInterval.crisp(0.0))
        assert c.applicable({})

    def test_guard_callable_controls(self):
        c = RangeConstraint(
            "r", var("x"), FuzzyInterval.crisp(0.0), guard=lambda est: False
        )
        assert not c.applicable({})


class TestNetworkBuild:
    def test_three_stage_inventory(self):
        net = ConstraintNetwork(three_stage_amplifier())
        stats = net.stats()
        assert stats["components"] == 10
        assert stats["variables"] > 15
        # Every component contributes at least one guarded/unguarded model.
        for comp in net.circuit.components:
            assert any(
                comp.name in c.assumptions for c in net.constraints
            ), comp.name

    def test_kcl_per_non_ground_net(self):
        net = ConstraintNetwork(diode_resistor_circuit())
        kcl_names = {c.name for c in net.constraints if c.name.startswith("KCL")}
        assert kcl_names == {"KCL(vin)", "KCL(n1)", "KCL(n2)"}

    def test_kcl_unassumed_by_default(self):
        net = ConstraintNetwork(diode_resistor_circuit())
        for c in net.constraints:
            if c.name.startswith("KCL"):
                assert c.assumptions == frozenset()

    def test_assumable_nodes_tag_kcl(self):
        net = ConstraintNetwork(diode_resistor_circuit(), assumable_nodes=True)
        kcl = next(c for c in net.constraints if c.name == "KCL(n1)")
        assert kcl.assumptions == frozenset({"node:n1"})

    def test_constraints_on_variable(self):
        net = ConstraintNetwork(diode_resistor_circuit())
        names = {c.name for c in net.constraints_on("I(r1)")}
        assert "Ohm(r1)" in names
        assert "KCL(vin)" in names

    def test_component_models_carry_their_assumption(self):
        net = ConstraintNetwork(three_stage_amplifier())
        ohm_r1 = next(c for c in net.constraints if c.name == "Ohm(R1)")
        assert ohm_r1.assumptions == frozenset({"R1"})

    def test_bjt_modal_constraints_present(self):
        net = ConstraintNetwork(three_stage_amplifier())
        names = {c.name for c in net.constraints}
        for expected in (
            "Vbe(T1)",
            "Beta(T1)",
            "VceSat(T1)",
            "CutoffIb(T1)",
            "Ie(T1)",
            "IeFromIb(T1)",
        ):
            assert expected in names

    def test_nominal_modes_respected(self):
        """A BJT designed into cutoff starts with cutoff constraints live."""
        ckt = three_stage_amplifier()
        net = ConstraintNetwork(ckt, nominal_modes={"T1": "cutoff"})
        cutoff = next(c for c in net.constraints if c.name == "CutoffIb(T1)")
        conducting = next(c for c in net.constraints if c.name == "Vbe(T1)")
        unknown = {name: None for name in net.variables}
        assert cutoff.applicable(unknown)
        assert not conducting.applicable(unknown)

    def test_diode_mode_guards_follow_estimates(self):
        net = ConstraintNetwork(diode_resistor_circuit(), nominal_modes={"d1": "on"})
        on = next(c for c in net.constraints if c.name == "DiodeOn(d1)")
        leak = next(c for c in net.constraints if c.name == "DiodeLeak(d1)")
        # Unknown estimates: nominal mode (conducting) applies.
        unknown = {"V(n1)": None, "V(n2)": None}
        assert on.applicable(unknown)
        assert not leak.applicable(unknown)
        # Measured 0.2 V across the junction: blocking entailed.
        est = {
            "V(n1)": FuzzyInterval.crisp(2.2),
            "V(n2)": FuzzyInterval.crisp(2.0),
        }
        assert not on.applicable(est)
        assert leak.applicable(est)

    def test_bjt_saturation_entailment_disables_beta(self):
        net = ConstraintNetwork(three_stage_amplifier())
        beta = next(c for c in net.constraints if c.name == "Beta(T2)")
        est = {
            "V(v1)": FuzzyInterval.crisp(13.7),
            "V(n2)": FuzzyInterval.crisp(13.0),
            "V(v2)": FuzzyInterval.crisp(13.1),
        }
        assert not beta.applicable(est)

    def test_unmodelled_component_kind_rejected(self):
        class Gizmo(Resistor):
            pass

        ckt = Circuit("g")
        ckt.add(VoltageSource("V1", 1.0, p="a", n=GROUND))
        ckt.add(Gizmo("G1", 1e3, a="a", b=GROUND))
        with pytest.raises(ValueError, match="Gizmo"):
            ConstraintNetwork(ckt)
