"""Tests for component models and their fuzzy parameters."""

import pytest

from repro.circuit import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)


class TestResistor:
    def test_fuzzy_resistance_reflects_tolerance(self):
        r = Resistor("R1", 10e3, 0.05, a="x", b="y")
        fz = r.fuzzy_params()["resistance"]
        assert fz.core == (10e3, 10e3)
        assert fz.support == (9.5e3, 10.5e3)

    def test_zero_tolerance_is_crisp(self):
        r = Resistor("R1", 10e3, 0.0, a="x", b="y")
        assert r.fuzzy_params()["resistance"].is_crisp_number

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", 0.0, a="x", b="y")

    def test_clone_roundtrip(self):
        r = Resistor("R1", 10e3, 0.02, a="x", b="y")
        c = r.clone()
        assert (c.name, c.resistance, c.tolerance) == ("R1", 10e3, 0.02)
        assert c.net("a").name == "x"


class TestCapacitor:
    def test_params(self):
        c = Capacitor("C1", 1e-6, a="x", b="y")
        assert "capacitance" in c.fuzzy_params()

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            Capacitor("C1", -1e-6, a="x", b="y")

    def test_clone(self):
        c = Capacitor("C1", 1e-6, a="x", b="y").clone()
        assert c.capacitance == 1e-6


class TestDiode:
    def test_leak_bound_matches_paper_shape(self):
        """The <=100uA condition as the fuzzy set [-1, 100, 0, 10] (uA)."""
        d = Diode("d1", leak_bound=100e-6, leak_soft=10e-6, anode="a", cathode="c")
        leak = d.fuzzy_params()["leak"]
        assert leak.m2 == pytest.approx(100e-6)
        assert leak.beta == pytest.approx(10e-6)
        assert leak.alpha == 0.0

    def test_v_on_fuzzy(self):
        d = Diode("d1", v_on=0.7, tolerance=0.05, anode="a", cathode="c")
        von = d.fuzzy_params()["v_on"]
        assert von.core == (0.7, 0.7)
        assert von.alpha == pytest.approx(0.035)

    def test_clone(self):
        d = Diode("d1", v_on=0.6, anode="a", cathode="c").clone()
        assert d.v_on == 0.6


class TestBJT:
    def test_params(self):
        t = BJT("T1", beta=300.0, c="c", b="b", e="e")
        params = t.fuzzy_params()
        assert params["beta"].core == (300.0, 300.0)
        assert params["beta"].support == (270.0, 330.0)  # 10% default
        assert params["vbe_on"].core == (0.7, 0.7)

    def test_non_positive_beta_rejected(self):
        with pytest.raises(ValueError):
            BJT("T1", beta=0.0, c="c", b="b", e="e")

    def test_clone(self):
        t = BJT("T1", beta=200.0, vbe_on=0.65, c="c", b="b", e="e").clone()
        assert (t.beta, t.vbe_on) == (200.0, 0.65)


class TestAmplifier:
    def test_gain_tolerance_is_absolute(self):
        """Paper figure 2: amp3 is [3, 3, 0.05, 0.05] — same 0.05 at gain 3."""
        a = Amplifier("amp3", 3.0, 0.05, inp="i", out="o")
        gain = a.fuzzy_params()["gain"]
        assert gain.as_tuple() == (3.0, 3.0, 0.05, 0.05)

    def test_clone(self):
        a = Amplifier("amp1", 2.0, inp="i", out="o").clone()
        assert a.gain == 2.0


class TestSources:
    def test_voltage_source_crisp_by_default(self):
        v = VoltageSource("V1", 5.0, p="p", n="n")
        assert v.fuzzy_params()["voltage"].is_crisp_number

    def test_voltage_source_with_tolerance(self):
        v = VoltageSource("V1", 5.0, tolerance=0.01, p="p", n="n")
        assert v.fuzzy_params()["voltage"].support == (4.95, 5.05)

    def test_current_source(self):
        i = CurrentSource("I1", 1e-3, p="p", n="n")
        assert i.fuzzy_params()["current"].core == (1e-3, 1e-3)

    def test_clones(self):
        assert VoltageSource("V1", 5.0, p="p", n="n").clone().voltage == 5.0
        assert CurrentSource("I1", 1e-3, p="p", n="n").clone().current == 1e-3
