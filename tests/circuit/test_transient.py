"""Tests for the backward-Euler transient solver."""

import math

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    GROUND,
    Resistor,
    TransientSolver,
    VoltageSource,
    rc_lowpass,
    step_waveform,
)


def rc_circuit(r=1e3, c=1e-6):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("Vin", 0.0, p="in", n=GROUND))
    ckt.add(Resistor("R1", r, a="in", b="out"))
    ckt.add(Capacitor("C1", c, a="out", b=GROUND))
    return ckt


class TestWaveforms:
    def test_step(self):
        wave = step_waveform(0.0, 5.0, at=1e-3)
        assert wave(0.0) == 0.0
        assert wave(1e-3) == 5.0
        assert wave(2e-3) == 5.0


class TestStepResponse:
    def test_matches_analytic_rc_charge(self):
        """v(t) = V (1 - exp(-t/RC)) within discretisation error."""
        ckt = rc_circuit()
        tau = 1e-3
        solver = TransientSolver(
            ckt, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=2e-5, initial="zero"
        )
        result = solver.run(5e-3)
        for t in (5e-4, 1e-3, 2e-3, 4e-3):
            analytic = 5.0 * (1.0 - math.exp(-t / tau))
            assert result.voltage_at("out", t) == pytest.approx(analytic, abs=0.05)

    def test_dc_initial_state_starts_settled(self):
        """With a constant source and DC init, nothing moves."""
        ckt = rc_circuit()
        ckt.component("Vin").voltage = 3.0
        result = TransientSolver(ckt, dt=1e-4, initial="dc").run(1e-3)
        for v in result.voltage("out"):
            assert v == pytest.approx(3.0, abs=1e-4)  # gmin leakage

    def test_step_at_zero_produces_transient_from_dc_init(self):
        """The pre-step steady state is the waveform value just before 0."""
        ckt = rc_circuit()
        solver = TransientSolver(
            ckt, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=2e-5, initial="dc"
        )
        result = solver.run(2e-3)
        assert result.voltage_at("out", 0.0) == pytest.approx(0.0, abs=0.2)
        assert result.voltage_at("out", 2e-3) > 4.0

    def test_monotone_charging(self):
        ckt = rc_circuit()
        result = TransientSolver(
            ckt, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=5e-5, initial="zero"
        ).run(3e-3)
        voltages = result.voltage("out")
        assert all(b >= a - 1e-9 for a, b in zip(voltages, voltages[1:]))

    def test_capacitor_current_decays(self):
        ckt = rc_circuit()
        result = TransientSolver(
            ckt, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=5e-5, initial="zero"
        ).run(5e-3)
        early = abs(result.points[2].current("C1"))
        late = abs(result.points[-1].current("C1"))
        assert early > 10 * late

    def test_two_stage_ladder_second_lags_first(self):
        golden = rc_lowpass(2)
        result = TransientSolver(
            golden, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=5e-5, initial="zero"
        ).run(2e-3)
        assert result.voltage_at("m2", 1e-3) < result.voltage_at("m1", 1e-3)

    def test_source_restored_after_run(self):
        ckt = rc_circuit()
        original = ckt.component("Vin").voltage
        TransientSolver(
            ckt, waveforms={"Vin": step_waveform(0.0, 5.0)}, dt=1e-4, initial="zero"
        ).run(1e-3)
        assert ckt.component("Vin").voltage == original

    def test_companion_elements_hidden(self):
        ckt = rc_circuit()
        result = TransientSolver(ckt, dt=1e-4, initial="zero").run(2e-4)
        for op in result.points:
            assert not any(k.startswith("__") for k in op.currents)


class TestValidation:
    def test_bad_dt(self):
        with pytest.raises(ValueError):
            TransientSolver(rc_circuit(), dt=0.0)

    def test_bad_initial(self):
        with pytest.raises(ValueError):
            TransientSolver(rc_circuit(), initial="warm")

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            TransientSolver(rc_circuit(), dt=1e-4).run(0.0)

    def test_waveform_target_must_be_source(self):
        with pytest.raises(ValueError, match="not a voltage source"):
            TransientSolver(rc_circuit(), waveforms={"R1": step_waveform(0, 1)})

    def test_result_indexing(self):
        result = TransientSolver(rc_circuit(), dt=1e-4, initial="zero").run(1e-3)
        assert len(result) == 11
        assert result.index_of(5.4e-4) == 5
