"""Tests for the SPICE-subset netlist reader/writer."""

import pytest

from repro.circuit import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    DCSolver,
    Diode,
    Resistor,
    VoltageSource,
    three_stage_amplifier,
)
from repro.circuit.spice import NetlistError, parse_netlist, parse_value, write_netlist


class TestValues:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("4.7k", 4700.0),
            ("2meg", 2e6),
            ("1m", 1e-3),
            ("100u", 1e-4),
            ("10n", 1e-8),
            ("2.2p", 2.2e-12),
            ("1g", 1e9),
            ("1e3", 1000.0),
            ("-5", -5.0),
            ("3.3K", 3300.0),  # case-insensitive
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_value("lots")
        with pytest.raises(ValueError):
            parse_value("1.2.3")

    def test_unknown_suffix(self):
        with pytest.raises(ValueError):
            parse_value("4q")


SAMPLE = """
.title sample board
* a comment line
Vcc vcc 0 18
R1 vcc n1 200k tol=0.05
R3 n1 0 24k
Q1 vcc n1 v1 300 vbe=0.7
R2 v1 0 12k
C1 v1 0 1u
D1 n1 dmid von=0.6
R9 dmid 0 5k
E1 v1 buffered 2.0 tol=0.05
Iload buffered 0 1m
"""


class TestParsing:
    def test_full_card_set(self):
        circuit = parse_netlist(SAMPLE)
        assert circuit.name == "sample board"
        kinds = {c.name: type(c) for c in circuit.components}
        assert kinds == {
            "Vcc": VoltageSource,
            "R1": Resistor,
            "R3": Resistor,
            "Q1": BJT,
            "R2": Resistor,
            "C1": Capacitor,
            "D1": Diode,
            "R9": Resistor,
            "E1": Amplifier,
            "Iload": CurrentSource,
        }

    def test_parameters(self):
        circuit = parse_netlist(SAMPLE)
        assert circuit.component("R1").resistance == 200e3
        assert circuit.component("R1").tolerance == 0.05
        assert circuit.component("Q1").beta == 300.0
        assert circuit.component("D1").v_on == pytest.approx(0.6)
        assert circuit.component("C1").capacitance == pytest.approx(1e-6)
        assert circuit.component("E1").gain == 2.0
        assert circuit.component("Iload").current == pytest.approx(1e-3)

    def test_wiring(self):
        circuit = parse_netlist(SAMPLE)
        q1 = circuit.component("Q1")
        assert q1.net("c").name == "vcc"
        assert q1.net("b").name == "n1"
        assert q1.net("e").name == "v1"

    def test_comments_and_blanks_ignored(self):
        circuit = parse_netlist("* nothing\n\nV1 a 0 5\nR1 a 0 1k\n")
        assert len(circuit.components) == 2

    def test_unknown_dot_cards_ignored(self):
        circuit = parse_netlist(".option whatever\nV1 a 0 5\nR1 a 0 1k\n")
        assert len(circuit.components) == 2

    def test_unknown_card_kind(self):
        with pytest.raises(NetlistError, match="line 1"):
            parse_netlist("Xsub a b weird\n")

    def test_short_card(self):
        with pytest.raises(NetlistError, match="expected"):
            parse_netlist("R1 a 1k\n")

    def test_duplicate_name(self):
        with pytest.raises(NetlistError, match="duplicate"):
            parse_netlist("R1 a 0 1k\nR1 b 0 2k\n")

    def test_parsed_circuit_simulates(self):
        circuit = parse_netlist(
            ".title div\nV1 top 0 10\nR1 top mid 1k\nR2 mid 0 1k\n"
        )
        op = DCSolver(circuit).solve()
        assert op.voltage("mid") == pytest.approx(5.0, rel=1e-3)


class TestRoundTrip:
    def test_three_stage_round_trip(self):
        golden = three_stage_amplifier()
        text = write_netlist(golden)
        parsed = parse_netlist(text)
        assert parsed.name == golden.name
        assert [c.name for c in parsed.components] == [
            c.name for c in golden.components
        ]
        op_a = DCSolver(golden).solve()
        op_b = DCSolver(parsed).solve()
        for net in ("v1", "v2", "vs"):
            assert op_a.voltage(net) == pytest.approx(op_b.voltage(net), rel=1e-9)

    def test_sample_round_trip_values(self):
        circuit = parse_netlist(SAMPLE)
        again = parse_netlist(write_netlist(circuit))
        for a, b in zip(circuit.components, again.components):
            assert type(a) is type(b)
            assert a.name == b.name
            assert {p: n.name for p, n in a.pins.items()} == {
                p: n.name for p, n in b.pins.items()
            }
