"""Tests for the DC operating-point simulator."""

import pytest

from repro.circuit import (
    Amplifier,
    BJT,
    Capacitor,
    Circuit,
    CurrentSource,
    DCSolver,
    Diode,
    GROUND,
    Resistor,
    SimulationError,
    VoltageSource,
)


def solve(circuit):
    return DCSolver(circuit).solve()


class TestLinearCircuits:
    def test_voltage_divider(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", 10.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="m"))
        ckt.add(Resistor("R2", 3e3, a="m", b=GROUND))
        op = solve(ckt)
        assert op.voltage("m") == pytest.approx(7.5, rel=1e-4)
        assert op.current("R1") == pytest.approx(2.5e-3, rel=1e-4)

    def test_source_branch_current_direction(self):
        ckt = Circuit("loop")
        ckt.add(VoltageSource("V1", 10.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b=GROUND))
        op = solve(ckt)
        # p->n branch current through the source is negative: the source
        # pushes current out of p.
        assert op.current("V1") == pytest.approx(-10e-3, rel=1e-4)

    def test_current_source_into_resistor(self):
        ckt = Circuit("isrc")
        ckt.add(CurrentSource("I1", 2e-3, p="x", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="x", b=GROUND))
        op = solve(ckt)
        assert op.voltage("x") == pytest.approx(2.0, rel=1e-3)

    def test_series_resistors(self):
        ckt = Circuit("series")
        ckt.add(VoltageSource("V1", 9.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="b"))
        ckt.add(Resistor("R2", 2e3, a="b", b="c"))
        ckt.add(Resistor("R3", 3e3, a="c", b=GROUND))
        op = solve(ckt)
        assert op.voltage("b") == pytest.approx(9.0 * 5.0 / 6.0, rel=1e-4)
        assert op.voltage("c") == pytest.approx(9.0 * 3.0 / 6.0, rel=1e-4)

    def test_capacitor_open_at_dc(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("V1", 5.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="m"))
        ckt.add(Capacitor("C1", 1e-6, a="m", b=GROUND))
        ckt.add(Resistor("R2", 1e3, a="m", b=GROUND))
        op = solve(ckt)
        assert op.voltage("m") == pytest.approx(2.5, rel=1e-3)
        assert op.current("C1") == 0.0

    def test_ground_voltage_is_zero(self):
        ckt = Circuit("g")
        ckt.add(VoltageSource("V1", 3.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b=GROUND))
        assert solve(ckt).voltage(GROUND) == 0.0


class TestAmplifiers:
    def test_vcvs_gain(self):
        ckt = Circuit("amp")
        ckt.add(VoltageSource("V1", 2.0, p="i", n=GROUND))
        ckt.add(Amplifier("A1", 3.0, inp="i", out="o"))
        op = solve(ckt)
        assert op.voltage("o") == pytest.approx(6.0, rel=1e-6)

    def test_cascade_matches_figure2(self):
        from repro.circuit import amplifier_cascade

        op = solve(amplifier_cascade())
        assert op.voltage("b") == pytest.approx(3.0, rel=1e-6)
        assert op.voltage("c") == pytest.approx(6.0, rel=1e-6)
        assert op.voltage("d") == pytest.approx(9.0, rel=1e-6)

    def test_infinite_input_impedance(self):
        """The amplifier input draws no current from the divider."""
        ckt = Circuit("amp-load")
        ckt.add(VoltageSource("V1", 10.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="m"))
        ckt.add(Resistor("R2", 1e3, a="m", b=GROUND))
        ckt.add(Amplifier("A1", 2.0, inp="m", out="o"))
        op = solve(ckt)
        assert op.voltage("m") == pytest.approx(5.0, rel=1e-3)
        assert op.voltage("o") == pytest.approx(10.0, rel=1e-3)


class TestDiodes:
    def _diode_circuit(self, vin):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", vin, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b="k"))
        ckt.add(Diode("D1", v_on=0.7, anode="k", cathode=GROUND))
        return ckt

    def test_forward_conduction(self):
        op = solve(self._diode_circuit(5.0))
        assert op.state("D1") == "on"
        assert op.voltage("k") == pytest.approx(0.7, abs=1e-6)
        assert op.current("D1") == pytest.approx(4.3e-3, rel=1e-3)

    def test_blocking_below_threshold(self):
        op = solve(self._diode_circuit(0.5))
        assert op.state("D1") == "off"
        assert op.current("D1") == 0.0
        assert op.voltage("k") == pytest.approx(0.5, rel=1e-3)

    def test_reverse_blocking(self):
        op = solve(self._diode_circuit(-5.0))
        assert op.state("D1") == "off"


class TestBJTs:
    def test_three_stage_linear_region(self):
        """The paper's claim: published values keep all three active."""
        from repro.circuit import three_stage_amplifier

        op = solve(three_stage_amplifier())
        assert op.device_states == {"T1": "active", "T2": "active", "T3": "active"}
        assert op.voltage("v1") == pytest.approx(1.221, abs=0.01)
        assert op.voltage("v2") == pytest.approx(17.02, abs=0.05)
        assert op.voltage("vs") == pytest.approx(16.32, abs=0.05)

    def test_beta_relation_holds(self):
        from repro.circuit import three_stage_amplifier

        op = solve(three_stage_amplifier())
        assert op.current("T2", "c") == pytest.approx(
            200.0 * op.current("T2", "b"), rel=1e-6
        )
        assert op.current("T2", "e") == pytest.approx(
            op.current("T2", "b") + op.current("T2", "c"), rel=1e-6
        )

    def test_cutoff(self):
        ckt = Circuit("cutoff")
        ckt.add(VoltageSource("Vcc", 10.0, p="vcc", n=GROUND))
        ckt.add(Resistor("Rc", 1e3, a="vcc", b="c"))
        ckt.add(Resistor("Rb", 100e3, a="b", b=GROUND))
        ckt.add(BJT("T1", beta=100.0, c="c", b="b", e=GROUND))
        op = solve(ckt)
        assert op.state("T1") == "cutoff"
        assert op.voltage("c") == pytest.approx(10.0, rel=1e-3)

    def test_saturation(self):
        ckt = Circuit("sat")
        ckt.add(VoltageSource("Vcc", 5.0, p="vcc", n=GROUND))
        ckt.add(Resistor("Rb", 10e3, a="vcc", b="b"))
        ckt.add(Resistor("Rc", 10e3, a="vcc", b="c"))
        ckt.add(BJT("T1", beta=100.0, c="c", b="b", e=GROUND))
        op = solve(ckt)
        assert op.state("T1") == "saturation"
        assert op.voltage("c") == pytest.approx(0.2, abs=1e-6)

    def test_emitter_follower(self):
        ckt = Circuit("follower")
        ckt.add(VoltageSource("Vcc", 10.0, p="vcc", n=GROUND))
        ckt.add(VoltageSource("Vb", 5.0, p="b", n=GROUND))
        ckt.add(BJT("T1", beta=100.0, c="vcc", b="b", e="e"))
        ckt.add(Resistor("Re", 1e3, a="e", b=GROUND))
        op = solve(ckt)
        assert op.state("T1") == "active"
        assert op.voltage("e") == pytest.approx(4.3, abs=1e-6)


class TestKCLInvariant:
    """Net current balance at the solution (physical sanity)."""

    @pytest.mark.parametrize(
        "builder",
        [
            "three_stage_amplifier",
            "diode_resistor_circuit",
        ],
    )
    def test_kcl_at_every_net(self, builder):
        import repro.circuit as circuit_mod

        ckt = getattr(circuit_mod, builder)()
        op = solve(ckt)
        for net in ckt.non_ground_nets:
            total = 0.0
            for comp, pin in ckt.components_on(net):
                if isinstance(comp, Resistor):
                    current = op.current(comp.name)
                    total += current if pin == "a" else -current
                elif isinstance(comp, (VoltageSource,)):
                    current = op.current(comp.name)
                    total += current if pin == "p" else -current
                elif isinstance(comp, Diode):
                    current = op.current(comp.name)
                    total += current if pin == "anode" else -current
                elif isinstance(comp, BJT):
                    if pin == "b":
                        total += op.current(comp.name, "b")
                    elif pin == "c":
                        total += op.current(comp.name, "c")
                    else:
                        total -= op.current(comp.name, "e")
            assert total == pytest.approx(0.0, abs=1e-6)


class TestFailureModes:
    def test_unsupported_component_kind(self):
        from repro.circuit.netlist import Component

        class Weird(Component):
            PINS = ("a", "b")

            def clone(self):
                return self

        ckt = Circuit("weird")
        ckt.add(VoltageSource("V1", 1.0, p="a", n=GROUND))
        ckt.add(Resistor("R1", 1e3, a="a", b=GROUND))
        ckt.add(Weird("W1", a="a", b=GROUND))
        with pytest.raises(SimulationError, match="Weird"):
            solve(ckt)

    def test_invalid_circuit_raises_before_solving(self):
        ckt = Circuit("no-ground")
        ckt.add(Resistor("R1", 1e3, a="x", b="y"))
        ckt.add(Resistor("R2", 1e3, a="y", b="x"))
        with pytest.raises(ValueError):
            DCSolver(ckt)
