"""Tests for the paper circuits and the parametric generators."""

import random

import pytest

from repro.circuit import (
    DCSolver,
    amplifier_cascade,
    amplifier_chain,
    diode_resistor_circuit,
    divider_tree,
    resistor_ladder,
    three_stage_amplifier,
)
from repro.circuit.library import THREE_STAGE_PROBES
from repro.circuit.measurements import Measurement, probe, probe_all


class TestPaperCircuits:
    def test_cascade_structure(self):
        ckt = amplifier_cascade()
        assert {c.name for c in ckt.components} == {"Va", "amp1", "amp2", "amp3"}
        assert ckt.component("amp2").gain == 2.0

    def test_cascade_nominal(self):
        op = DCSolver(amplifier_cascade()).solve()
        assert op.voltage("d") == pytest.approx(9.0, rel=1e-6)

    def test_diode_circuit_values(self):
        ckt = diode_resistor_circuit()
        assert ckt.component("r1").resistance == 10e3
        assert ckt.component("r1").tolerance == 0.0  # crisp, as the paper treats it
        assert ckt.component("d1").leak_bound == pytest.approx(100e-6)

    def test_three_stage_published_values(self):
        ckt = three_stage_amplifier()
        values = {
            "R1": 200e3,
            "R2": 12e3,
            "R3": 24e3,
            "R4": 3e3,
            "R5": 2.2e3,
            "R6": 1.8e3,
        }
        for name, expected in values.items():
            assert ckt.component(name).resistance == expected
        betas = {"T1": 300.0, "T2": 200.0, "T3": 100.0}
        for name, expected in betas.items():
            assert ckt.component(name).beta == expected
        assert ckt.component("Vcc").voltage == 18.0

    def test_three_stage_probe_points_exist(self):
        ckt = three_stage_amplifier()
        nets = {n.name for n in ckt.nets}
        for p in THREE_STAGE_PROBES:
            assert p in nets

    def test_three_stage_all_linear(self):
        op = DCSolver(three_stage_amplifier()).solve()
        assert set(op.device_states.values()) == {"active"}


class TestGenerators:
    def test_ladder_size(self):
        ckt = resistor_ladder(4)
        assert len(ckt.components) == 1 + 2 * 4
        DCSolver(ckt).solve()

    def test_ladder_deterministic_without_rng(self):
        a = resistor_ladder(3)
        b = resistor_ladder(3)
        assert [c.resistance for c in a.components[1:]] == [
            c.resistance for c in b.components[1:]
        ]

    def test_ladder_randomised(self):
        ckt = resistor_ladder(3, rng=random.Random(42))
        resistances = {c.resistance for c in ckt.components[1:]}
        assert len(resistances) > 2

    def test_ladder_requires_sections(self):
        with pytest.raises(ValueError):
            resistor_ladder(0)

    def test_chain_voltages_bounded(self):
        ckt = amplifier_chain(6)
        op = DCSolver(ckt).solve()
        for i in range(1, 7):
            assert abs(op.voltage(f"s{i}")) <= 4.0

    def test_chain_requires_stages(self):
        with pytest.raises(ValueError):
            amplifier_chain(0)

    def test_divider_tree_attenuates_each_level(self):
        ckt = divider_tree(2)
        op = DCSolver(ckt).solve()
        # Each level divides (the lower levels load the upper dividers).
        assert 0.0 < op.voltage("tl") < op.voltage("t")
        assert 0.0 < op.voltage("tll") < op.voltage("tl")
        # The tree is symmetric.
        assert op.voltage("tl") == pytest.approx(op.voltage("tr"), rel=1e-9)

    def test_divider_tree_requires_depth(self):
        with pytest.raises(ValueError):
            divider_tree(0)


class TestMeasurements:
    def test_probe_wraps_reading(self):
        op = DCSolver(three_stage_amplifier()).solve()
        m = probe(op, "v1", imprecision=0.05)
        assert m.point == "V(v1)"
        assert m.value.core[0] == pytest.approx(op.voltage("v1"))
        assert m.value.alpha == pytest.approx(0.05)

    def test_probe_relative_imprecision(self):
        op = DCSolver(three_stage_amplifier()).solve()
        m = probe(op, "vs", imprecision=0.01, relative=True)
        assert m.value.alpha == pytest.approx(abs(op.voltage("vs")) * 0.01)

    def test_probe_all(self):
        op = DCSolver(three_stage_amplifier()).solve()
        ms = probe_all(op, ["vs", "v2", "v1"])
        assert [m.point for m in ms] == ["V(vs)", "V(v2)", "V(v1)"]

    def test_measurement_repr(self):
        from repro.fuzzy import FuzzyInterval

        m = Measurement("V(x)", FuzzyInterval.crisp(1.0))
        assert "V(x)" in repr(m)
