"""Property-based tests of the DC simulator's physical invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    BJT,
    Circuit,
    DCSolver,
    Diode,
    GROUND,
    Resistor,
    VoltageSource,
    resistor_ladder,
)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_ladder(seed: int, sections: int, supply: float) -> Circuit:
    return resistor_ladder(
        sections, supply=supply, rng=random.Random(seed)
    )


class TestLinearInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sections=st.integers(min_value=1, max_value=5),
        supply=st.floats(min_value=0.5, max_value=48.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_kcl_holds_everywhere(self, seed, sections, supply):
        circuit = _random_ladder(seed, sections, supply)
        op = DCSolver(circuit).solve()
        for net in circuit.non_ground_nets:
            total = 0.0
            for comp, pin in circuit.components_on(net):
                if isinstance(comp, Resistor):
                    current = op.current(comp.name)
                    total += current if pin == "a" else -current
                elif isinstance(comp, VoltageSource):
                    current = op.current(comp.name)
                    total += current if pin == "p" else -current
            assert total == pytest.approx(0.0, abs=1e-6)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sections=st.integers(min_value=1, max_value=5),
    )
    @settings(**_SETTINGS)
    def test_voltages_bounded_by_supply(self, seed, sections):
        circuit = _random_ladder(seed, sections, 10.0)
        op = DCSolver(circuit).solve()
        for net in circuit.non_ground_nets:
            v = op.voltage(net)
            assert -1e-6 <= v <= 10.0 + 1e-6

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sections=st.integers(min_value=1, max_value=4),
        scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_linearity_in_the_source(self, seed, sections, scale):
        """Scaling the supply scales every voltage (pure resistor network)."""
        base = _random_ladder(seed, sections, 10.0)
        scaled = _random_ladder(seed, sections, 10.0 * scale)
        op_base = DCSolver(base).solve()
        op_scaled = DCSolver(scaled).solve()
        for net in base.non_ground_nets:
            if net.name == "in":
                continue
            assert op_scaled.voltage(net) == pytest.approx(
                op_base.voltage(net) * scale, rel=1e-6, abs=1e-9
            )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sections=st.integers(min_value=2, max_value=5),
    )
    @settings(**_SETTINGS)
    def test_ladder_voltages_monotone_decreasing(self, seed, sections):
        circuit = _random_ladder(seed, sections, 10.0)
        op = DCSolver(circuit).solve()
        voltages = [op.voltage(f"n{i}") for i in range(1, sections + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(voltages, voltages[1:]))


class TestNonlinearInvariants:
    @given(
        vin=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        r=st.floats(min_value=100.0, max_value=100e3, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_diode_never_conducts_backwards(self, vin, r):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", vin, p="a", n=GROUND))
        ckt.add(Resistor("R1", r, a="a", b="k"))
        ckt.add(Diode("D1", anode="k", cathode=GROUND))
        op = DCSolver(ckt).solve()
        assert op.current("D1") >= -1e-9
        if op.state("D1") == "off":
            vd = op.voltage("k")
            assert vd <= 0.7 + 1e-6

    @given(
        vb=st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
        re=st.floats(min_value=100.0, max_value=10e3, allow_nan=False),
        beta=st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_follower_tracks_base_minus_vbe(self, vb, re, beta):
        ckt = Circuit("f")
        ckt.add(VoltageSource("Vcc", 10.0, p="vcc", n=GROUND))
        ckt.add(VoltageSource("Vb", vb, p="b", n=GROUND))
        ckt.add(BJT("T1", beta=beta, c="vcc", b="b", e="e"))
        ckt.add(Resistor("Re", re, a="e", b=GROUND))
        op = DCSolver(ckt).solve()
        if vb > 0.75:
            assert op.state("T1") == "active"
            assert op.voltage("e") == pytest.approx(vb - 0.7, abs=1e-6)
            assert op.current("T1", "b") >= -1e-12
        elif vb < 0.65:
            assert op.state("T1") == "cutoff"
            assert op.voltage("e") == pytest.approx(0.0, abs=1e-3)

    @given(
        beta=st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
    )
    @settings(**_SETTINGS)
    def test_bjt_current_relations_in_active_region(self, beta):
        ckt = Circuit("b")
        ckt.add(VoltageSource("Vcc", 12.0, p="vcc", n=GROUND))
        ckt.add(VoltageSource("Vb", 2.0, p="b", n=GROUND))
        ckt.add(BJT("T1", beta=beta, c="vcc", b="b", e="e"))
        ckt.add(Resistor("Re", 1e3, a="e", b=GROUND))
        op = DCSolver(ckt).solve()
        assert op.state("T1") == "active"
        assert op.current("T1", "c") == pytest.approx(
            beta * op.current("T1", "b"), rel=1e-9
        )
        assert op.current("T1", "e") == pytest.approx(
            op.current("T1", "b") + op.current("T1", "c"), rel=1e-9
        )
