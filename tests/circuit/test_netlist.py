"""Tests for netlist structure."""

import pytest

from repro.circuit import Circuit, GROUND, Resistor, VoltageSource
from repro.circuit.netlist import Net


class TestNet:
    def test_ground_detection(self):
        assert Net("0").is_ground
        assert not Net("n1").is_ground

    def test_nets_order_and_hash(self):
        assert Net("a") == Net("a")
        assert len({Net("a"), Net("a"), Net("b")}) == 2
        assert sorted([Net("b"), Net("a")]) == [Net("a"), Net("b")]


class TestComponentWiring:
    def test_pins_connected(self):
        r = Resistor("R1", 1e3, a="x", b="y")
        assert r.net("a") == Net("x")
        assert r.net("b") == Net("y")

    def test_missing_pin_rejected(self):
        with pytest.raises(ValueError, match="unconnected"):
            Resistor("R1", 1e3, a="x")

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Resistor("R1", 1e3, a="x", b="y", c="z")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Resistor("", 1e3, a="x", b="y")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", 1e3, tolerance=-0.1, a="x", b="y")

    def test_rewire(self):
        r = Resistor("R1", 1e3, a="x", b="y")
        r.rewire("b", "z")
        assert r.net("b") == Net("z")

    def test_rewire_unknown_pin(self):
        r = Resistor("R1", 1e3, a="x", b="y")
        with pytest.raises(KeyError):
            r.rewire("c", "z")

    def test_kind(self):
        assert Resistor("R1", 1e3, a="x", b="y").kind == "Resistor"


@pytest.fixture
def divider():
    ckt = Circuit("divider")
    ckt.add(VoltageSource("V1", 10.0, p="top", n=GROUND))
    ckt.add(Resistor("R1", 1e3, a="top", b="mid"))
    ckt.add(Resistor("R2", 1e3, a="mid", b=GROUND))
    return ckt


class TestCircuit:
    def test_add_and_lookup(self, divider):
        assert divider.component("R1").resistance == 1e3
        assert "R1" in divider
        assert "R9" not in divider

    def test_duplicate_name_rejected(self, divider):
        with pytest.raises(ValueError, match="duplicate"):
            divider.add(Resistor("R1", 2e3, a="top", b="mid"))

    def test_unknown_component_lookup(self, divider):
        with pytest.raises(KeyError):
            divider.component("R9")

    def test_nets_collected(self, divider):
        names = [n.name for n in divider.nets]
        assert names == sorted(["0", "mid", "top"])

    def test_non_ground_nets(self, divider):
        assert all(not n.is_ground for n in divider.non_ground_nets)

    def test_components_on_net(self, divider):
        touching = divider.components_on(Net("mid"))
        assert {(c.name, pin) for c, pin in touching} == {("R1", "b"), ("R2", "a")}

    def test_validate_ok(self, divider):
        divider.validate()

    def test_validate_missing_ground(self):
        ckt = Circuit("floating")
        ckt.add(Resistor("R1", 1e3, a="x", b="y"))
        ckt.add(Resistor("R2", 1e3, a="y", b="x"))
        with pytest.raises(ValueError, match="ground"):
            ckt.validate()

    def test_validate_dangling_net(self):
        ckt = Circuit("dangling")
        ckt.add(VoltageSource("V1", 1.0, p="a", n="0"))
        ckt.add(Resistor("R1", 1e3, a="a", b="loose"))
        with pytest.raises(ValueError, match="loose"):
            ckt.validate()

    def test_validate_allows_float_nets(self):
        ckt = Circuit("faulted")
        ckt.add(VoltageSource("V1", 1.0, p="a", n="0"))
        ckt.add(Resistor("R1", 1e3, a="a", b="0"))
        ckt.add(Resistor("R2", 1e3, a="a", b="__float_R2_b"))
        ckt.validate()

    def test_clone_is_deep(self, divider):
        clone = divider.clone()
        clone.component("R1").resistance = 9e3
        assert divider.component("R1").resistance == 1e3

    def test_clone_preserves_wiring(self, divider):
        clone = divider.clone()
        assert [c.name for c in clone.components] == [c.name for c in divider.components]
        assert clone.component("R2").net("b").is_ground


class TestFingerprint:
    def test_stable_across_insertion_order(self, divider):
        reordered = Circuit("divider-reordered")
        for comp in reversed(divider.components):
            reordered.add(comp.clone())
        assert divider.fingerprint() == reordered.fingerprint()

    def test_name_and_description_excluded(self, divider):
        clone = divider.clone()
        clone.name = "renamed"
        clone.description = "same electrical content"
        assert clone.fingerprint() == divider.fingerprint()

    def test_parameter_change_alters_fingerprint(self, divider):
        clone = divider.clone()
        clone.component("R1").resistance = 2e3
        assert clone.fingerprint() != divider.fingerprint()

    def test_rewiring_alters_fingerprint(self, divider):
        clone = divider.clone()
        clone.component("R2").rewire("b", "top")
        assert clone.fingerprint() != divider.fingerprint()

    def test_tolerance_contributes(self, divider):
        clone = divider.clone()
        clone.component("R1").tolerance = 0.2
        assert clone.fingerprint() != divider.fingerprint()
