"""Reading sources: determinism, ordering, and the mid-stream fault swap."""

import pytest

from repro.circuit.faults import Fault, FaultKind
from repro.circuit.generators import resistor_ladder
from repro.circuit.library import rc_lowpass
from repro.circuit.transient import TransientSolver, step_waveform
from repro.stream import LiveSimulatorSource, Reading, ReplaySource

LADDER_NETS = ["n1", "n2", "n3"]


def ladder_trace(sections=3, duration=0.005, dt=1e-3):
    circuit = resistor_ladder(sections)
    return TransientSolver(circuit, None, dt=dt).run(duration)


class TestReading:
    def test_point_name_matches_probe_convention(self):
        reading = Reading(t=0.0, net="n2", volts=3.3)
        assert reading.point == "V(n2)"

    def test_to_measurement_wraps_volts(self):
        m = Reading(t=0.0, net="n1", volts=5.0).to_measurement(imprecision=0.1)
        assert m.point == "V(n1)"
        assert m.value.membership(5.0) == pytest.approx(1.0)
        assert m.value.membership(5.2) == pytest.approx(0.0)


class TestReplaySource:
    def test_one_reading_per_net_per_sample(self):
        trace = ladder_trace()
        source = ReplaySource(trace, LADDER_NETS)
        readings = list(source)
        assert len(readings) == len(source) == len(trace) * len(LADDER_NETS)
        first_frame = readings[: len(LADDER_NETS)]
        assert [r.net for r in first_frame] == LADDER_NETS
        assert len({r.t for r in first_frame}) == 1

    def test_times_non_decreasing(self):
        readings = list(ReplaySource(ladder_trace(), LADDER_NETS))
        times = [r.t for r in readings]
        assert times == sorted(times)

    def test_noise_is_seed_deterministic(self):
        trace = ladder_trace()
        a = list(ReplaySource(trace, LADDER_NETS, noise=0.05, seed=7))
        b = list(ReplaySource(trace, LADDER_NETS, noise=0.05, seed=7))
        c = list(ReplaySource(trace, LADDER_NETS, noise=0.05, seed=8))
        assert a == b
        assert a != c
        clean = list(ReplaySource(trace, LADDER_NETS))
        assert a != clean  # the noise actually perturbs something

    def test_stride_thins_the_stream(self):
        trace = ladder_trace()
        full = list(ReplaySource(trace, LADDER_NETS))
        thin = ReplaySource(trace, LADDER_NETS, stride=2)
        readings = list(thin)
        assert len(readings) == len(thin) < len(full)
        # Strided frames are a subset of the full stream's frames.
        assert {r.t for r in readings} <= {r.t for r in full}

    def test_validation(self):
        trace = ladder_trace()
        with pytest.raises(ValueError):
            ReplaySource(trace, [])
        with pytest.raises(ValueError):
            ReplaySource(trace, LADDER_NETS, stride=0)
        with pytest.raises(ValueError):
            ReplaySource(trace, LADDER_NETS, noise=-0.1)


class TestLiveSimulatorSource:
    def test_healthy_run_is_steady(self):
        circuit = resistor_ladder(3)
        readings = list(
            LiveSimulatorSource(circuit, LADDER_NETS, duration=0.005, dt=1e-3)
        )
        assert readings, "healthy run must produce readings"
        by_net = {}
        for r in readings:
            by_net.setdefault(r.net, []).append(r.volts)
        # A purely resistive ladder holds its DC values sample to sample.
        for net, volts in by_net.items():
            assert max(volts) - min(volts) < 1e-9, net

    def test_fault_changes_the_suffix(self):
        circuit = resistor_ladder(3)
        fault = Fault(FaultKind.SHORT, "Rp2")
        fault_at = 0.003
        healthy = list(
            LiveSimulatorSource(circuit, LADDER_NETS, duration=0.006, dt=1e-3)
        )
        broken = list(
            LiveSimulatorSource(
                circuit,
                LADDER_NETS,
                duration=0.006,
                dt=1e-3,
                fault=fault,
                fault_at=fault_at,
            )
        )
        pre = [r for r in broken if r.t < fault_at]
        post = [r for r in broken if r.t > fault_at and r.net == "n2"]
        healthy_pre = [r for r in healthy if r.t < fault_at]
        assert pre == healthy_pre  # identical until the unit breaks
        assert post, "must keep streaming after the fault"
        healthy_n2 = healthy[1].volts  # n2 at the first frame
        assert all(abs(r.volts - healthy_n2) > 0.1 for r in post)

    def test_times_strictly_increase_across_the_boundary(self):
        circuit = resistor_ladder(2)
        source = LiveSimulatorSource(
            circuit,
            ["n1"],
            duration=0.006,
            dt=1e-3,
            fault=Fault(FaultKind.OPEN, "Rs2"),
            fault_at=0.003,
        )
        times = [r.t for r in source]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_capacitor_state_carries_across_the_swap(self):
        # An RC chain mid-charge: the faulty continuation must start from
        # the voltages the healthy run reached, not from the broken
        # circuit's own DC steady state — the unit's capacitors do not
        # teleport when a resistor fails.
        circuit = rc_lowpass(stages=2)
        waveforms = {"Vin": step_waveform(0.0, 5.0, at=0.0)}
        dt, fault_at = 1e-4, 2e-3
        source = LiveSimulatorSource(
            circuit,
            ["m1", "m2"],
            duration=6e-3,
            dt=dt,
            fault=Fault(FaultKind.SHORT, "R2"),
            fault_at=fault_at,
            waveforms=waveforms,
        )
        readings = [r for r in source if r.net == "m1"]
        last_pre = max((r for r in readings if r.t <= fault_at), key=lambda r: r.t)
        first_post = min((r for r in readings if r.t > fault_at), key=lambda r: r.t)
        # One backward-Euler step of an RC with tau >> dt moves a few
        # percent at most; a state reset mid-charge would jump volts.
        assert abs(first_post.volts - last_pre.volts) < 0.5

    def test_noise_determinism(self):
        circuit = resistor_ladder(2)
        kwargs = dict(duration=0.004, dt=1e-3, noise=0.02, seed=3)
        a = list(LiveSimulatorSource(circuit, ["n1", "n2"], **kwargs))
        b = list(LiveSimulatorSource(circuit, ["n1", "n2"], **kwargs))
        assert a == b

    def test_validation(self):
        circuit = resistor_ladder(2)
        with pytest.raises(ValueError):
            LiveSimulatorSource(circuit, ["n1"], duration=0.0)
        with pytest.raises(ValueError):
            LiveSimulatorSource(circuit, [], duration=0.01)
        with pytest.raises(ValueError):
            LiveSimulatorSource(
                circuit,
                ["n1"],
                duration=0.01,
                fault=Fault(FaultKind.SHORT, "Rp1"),
                fault_at=0.01,  # == duration: no broken samples to stream
            )
