"""Drift-detector unit tests: firing, hysteresis, re-arming, chaos misfires."""

import pytest

from repro.resilience import FaultPlan, FaultRule, faults
from repro.stream import DetectorConfig, DriftDetector


def feed(detector, net, dc, times):
    """Feed the same Dc sample repeatedly; return per-sample decisions."""
    return [detector.observe(net, dc) for _ in range(times)]


class TestConfig:
    def test_defaults_are_valid(self):
        DetectorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"threshold": 0.0},
            {"threshold": 1.1},
            {"hysteresis": -0.1},
            {"hysteresis": 0.5, "threshold": 0.5},  # hysteresis == threshold
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestDrift:
    def test_healthy_stream_never_fires(self):
        detector = DriftDetector()
        assert not any(feed(detector, "n1", dc=1.0, times=50))
        assert detector.fired == 0
        assert detector.drifted_nets() == []

    def test_drift_fires_once_ewma_crosses(self):
        detector = DriftDetector(DetectorConfig(threshold=0.5, alpha=0.4))
        decisions = feed(detector, "n1", dc=0.0, times=5)
        # The first fully-inconsistent sample seeds the EWMA at 1.0 —
        # already over threshold, so the detector fires immediately.
        assert decisions[0] is True
        assert detector.fired == 1
        assert detector.level("n1") == pytest.approx(1.0)
        assert detector.drifted_nets() == ["n1"]

    def test_gradual_drift_fires_after_smoothing(self):
        detector = DriftDetector(DetectorConfig(threshold=0.5, alpha=0.4))
        assert detector.observe("n1", 1.0) is False  # seeds EWMA at 0
        decisions = feed(detector, "n1", dc=0.2, times=10)
        assert True in decisions
        first_fire = decisions.index(True)
        assert first_fire > 0  # the EWMA needed a few samples to climb
        assert not any(decisions[:first_fire])

    def test_hysteresis_suppresses_flapping(self):
        detector = DriftDetector(DetectorConfig(threshold=0.5, hysteresis=0.2))
        assert detector.observe("n1", 0.0) is True
        # Still broken: every further crossing is swallowed.
        assert not any(feed(detector, "n1", dc=0.0, times=10))
        assert detector.fired == 1
        assert detector.suppressed == 10

    def test_rearms_only_below_threshold_minus_hysteresis(self):
        detector = DriftDetector(
            DetectorConfig(threshold=0.5, hysteresis=0.2, alpha=1.0)
        )
        assert detector.observe("n1", 0.0) is True  # fires, disarms
        # Dc 0.45 → discrepancy 0.55: above threshold, suppressed.
        assert detector.observe("n1", 0.45) is False
        # Dc 0.6 → discrepancy 0.4: inside the hysteresis band — below
        # threshold (no crossing) but not yet re-armed.
        assert detector.observe("n1", 0.6) is False
        assert detector.observe("n1", 0.0) is False  # still disarmed
        detector.observe("n1", 1.0)  # discrepancy 0 → re-arms
        assert detector.observe("n1", 0.0) is True  # fires again
        assert detector.fired == 2

    def test_nets_are_independent(self):
        detector = DriftDetector()
        assert detector.observe("n1", 0.0) is True
        assert detector.observe("n2", 1.0) is False
        # n2's own EWMA has to climb from its healthy seed before firing.
        assert detector.observe("n2", 0.0) is False  # ewma 0.4
        assert detector.observe("n2", 0.0) is True  # ewma 0.64 crosses
        assert detector.fired == 2
        assert detector.drifted_nets() == ["n1", "n2"]


class TestMisfire:
    def test_misfire_point_forces_a_trigger(self):
        faults.install_plan(
            FaultPlan(
                seed=0,
                rules=(FaultRule("stream.detector_misfire", rate=1.0, limit=1),),
            )
        )
        detector = DriftDetector()
        decisions = feed(detector, "n1", dc=1.0, times=5)
        assert decisions.count(True) == 1
        assert detector.misfires == 1
        assert detector.fired == 1  # a misfire is a (wasted) firing

    def test_misfire_draw_is_keyed_per_sample(self):
        # A fractional rate must thin the samples, not behave
        # all-or-nothing: the sha256 draw is keyed on (net, sample#).
        faults.install_plan(FaultPlan.build(seed=0, **{"stream.detector_misfire": 0.5}))
        detector = DriftDetector()
        decisions = feed(detector, "n1", dc=1.0, times=40)
        assert 0 < decisions.count(True) < 40

    def test_no_plan_no_misfires(self):
        detector = DriftDetector()
        assert not any(feed(detector, "n1", dc=1.0, times=20))
        assert detector.misfires == 0
