"""`GET /v1/stream` against a live server: framing, sequencing, lifecycle."""

import http.client
import json
import threading
import time

from repro.server import ServerConfig
from repro.stream.sse import parse_events

from tests.server.test_server import RunningServer


def stream_config(**overrides):
    kwargs = dict(
        port=0, workers=2, queue_size=8, timeout=30.0, drain_grace=30.0,
        max_streams=2, heartbeat=5.0,
    )
    kwargs.update(overrides)
    return ServerConfig(**kwargs)


def open_stream(port, query, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", f"/v1/stream?{query}")
    return conn, conn.getresponse()


def read_stream(port, query, timeout=60.0):
    conn, resp = open_stream(port, query, timeout)
    try:
        body = resp.read()  # Connection: close — EOF ends the stream
    finally:
        conn.close()
    return resp, body


class TestStreamEndpoint:
    def test_sse_framing_sequence_and_heartbeat(self):
        with RunningServer(stream_config(heartbeat=0.05)) as rs:
            # The reference kernel at size 12 makes the baseline tick
            # slow enough that several 50ms heartbeat windows elapse.
            resp, body = read_stream(
                rs.server.port,
                "kernel=reference&size=12&duration=0.004&dt=0.001",
            )
            assert resp.status == 200
            assert resp.getheader("Content-Type").startswith("text/event-stream")
            assert resp.getheader("Connection") == "close"
            assert resp.getheader("Content-Length") is None
            assert resp.getheader("X-Request-Id")

            events = parse_events(body)
            assert events, "stream must contain at least the end event"
            # Gapless, strictly monotonic ids from 0.
            assert [seq for seq, _, _ in events] == list(range(len(events)))
            kinds = [kind for _, kind, _ in events]
            assert kinds[-1] == "end"
            assert "end" not in kinds[:-1]
            assert "heartbeat" in kinds
            assert "update" in kinds
            end = events[-1][2]
            assert end["reason"] == "complete"
            assert end["events"] == len(events) - 1

    def test_update_payloads_carry_the_diagnosis(self):
        with RunningServer(stream_config()) as rs:
            _, body = read_stream(
                rs.server.port,
                "size=6&duration=0.006&dt=0.001&fault=short:Rp3&fault_at=0.003",
            )
            updates = [data for _, kind, data in parse_events(body) if kind == "update"]
            assert updates
            assert updates[0]["consistent"] is True
            final = updates[-1]
            assert final["consistent"] is False
            assert final["candidates"][0] == ["Rp3"]
            assert [u["seq"] for u in updates] == list(range(len(updates)))

    def test_bad_spec_is_a_structured_400(self):
        with RunningServer(stream_config()) as rs:
            resp, body = read_stream(rs.server.port, "size=999")
            assert resp.status == 400
            assert json.loads(body)["error"]["status"] == 400
            resp, _ = read_stream(rs.server.port, "fault=bogus")
            assert resp.status == 400
            resp, _ = read_stream(rs.server.port, "nets=zz")
            assert resp.status == 400

    def test_non_get_is_405(self):
        with RunningServer(stream_config()) as rs:
            conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=30)
            conn.request("POST", "/v1/stream", body=b"{}")
            resp = conn.getresponse()
            assert resp.status == 405
            conn.close()

    def test_capacity_is_a_503_with_retry_after(self):
        with RunningServer(stream_config(max_streams=0)) as rs:
            resp, body = read_stream(rs.server.port, "size=2&duration=0.002")
            assert resp.status == 503
            assert resp.getheader("Retry-After")
            assert "capacity" in json.loads(body)["error"]["message"]

    def test_drain_ends_streams_with_reason_drain(self):
        with RunningServer(stream_config()) as rs:
            # ~4000 simulation steps keep the source busy long enough
            # for the shutdown to land mid-stream.
            results = {}

            def consume():
                results["resp"], results["body"] = read_stream(
                    rs.server.port, "size=6&duration=0.4&dt=0.0001"
                )

            reader = threading.Thread(target=consume)
            reader.start()
            time.sleep(0.5)  # let the stream open and start simulating
            rs.loop.call_soon_threadsafe(rs.server.request_shutdown)
            reader.join(timeout=30)
            assert not reader.is_alive()

            events = parse_events(results["body"])
            assert events
            assert [seq for seq, _, _ in events] == list(range(len(events)))
            kind, data = events[-1][1], events[-1][2]
            assert kind == "end"
            assert data["reason"] == "drain"

    def test_stream_telemetry_counters(self):
        with RunningServer(stream_config()) as rs:
            read_stream(rs.server.port, "size=3&duration=0.003&dt=0.001")
            conn = http.client.HTTPConnection("127.0.0.1", rs.server.port, timeout=30)
            conn.request("GET", "/metrics")
            payload = json.loads(conn.getresponse().read())
            conn.close()
            counters = payload["telemetry"]["counters"]
            assert counters.get("streams_opened") == 1
            assert counters.get("streams_completed") == 1
            assert counters.get("stream_rediagnoses", 0) >= 1
            assert payload["telemetry"]["gauges"].get("streams_active") == 0.0
