"""Streaming-suite fixtures: no leaked fault plans between tests."""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def disarm_faults():
    """Every test starts and ends with no plan armed."""
    faults.uninstall_plan()
    yield
    faults.uninstall_plan()
