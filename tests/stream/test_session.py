"""End-to-end streaming sessions over in-process sources."""

from repro.circuit.faults import Fault, FaultKind
from repro.circuit.generators import resistor_ladder
from repro.circuit.transient import TransientSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.resilience import FaultPlan, faults
from repro.service.telemetry import Telemetry
from repro.stream import (
    DetectorConfig,
    DriftDetector,
    LiveSimulatorSource,
    ReplaySource,
    SnapshotBuilder,
    StreamingSession,
)

SECTIONS = 3
NETS = [f"n{i}" for i in range(1, SECTIONS + 1)]


def make_session(source, telemetry=None, **kwargs):
    circuit = resistor_ladder(SECTIONS)
    kwargs.setdefault("builder", SnapshotBuilder(imprecision=0.05, epsilon=1e-3))
    return StreamingSession(
        engine=Flames(circuit, FlamesConfig(kernel="fast")),
        source=source,
        telemetry=telemetry or Telemetry(),
        **kwargs,
    )


def healthy_source(duration=0.004, **kwargs):
    circuit = resistor_ladder(SECTIONS)
    return LiveSimulatorSource(circuit, NETS, duration=duration, dt=1e-3, **kwargs)


# Fault localization needs enough probes to pin the culprit: at 6
# sections the short on Rp3 is the unique best minimal candidate.
FAULT_SECTIONS = 6


def faulty_session(telemetry=None):
    circuit = resistor_ladder(FAULT_SECTIONS)
    nets = [f"n{i}" for i in range(1, FAULT_SECTIONS + 1)]
    source = LiveSimulatorSource(
        circuit,
        nets,
        duration=0.006,
        dt=1e-3,
        fault=Fault(FaultKind.SHORT, "Rp3"),
        fault_at=0.003,
    )
    return StreamingSession(
        engine=Flames(circuit, FlamesConfig(kernel="fast")),
        source=source,
        builder=SnapshotBuilder(imprecision=0.05, epsilon=1e-3),
        telemetry=telemetry or Telemetry(),
    )


class TestHealthyStream:
    def test_baseline_update_only(self):
        telemetry = Telemetry()
        updates = list(make_session(healthy_source(), telemetry).run())
        # One baseline tick, consistent; nothing ever drifts after it.
        assert len(updates) == 1
        assert updates[0].seq == 0
        assert updates[0].consistent
        assert not updates[0].drifted
        assert set(updates[0].dirty) == {f"V({n})" for n in NETS}
        assert telemetry.counter("stream_rediagnoses") == 1
        assert telemetry.counter("stream_readings_ingested") == len(NETS) * 5

    def test_baseline_can_be_disabled(self):
        session = make_session(healthy_source(), always_diagnose_first=False)
        # With no baseline and no drift, only the final drain tick fires
        # (the readings are all undiagnosed changes at that point).
        updates = list(session.run())
        assert len(updates) == 1
        assert updates[0].consistent


class TestFaultyStream:
    def test_fault_triggers_rediagnosis_and_ranks_culprit(self):
        telemetry = Telemetry()
        updates = list(faulty_session(telemetry).run())
        assert len(updates) >= 2
        baseline, final = updates[0], updates[-1]
        assert baseline.consistent
        assert not final.consistent
        assert final.drifted  # the detector saw the drift
        # The injected short on Rp3 is the best minimal candidate.
        assert final.candidates[0] == ("Rp3",)
        # Sequence numbers are gapless per session.
        assert [u.seq for u in updates] == list(range(len(updates)))
        assert telemetry.gauge_value("stream_detector_fired") >= 1

    def test_warm_ticks_after_baseline_are_incremental(self):
        updates = list(faulty_session().run())
        assert updates[0].incremental is False  # baseline builds the chain
        # The fault flips every ladder net beyond epsilon at once, so the
        # first faulty tick recomputes most of the chain; the nets keep
        # their (now faulty) values afterwards, so any later tick reuses.
        assert all(u.tick_ms >= 0 for u in updates)


class TestReplayAndChaos:
    def test_replay_source_drives_a_session(self):
        circuit = resistor_ladder(SECTIONS)
        trace = TransientSolver(circuit, None, dt=1e-3).run(0.004)
        updates = list(make_session(ReplaySource(trace, NETS)).run())
        assert len(updates) == 1 and updates[0].consistent

    def test_reading_drop_thins_the_stream(self):
        faults.install_plan(FaultPlan.build(seed=3, **{"stream.reading_drop": 0.4}))
        telemetry = Telemetry()
        updates = list(make_session(healthy_source(duration=0.01), telemetry).run())
        dropped = telemetry.counter("stream_readings_dropped")
        ingested = telemetry.counter("stream_readings_ingested")
        assert dropped > 0
        assert ingested > 0  # fractional rate thins, never starves
        assert dropped + ingested == len(NETS) * 11
        # A lossy healthy stream still converges to a consistent ranking.
        assert updates and updates[-1].consistent

    def test_drop_everything_yields_no_updates(self):
        faults.install_plan(FaultPlan.build(seed=0, **{"stream.reading_drop": 1.0}))
        telemetry = Telemetry()
        updates = list(make_session(healthy_source(), telemetry).run())
        assert updates == []
        assert telemetry.counter("stream_readings_ingested") == 0

    def test_detector_misfire_wastes_but_does_not_lie(self):
        faults.install_plan(
            FaultPlan(
                seed=0,
                rules=(
                    faults.FaultRule("stream.detector_misfire", rate=1.0, limit=1),
                ),
            )
        )
        telemetry = Telemetry()
        detector = DriftDetector(DetectorConfig())
        updates = list(
            make_session(healthy_source(), telemetry, detector=detector).run()
        )
        # The spurious trigger costs at most one extra tick; every
        # emitted ranking is still consistent (the unit is healthy).
        assert all(u.consistent for u in updates)
        assert telemetry.gauge_value("stream_detector_misfires") == 1


class TestDeadline:
    def test_tick_deadline_marks_updates_interrupted(self):
        # An absurdly small budget: the baseline tick cannot finish.
        session = make_session(healthy_source(), tick_deadline=1e-9)
        updates = list(session.run())
        assert updates, "an interrupted tick still yields a partial update"
        assert any(u.interrupted for u in updates)
