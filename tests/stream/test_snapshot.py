"""Snapshot assembly and tolerance-gated diffing."""

import pytest

from repro.stream import Reading, SnapshotBuilder


def snap(t, **volts_by_net):
    builder = SnapshotBuilder()
    for net, volts in volts_by_net.items():
        builder.ingest(Reading(t, net, volts))
    return builder.build()


class TestBuilder:
    def test_keeps_latest_reading_per_point(self):
        builder = SnapshotBuilder()
        builder.ingest(Reading(0.0, "n1", 1.0))
        builder.ingest(Reading(0.1, "n1", 2.0))
        snapshot = builder.build()
        assert snapshot.reading("V(n1)") == 2.0
        assert snapshot.t == 0.1

    def test_clock_never_runs_backwards(self):
        builder = SnapshotBuilder()
        builder.ingest(Reading(0.5, "n1", 1.0))
        builder.ingest(Reading(0.2, "n2", 1.0))  # late-arriving sample
        assert builder.build().t == 0.5

    def test_points_sorted_and_measurements_fuzzy(self):
        builder = SnapshotBuilder(imprecision=0.2)
        builder.ingest(Reading(0.0, "n2", 2.0))
        builder.ingest(Reading(0.0, "n1", 1.0))
        snapshot = builder.build()
        assert [p for p, _ in snapshot.readings] == ["V(n1)", "V(n2)"]
        m = snapshot.measurements[0]
        assert m.point == "V(n1)"
        assert m.value.membership(1.0) == pytest.approx(1.0)
        assert m.value.membership(1.5) == pytest.approx(0.0)

    def test_unknown_point_reads_none(self):
        assert snap(0.0, n1=1.0).reading("V(zz)") is None


class TestDiff:
    def test_first_diff_is_all_added(self):
        builder = SnapshotBuilder()
        builder.ingest(Reading(0.0, "n1", 1.0))
        diff = builder.diff_against(None)
        assert diff.added == {"V(n1)"}
        assert not diff.changed and not diff.removed
        assert diff.dirty == {"V(n1)"}
        assert bool(diff)

    def test_changed_added_removed(self):
        old = snap(0.0, n1=1.0, n2=2.0)
        new = snap(1.0, n2=2.5, n3=3.0)
        diff = old.diff(new)
        assert diff.changed == {"V(n2)"}
        assert diff.added == {"V(n3)"}
        assert diff.removed == {"V(n1)"}
        assert diff.dirty == {"V(n2)", "V(n3)"}

    def test_epsilon_gates_noise(self):
        old = snap(0.0, n1=1.0, n2=2.0)
        new = snap(1.0, n1=1.0005, n2=2.5)
        diff = old.diff(new, epsilon=1e-3)
        assert diff.changed == {"V(n2)"}  # n1's jitter is sub-epsilon
        assert old.diff(new, epsilon=0.0).changed == {"V(n1)", "V(n2)"}

    def test_identical_snapshots_diff_falsy(self):
        old = snap(0.0, n1=1.0)
        new = snap(1.0, n1=1.0)
        diff = old.diff(new)
        assert not diff
        assert not diff.dirty

    def test_builder_diff_uses_its_epsilon(self):
        builder = SnapshotBuilder(epsilon=0.01)
        builder.ingest(Reading(0.0, "n1", 1.0))
        last = builder.build()
        builder.ingest(Reading(0.1, "n1", 1.001))
        assert not builder.diff_against(last)
        builder.ingest(Reading(0.2, "n1", 1.5))
        assert builder.diff_against(last).changed == {"V(n1)"}
