"""SSE framing round-trips and parser robustness."""

import pytest

from repro.stream.sse import format_event, parse_events, split_complete


class TestFormat:
    def test_wire_shape(self):
        frame = format_event(3, "update", {"b": 1, "a": 2})
        assert frame == b'id: 3\nevent: update\ndata: {"a":2,"b":1}\n\n'

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            format_event(-1, "update", {})

    @pytest.mark.parametrize("event", ["two\nlines", "colon:ized"])
    def test_rejects_malformed_event_types(self, event):
        with pytest.raises(ValueError):
            format_event(0, event, {})


class TestParse:
    def test_round_trip(self):
        raw = b"".join(
            format_event(i, kind, {"seq": i})
            for i, kind in enumerate(["update", "heartbeat", "end"])
        )
        events = parse_events(raw)
        assert [(s, e) for s, e, _ in events] == [
            (0, "update"),
            (1, "heartbeat"),
            (2, "end"),
        ]
        assert all(data == {"seq": s} for s, _, data in events)

    def test_partial_tail_is_kept_not_parsed(self):
        complete = format_event(0, "update", {"x": 1})
        partial = b"id: 1\nevent: upd"
        events, rest = split_complete(complete + partial)
        assert len(events) == 1
        assert rest == partial
        assert parse_events(complete + partial) == events

    def test_comment_lines_ignored(self):
        raw = b": keep-alive\n\n" + format_event(0, "update", {})
        events = parse_events(raw)
        assert events == [(0, "update", {})]

    def test_data_without_id_defaults(self):
        events = parse_events(b'data: {"k":1}\n\n')
        assert events == [(-1, "message", {"k": 1})]
