"""Differential and contract tests for the prefix-checkpoint chain.

The load-bearing property: a warm engine's tick after a change is
observationally identical to a *cold* engine replaying the same
absorption sequence in the same order — on both kernels.  (One-shot
``Flames.diagnose`` is a different, order-insensitive contract; see the
module docstring of ``repro.stream.incremental``.)
"""

import pytest

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.generators import resistor_ladder
from repro.circuit.measurements import Measurement, probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.fuzzy import FuzzyInterval
from repro.runtime.context import RunContext
from repro.stream.incremental import IncrementalDiagnosisEngine

SECTIONS = 4
NETS = [f"n{i}" for i in range(1, SECTIONS + 1)]
IMPRECISION = 0.05


@pytest.fixture(scope="module")
def circuit():
    return resistor_ladder(SECTIONS)


def measurements_for(circuit, fault=None):
    unit = apply_fault(circuit, fault) if fault else circuit
    op = DCSolver(unit).solve()
    return probe_all(op, NETS, imprecision=IMPRECISION)


def replace(measurements, point, volts):
    return [
        Measurement(m.point, FuzzyInterval.number(volts, IMPRECISION))
        if m.point == point
        else m
        for m in measurements
    ]


def cold_replay(circuit, kernel, order, measurements):
    """A fresh engine absorbing the same sequence in the same order."""
    fresh = IncrementalDiagnosisEngine(Flames(circuit, FlamesConfig(kernel=kernel)))
    by_point = {m.point: m for m in measurements}
    return fresh.diagnose([by_point[p] for p in order])


def assert_same_result(a, b):
    assert a.ranked_components() == b.ranked_components()
    assert [d.components for d in a.diagnoses] == [d.components for d in b.diagnoses]
    assert a.is_consistent == b.is_consistent


@pytest.mark.parametrize("kernel", ["reference", "fast"])
class TestDifferential:
    def test_single_change_matches_cold_replay(self, circuit, kernel):
        engine = Flames(circuit, FlamesConfig(kernel=kernel))
        warm = IncrementalDiagnosisEngine(engine)
        healthy = measurements_for(circuit)
        baseline = warm.diagnose(healthy)
        assert baseline.is_consistent

        # One net drifts (the faulty unit's reading at n2).
        faulty = measurements_for(circuit, Fault(FaultKind.SHORT, "Rp2"))
        drifted = dict((m.point, m) for m in faulty)["V(n2)"]
        changed = replace(healthy, "V(n2)", drifted.value.centroid)

        result = warm.diagnose(changed)
        stats = warm.last_stats
        assert stats.incremental, "a single change must reuse some prefix"
        # First drift of V(n2): only the chain steps *before* its old
        # position survive; the reorder moves it to the back for later.
        assert stats.reused_prefix == 1
        assert not result.is_consistent
        assert_same_result(
            result, cold_replay(circuit, kernel, warm.order, changed)
        )

        # Second drift of the same net: now it sits at the back of the
        # chain, so everything else is reusable prefix — the steady
        # state of a stream where one net keeps drifting.
        drifted_more = replace(healthy, "V(n2)", drifted.value.centroid * 1.01)
        again = warm.diagnose(drifted_more)
        stats = warm.last_stats
        assert stats.reused_prefix == len(NETS) - 1
        assert stats.recomputed == 1
        assert_same_result(
            again, cold_replay(circuit, kernel, warm.order, drifted_more)
        )

    def test_faulty_snapshot_matches_cold_replay(self, circuit, kernel):
        warm = IncrementalDiagnosisEngine(Flames(circuit, FlamesConfig(kernel=kernel)))
        warm.diagnose(measurements_for(circuit))
        faulty = measurements_for(circuit, Fault(FaultKind.OPEN, "Rs3"))
        result = warm.diagnose(faulty)
        assert_same_result(
            result, cold_replay(circuit, kernel, warm.order, faulty)
        )
        # The true fault appears in the minimal candidates.
        flat = {c for d in result.diagnoses for c in d.components}
        assert "Rs3" in flat

    def test_unchanged_snapshot_is_all_prefix(self, circuit, kernel):
        warm = IncrementalDiagnosisEngine(Flames(circuit, FlamesConfig(kernel=kernel)))
        healthy = measurements_for(circuit)
        first = warm.diagnose(healthy)
        second = warm.diagnose(list(healthy))
        assert warm.last_stats.reused_prefix == len(NETS)
        assert warm.last_stats.recomputed == 0
        assert warm.last_stats.propagation_steps == 0
        assert_same_result(first, second)


class TestChainContract:
    def test_changed_point_moves_to_back_of_order(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        healthy = measurements_for(circuit)
        warm.diagnose(healthy)
        assert warm.order == [m.point for m in healthy]
        warm.diagnose(replace(healthy, "V(n1)", 9.9))
        assert warm.order[-1] == "V(n1)"
        assert warm.order[:-1] == [m.point for m in healthy if m.point != "V(n1)"]

    def test_removed_point_truncates_chain(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        healthy = measurements_for(circuit)
        warm.diagnose(healthy)
        assert warm.chain_length == len(NETS)
        subset = [m for m in healthy if m.point != "V(n2)"]
        result = warm.diagnose(subset)
        assert warm.chain_length == len(subset)
        assert "V(n2)" not in warm.order
        assert_same_result(result, cold_replay(circuit, "fast", warm.order, subset))

    def test_duplicate_points_rejected(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        healthy = measurements_for(circuit)
        with pytest.raises(ValueError, match="duplicate"):
            warm.diagnose(healthy + [healthy[0]])

    def test_unknown_point_rejected(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        bogus = Measurement("V(zz)", FuzzyInterval.number(1.0, 0.1))
        with pytest.raises(KeyError):
            warm.diagnose([bogus])

    def test_interrupted_step_is_not_checkpointed(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        healthy = measurements_for(circuit)
        warm.diagnose(healthy)
        chain_before = warm.chain_length

        changed = replace(healthy, "V(n3)", 0.1)
        # A one-step budget dies inside the changed point's re-assertion.
        ctx = RunContext(step_budget=1)
        result = warm.diagnose(changed, ctx=ctx)
        assert result.interrupted
        # The interrupted suffix step must not have been checkpointed.
        assert warm.chain_length < chain_before

        # The next unbounded tick recovers and matches a cold replay.
        recovered = warm.diagnose(changed)
        assert not recovered.interrupted
        assert_same_result(
            recovered, cold_replay(circuit, "fast", warm.order, changed)
        )

    def test_interrupted_base_build_reports_empty_partial(self, circuit):
        warm = IncrementalDiagnosisEngine(Flames(circuit))
        result = warm.diagnose(measurements_for(circuit), ctx=RunContext(step_budget=1))
        assert result.interrupted
        assert warm.chain_length == 0
        # And it can still recover on the next unbounded call.
        ok = warm.diagnose(measurements_for(circuit))
        assert not ok.interrupted
        assert ok.is_consistent
