"""Interned fuzzy intervals and bounded memoization of fuzzy operators.

The propagation hot path recomputes the same trapezoid arithmetic over
and over: a circuit has a handful of constraint shapes, measurements
repeat across diagnosis sessions, and relaxation loops revisit the same
(value, value) pairs many times.  Three small caches exploit that:

* :class:`InternTable` — one canonical :class:`FuzzyInterval` instance
  per distinct ``(m1, m2, alpha, beta)`` tuple, LRU-bounded;
* :class:`CachedFuzzyOps` — a bounded memo for *pure* binary fuzzy
  computations (arithmetic, intersection hulls, Dc/coincidence
  classification), keyed on the operand tuples so a cached result is
  bitwise identical to the uncached one;
* :class:`ProjectionCache` — a bounded memo for whole constraint
  projections keyed on (constraint, target, input intervals), the unit
  the propagation engine actually repeats.

Every cache is strictly bounded (oldest entry evicted first) and every
cached function must be a pure function of its fuzzy-interval operands —
both properties are enforced by the property suite in ``tests/kernel``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.fuzzy.interval import FuzzyInterval

__all__ = ["InternTable", "CachedFuzzyOps", "ProjectionCache"]


class _BoundedLRU:
    """Tiny LRU dict: bounded, move-to-front on hit, evict oldest."""

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return _MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


#: Sentinel distinguishing "not cached" from cached ``None`` results.
_MISS = object()


class InternTable:
    """Canonical instances of :class:`FuzzyInterval`, LRU-bounded."""

    def __init__(self, maxsize: int = 4096) -> None:
        self._cache = _BoundedLRU(maxsize)

    def intern(self, interval: FuzzyInterval) -> FuzzyInterval:
        key = interval.as_tuple()
        found = self._cache.get(key)
        if found is not _MISS:
            return found
        self._cache.put(key, interval)
        return interval

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize


class CachedFuzzyOps:
    """Bounded memo for pure binary fuzzy-interval computations.

    ``call(fn, a, b)`` returns ``fn(a, b)``, cached under
    ``(fn.__qualname__, a.as_tuple(), b.as_tuple())``.  ``fn`` must be a
    pure function of the two intervals' values (all the FuzzyInterval
    arithmetic, ``intersection_hull``, Dc comparison and coincidence
    classification qualify).  Exceptions (e.g. ``ZeroDivisionError`` from
    interval division) are cached too, so a repeated failing operand pair
    short-circuits identically.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        self._cache = _BoundedLRU(maxsize)

    def call(self, fn: Callable, a: FuzzyInterval, b: FuzzyInterval) -> Any:
        key = (fn.__qualname__, a.as_tuple(), b.as_tuple())
        found = self._cache.get(key)
        if found is not _MISS:
            if isinstance(found, _CachedError):
                raise found.error
            return found
        try:
            result = fn(a, b)
        except (ZeroDivisionError, ValueError) as exc:
            self._cache.put(key, _CachedError(exc))
            raise
        self._cache.put(key, result)
        return result

    # Convenience wrappers for the arithmetic the paper's kernel runs on.
    def add(self, a: FuzzyInterval, b: FuzzyInterval) -> FuzzyInterval:
        return self.call(FuzzyInterval.__add__, a, b)

    def sub(self, a: FuzzyInterval, b: FuzzyInterval) -> FuzzyInterval:
        return self.call(FuzzyInterval.__sub__, a, b)

    def mul(self, a: FuzzyInterval, b: FuzzyInterval) -> FuzzyInterval:
        return self.call(FuzzyInterval.__mul__, a, b)

    def div(self, a: FuzzyInterval, b: FuzzyInterval) -> FuzzyInterval:
        return self.call(FuzzyInterval.__truediv__, a, b)

    def intersection_hull(
        self, a: FuzzyInterval, b: FuzzyInterval
    ) -> Optional[FuzzyInterval]:
        return self.call(FuzzyInterval.intersection_hull, a, b)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
        }


class _CachedError:
    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class ProjectionCache:
    """Memo for constraint projections keyed on the exact inputs.

    A projection is a pure function of (constraint, target variable,
    input intervals); the key uses a caller-assigned stable constraint
    id plus the interval tuples.  ``ZeroDivisionError`` outcomes are
    cached as failures so repeated doomed combos cost one dict lookup.
    """

    def __init__(self, maxsize: int = 16384) -> None:
        self._cache = _BoundedLRU(maxsize)

    #: Sentinel returned by :meth:`lookup` when the key is absent.
    MISS = _MISS

    def lookup(self, key: Tuple) -> Any:
        return self._cache.get(key)

    def store(self, key: Tuple, value: Any) -> None:
        self._cache.put(key, value)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def maxsize(self) -> int:
        return self._cache.maxsize

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
        }
