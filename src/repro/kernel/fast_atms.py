"""The fuzzy ATMS on the bitmask kernel.

:class:`FastFuzzyATMS` is observationally identical to
:class:`~repro.atms.fuzzy_atms.FuzzyATMS` — same labels, same nogoods,
same degrees — but every environment that flows through label
propagation is interned through an :class:`AssumptionRegistry` and every
subset/union/consistency test runs on integer masks.  The four
overridden methods are exactly the reference algorithms with
``frozenset`` algebra replaced by bitwise algebra; ``tests/kernel``
asserts the equivalence differentially and property-based.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.atms.assumptions import Environment
from repro.atms.fuzzy_atms import FuzzyATMS
from repro.atms.nodes import Justification, Node
from repro.atms.nogood import NogoodDatabase
from repro.kernel.bitmask import AssumptionRegistry, popcount
from repro.kernel.fast_nogoods import FastNogoodDatabase
from repro.fuzzy.logic import TNorm, t_norm_min

__all__ = ["FastFuzzyATMS"]


class FastFuzzyATMS(FuzzyATMS):
    """Fuzzy ATMS over interned bitmask environments."""

    def __init__(self, t_norm: TNorm = t_norm_min, hard_threshold: float = 1.0) -> None:
        self.registry = AssumptionRegistry()
        super().__init__(t_norm=t_norm, hard_threshold=hard_threshold)

    def _make_nogood_db(self, hard_threshold: float) -> NogoodDatabase:
        return FastNogoodDatabase(self.registry, hard_threshold)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create_assumption(self, name: str, datum: str = "") -> Node:
        node = super().create_assumption(name, datum)
        if node.assumption is not None:
            self.registry.bit(node.assumption)
            if node.label:
                node.label = {
                    self.registry.intern(env): degree
                    for env, degree in node.label.items()
                }
        return node

    # ------------------------------------------------------------------
    # Label propagation (mask algebra; reference semantics)
    # ------------------------------------------------------------------
    def _weave(
        self,
        just: Justification,
        trigger: Optional[Node] = None,
        trigger_envs: Optional[Dict[Environment, float]] = None,
    ) -> Dict[Environment, float]:
        registry = self.registry
        nogoods: FastNogoodDatabase = self.nogoods
        t_norm = self.t_norm
        acc: Dict[int, float] = {0: just.degree}
        for ant in just.antecedents:
            label = trigger_envs if ant is trigger else ant.label
            if not label:
                return {}
            masked = [(registry.mask_of(env), d) for env, d in label.items()]
            nxt: Dict[int, float] = {}
            for mask_a, d_a in acc.items():
                for mask_b, d_b in masked:
                    union = mask_a | mask_b
                    if nogoods.mask_inconsistent(union):
                        continue
                    degree = t_norm(d_a, d_b)
                    if degree <= 0.0:
                        continue
                    if nxt.get(union, 0.0) < degree:
                        nxt[union] = degree
            acc = _minimise_masks(nxt)
            if not acc:
                return {}
        return {registry.environment(mask): d for mask, d in acc.items()}

    def _update_label(
        self, node: Node, envs: Dict[Environment, float]
    ) -> Dict[Environment, float]:
        registry = self.registry
        mask_of = registry.mask_of
        nogoods: FastNogoodDatabase = self.nogoods
        label = node.label
        added: Dict[Environment, float] = {}
        for env, degree in envs.items():
            env = registry.intern(env)
            mask = mask_of(env)
            if nogoods.mask_inconsistent(mask):
                continue
            if any(
                mask_of(e) & mask == mask_of(e) and d >= degree
                for e, d in label.items()
            ):
                continue
            doomed = [
                e
                for e, d in label.items()
                if mask & mask_of(e) == mask and d <= degree and mask_of(e) != mask
            ]
            for e in doomed:
                del label[e]
                added.pop(e, None)
            label[env] = degree
            added[env] = degree
        return added

    def _retract(self, nogood_env: Environment) -> None:
        registry = self.registry
        nogood_mask = registry.mask_of(nogood_env)
        for node in self.nodes.values():
            label = node.label
            doomed = [
                env for env in label if nogood_mask & registry.mask_of(env) == nogood_mask
            ]
            for env in doomed:
                del label[env]


def _minimise_masks(envs: Dict[int, float]) -> Dict[int, float]:
    """Mask twin of :func:`repro.atms.atms._minimise` (same ordering rule)."""
    kept: Dict[int, float] = {}
    for mask in sorted(envs, key=lambda m: (popcount(m), -envs[m])):
        degree = envs[mask]
        if any(m & mask == m and kept[m] >= degree for m in kept):
            continue
        kept[mask] = degree
    return kept
