"""Bitmask-indexed weighted nogood database.

Drop-in replacement for :class:`repro.atms.nogood.NogoodDatabase` whose
subsumption machinery runs on interned integer masks.  Stored nogoods
are additionally bucketed by popcount (environment cardinality): a
subset of a query environment can only live in a bucket of equal or
smaller cardinality, so subsumption scans skip whole buckets instead of
testing every stored nogood.

The degree-aware store semantics are *identical* to the reference
database — same antichain rule, same return values from :meth:`add`,
same :meth:`minimal` ordering — which the differential and property
suites in ``tests/kernel`` verify.
"""

from __future__ import annotations

from typing import Dict, List

from repro.atms.assumptions import Environment
from repro.atms.nogood import NogoodDatabase
from repro.kernel.bitmask import AssumptionRegistry, popcount

__all__ = ["FastNogoodDatabase"]


class FastNogoodDatabase(NogoodDatabase):
    """Weighted nogoods over interned bitmask environments."""

    def __init__(self, registry: AssumptionRegistry, hard_threshold: float = 1.0) -> None:
        super().__init__(hard_threshold)
        self.registry = registry
        #: popcount -> {mask: degree}; mirrors ``_store`` exactly.
        self._buckets: Dict[int, Dict[int, float]] = {}
        #: Masks whose degree reaches the hard threshold (pruning set).
        self._hard_buckets: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, environment: Environment, degree: float = 1.0) -> bool:
        if not 0.0 < degree <= 1.0:
            raise ValueError(f"nogood degree {degree} outside (0, 1]")
        env = self.registry.intern(environment)
        mask = self.registry.mask_of(env)
        size = popcount(mask)
        # A stored subset at an equal-or-higher degree subsumes the entry.
        for pc, bucket in self._buckets.items():
            if pc > size:
                continue
            for m, d in bucket.items():
                if m & mask == m and d >= degree:
                    return False
        # Remove newly subsumed entries (supersets at lower-or-equal degree).
        doomed = [
            m
            for pc, bucket in self._buckets.items()
            if pc >= size
            for m, d in bucket.items()
            if mask & m == mask and d <= degree and m != mask
        ]
        for m in doomed:
            self._remove_mask(m)
        changed = self._store.get(env) != degree
        self._store[env] = degree
        self._buckets.setdefault(size, {})[mask] = degree
        if degree >= self.hard_threshold:
            self._hard_buckets.setdefault(size, {})[mask] = degree
        else:
            self._hard_buckets.get(size, {}).pop(mask, None)
        return changed or bool(doomed)

    def _remove_mask(self, mask: int) -> None:
        size = popcount(mask)
        self._buckets.get(size, {}).pop(mask, None)
        self._hard_buckets.get(size, {}).pop(mask, None)
        self._store.pop(self.registry.environment(mask), None)

    def clear(self) -> None:
        super().clear()
        self._buckets.clear()
        self._hard_buckets.clear()

    def merge(self, others) -> None:  # inherited semantics, fast adds
        for nogood in others:
            self.add(nogood.environment, nogood.degree)

    # ------------------------------------------------------------------
    # Queries (mask fast paths)
    # ------------------------------------------------------------------
    def mask_inconsistent(self, mask: int) -> bool:
        """True when a hard nogood mask is a subset of ``mask``."""
        size = popcount(mask)
        for pc, bucket in self._hard_buckets.items():
            if pc > size:
                continue
            for m in bucket:
                if m & mask == m:
                    return True
        return False

    def is_inconsistent(self, environment: Environment) -> bool:
        return self.mask_inconsistent(self.registry.mask_of(environment))

    def mask_conflict_degree(self, mask: int) -> float:
        size = popcount(mask)
        worst = 0.0
        for pc, bucket in self._buckets.items():
            if pc > size:
                continue
            for m, d in bucket.items():
                if d > worst and m & mask == m:
                    worst = d
        return worst

    def conflict_degree(self, environment: Environment) -> float:
        return self.mask_conflict_degree(self.registry.mask_of(environment))

    def hard_masks(self) -> List[int]:
        """All masks at or above the hard threshold (for label retraction)."""
        return [m for bucket in self._hard_buckets.values() for m in bucket]
