"""Interned bitmask environments — the fast kernel's substrate.

De Kleer-style ATMS implementations get their speed from representing
assumption environments as bit vectors over a dense assumption index:
subset, superset and union tests — the operations every label update and
nogood check reduces to — become single bitwise instructions instead of
``frozenset`` traversals.

:class:`AssumptionRegistry` owns the mapping for one ATMS instance:

* every :class:`~repro.atms.assumptions.Assumption` gets a bit position
  the first time it is seen,
* every distinct assumption set gets **one** canonical
  :class:`~repro.atms.assumptions.Environment` instance, tagged with its
  integer mask, so environments compare by identity-friendly dict
  lookups and their masks never need recomputation.

Canonical environments are ordinary :class:`Environment` objects (the
mask is stashed as an extra attribute), so everything downstream — node
labels, nogoods, hitting sets, reprs — behaves exactly as it does with
the reference kernel.  That invariance is what the differential harness
in ``tests/kernel`` checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.atms.assumptions import Assumption, Environment

__all__ = [
    "AssumptionRegistry",
    "popcount",
    "mask_union",
    "mask_is_subset",
    "mask_is_proper_subset",
]


def popcount(mask: int) -> int:
    """Number of set bits (environment cardinality)."""
    return bin(mask).count("1") if mask else 0


# int.bit_count (3.10+) is measurably faster than the bin() fallback.
if hasattr(int, "bit_count"):  # pragma: no branch
    def popcount(mask: int) -> int:  # noqa: F811
        """Number of set bits (environment cardinality)."""
        return mask.bit_count()


def mask_union(a: int, b: int) -> int:
    """Union of two environments as masks."""
    return a | b


def mask_is_subset(a: int, b: int) -> bool:
    """True when environment ``a`` is a (non-strict) subset of ``b``."""
    return a & b == a


def mask_is_proper_subset(a: int, b: int) -> bool:
    """True when ``a`` is a strict subset of ``b``."""
    return a != b and a & b == a


class AssumptionRegistry:
    """Per-ATMS interning of assumptions (bits) and environments (masks).

    The registry is intentionally append-only: bits are never recycled,
    so a mask computed at any point stays valid for the life of the ATMS
    instance that owns the registry.
    """

    def __init__(self) -> None:
        self._bits: Dict[Assumption, int] = {}
        self._by_bit: List[Assumption] = []
        empty = Environment.empty()
        self._tag(empty, 0)
        self._envs: Dict[int, Environment] = {0: empty}

    # ------------------------------------------------------------------
    # Assumptions <-> bits
    # ------------------------------------------------------------------
    def bit(self, assumption: Assumption) -> int:
        """Bit position of ``assumption`` (assigned on first sight)."""
        index = self._bits.get(assumption)
        if index is None:
            index = len(self._by_bit)
            self._bits[assumption] = index
            self._by_bit.append(assumption)
        return index

    def assumption(self, bit: int) -> Assumption:
        return self._by_bit[bit]

    def __len__(self) -> int:
        return len(self._by_bit)

    # ------------------------------------------------------------------
    # Environments <-> masks
    # ------------------------------------------------------------------
    def mask_of(self, env: Environment) -> int:
        """Integer mask of an environment (cached on the instance)."""
        cached = env.__dict__.get("_kernel_mask")
        if cached is not None and env.__dict__.get("_kernel_reg") is self:
            return cached
        mask = 0
        for assumption in env.assumptions:
            mask |= 1 << self.bit(assumption)
        self._tag(env, mask)
        return mask

    def mask_of_assumptions(self, assumptions: Iterable[Assumption]) -> int:
        mask = 0
        for assumption in assumptions:
            mask |= 1 << self.bit(assumption)
        return mask

    def environment(self, mask: int) -> Environment:
        """The canonical environment for ``mask`` (interned)."""
        env = self._envs.get(mask)
        if env is None:
            members = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                members.append(self._by_bit[low.bit_length() - 1])
                remaining ^= low
            env = Environment(frozenset(members))
            self._tag(env, mask)
            self._envs[mask] = env
        return env

    def intern(self, env: Environment) -> Environment:
        """The canonical instance equal to ``env`` (registers new bits)."""
        return self.environment(self.mask_of(env))

    def _tag(self, env: Environment, mask: int) -> None:
        # Environment is a frozen dataclass; object.__setattr__ stashes
        # the cache without violating its immutability contract (the
        # visible fields never change).
        object.__setattr__(env, "_kernel_mask", mask)
        object.__setattr__(env, "_kernel_reg", self)

    def stats(self) -> Dict[str, int]:
        return {"assumptions": len(self._by_bit), "environments": len(self._envs)}
