"""The fast FLAMES kernel: bitmask environments, interning, memoization.

This package is the optimization layer behind the ``kernel="fast"``
switch on :class:`~repro.core.diagnosis.FlamesConfig` and
:class:`~repro.core.propagation.PropagatorConfig`:

* :mod:`repro.kernel.bitmask` — per-ATMS assumption registry interning
  environments as integer bitmasks (subset/union/popcount as single
  bitwise ops);
* :mod:`repro.kernel.fast_nogoods` — the weighted nogood database on a
  popcount-bucketed mask index;
* :mod:`repro.kernel.fast_atms` — the fuzzy ATMS with mask-based label
  propagation;
* :mod:`repro.kernel.fastfuzzy` — interned :class:`FuzzyInterval`
  instances and bounded LRU memoization of fuzzy arithmetic, Dc /
  coincidence computations and whole constraint projections.

The reference (set-based, uncached) semantics stay the default
everywhere; the differential harness in ``tests/kernel`` asserts the two
kernels produce identical diagnoses.
"""

from repro.kernel.bitmask import (
    AssumptionRegistry,
    mask_is_proper_subset,
    mask_is_subset,
    mask_union,
    popcount,
)
from repro.kernel.fast_atms import FastFuzzyATMS
from repro.kernel.fast_nogoods import FastNogoodDatabase
from repro.kernel.fastfuzzy import CachedFuzzyOps, InternTable, ProjectionCache

__all__ = [
    "KERNELS",
    "AssumptionRegistry",
    "FastFuzzyATMS",
    "FastNogoodDatabase",
    "CachedFuzzyOps",
    "InternTable",
    "ProjectionCache",
    "popcount",
    "mask_union",
    "mask_is_subset",
    "mask_is_proper_subset",
    "resolve_kernel",
]

#: The recognised kernel switch values.
KERNELS = ("reference", "fast")


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel name, returning it (raises on unknown names)."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choices: {', '.join(KERNELS)}")
    return kernel
