"""The paper's circuits.

* :func:`amplifier_cascade` — figure 2's three cascaded gain blocks
  (A -> amp1 -> B, B -> amp2 -> C, B -> amp3 -> D).
* :func:`diode_resistor_circuit` — figure 5's diode + two resistors
  (the DIANA comparison example).
* :func:`three_stage_amplifier` — figure 6's three-stage BJT amplifier.
  The schematic itself is a drawing we do not have; the component values
  and device parameters are published, and the paper states every
  transistor operates in the linear region.  We reconstruct the wiring
  accordingly (see DESIGN.md): T1 is an emitter follower biased by the
  R1/R3 divider with R2 as emitter load (V1 at the emitter), T2 a
  common-emitter stage (R4 collector load — V2 — and R5 emitter
  degeneration), T3 an output emitter follower loaded by R6 (Vs at the
  emitter).  All three transistors verify active-region operation under
  DC simulation with the published values.
"""

from __future__ import annotations

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, GROUND

__all__ = [
    "amplifier_cascade",
    "diode_resistor_circuit",
    "three_stage_amplifier",
    "rc_lowpass",
    "THREE_STAGE_PROBES",
]

#: The probe points figure 7 reports on, output first.
THREE_STAGE_PROBES = ("vs", "v2", "v1")


def amplifier_cascade(input_voltage: float = 3.0, tolerance: float = 0.05) -> Circuit:
    """Figure 2: three ideal gain blocks with +/-`tolerance` fuzzy gains.

    Topology (from the figure's values): the source drives A; amp1 (gain
    1) produces B; amp2 (gain 2) and amp3 (gain 3) both read B, producing
    C = 6 V and D = 9 V at nominal.
    """
    ckt = Circuit("amplifier-cascade", description="figure 2 gain cascade")
    ckt.add(VoltageSource("Va", input_voltage, p="a", n=GROUND))
    ckt.add(Amplifier("amp1", 1.0, tolerance, inp="a", out="b"))
    ckt.add(Amplifier("amp2", 2.0, tolerance, inp="b", out="c"))
    ckt.add(Amplifier("amp3", 3.0, tolerance, inp="b", out="d"))
    return ckt


def diode_resistor_circuit() -> Circuit:
    """Figure 5: Vin -> r1 -> n1 -> d1 -> n2 -> r2 -> ground.

    The paper measures Vr1 = 1.05 V, Vd1 = 0.2 V, Vr2 = 2 V — the diode
    sits below threshold, so its model only bounds the current
    (``Id <= 100 uA`` as the fuzzy set [-1, 100, 0, 10] uA).  The input
    source value (3.25 V nominal) follows from the published drops.

    Component values are *crisp* (zero tolerance), matching the paper's
    treatment of this example: the only fuzziness is in the diode's
    current bound, so ``Ir1 = 105 uA`` yields exactly the published
    membership degree of 0.5.
    """
    ckt = Circuit("diode-resistor", description="figure 5 DIANA example")
    ckt.add(VoltageSource("Vin", 3.25, p="vin", n=GROUND))
    ckt.add(Resistor("r1", 10e3, 0.0, a="vin", b="n1"))
    ckt.add(
        Diode("d1", v_on=0.6, leak_bound=100e-6, leak_soft=10e-6,
              tolerance=0.0, anode="n1", cathode="n2")
    )
    ckt.add(Resistor("r2", 10e3, 0.0, a="n2", b=GROUND))
    return ckt


def three_stage_amplifier(
    vcc: float = 18.0,
    tolerance: float = 0.05,
    beta_tolerance: float = 0.1,
) -> Circuit:
    """Figure 6: the three-stage amplifier with the published values.

    Vcc = 18 V; R1 = 200k, R2 = 12k, R3 = 24k, R4 = 3k, R5 = 2.2k,
    R6 = 1.8k; Vbe = 0.7 V; beta1/2/3 = 300/200/100.  Probe points:
    V1 (stage-1 output), V2 (stage-2 output), Vs (final output).
    """
    ckt = Circuit("three-stage-amplifier", description="figure 6 unit under test")
    ckt.add(VoltageSource("Vcc", vcc, p="vcc", n=GROUND))
    # Stage 1: emitter follower biased by the R1/R3 divider.
    ckt.add(Resistor("R1", 200e3, tolerance, a="vcc", b="n1"))
    ckt.add(Resistor("R3", 24e3, tolerance, a="n1", b=GROUND))
    ckt.add(BJT("T1", beta=300.0, beta_tolerance=beta_tolerance, c="vcc", b="n1", e="v1"))
    ckt.add(Resistor("R2", 12e3, tolerance, a="v1", b=GROUND))
    # Stage 2: common emitter with degeneration.
    ckt.add(Resistor("R4", 3e3, tolerance, a="vcc", b="v2"))
    ckt.add(BJT("T2", beta=200.0, beta_tolerance=beta_tolerance, c="v2", b="v1", e="n2"))
    ckt.add(Resistor("R5", 2.2e3, tolerance, a="n2", b=GROUND))
    # Stage 3: output emitter follower.
    ckt.add(BJT("T3", beta=100.0, beta_tolerance=beta_tolerance, c="vcc", b="v2", e="vs"))
    ckt.add(Resistor("R6", 1.8e3, tolerance, a="vs", b=GROUND))
    return ckt


def rc_lowpass(
    stages: int = 2,
    resistance: float = 1e3,
    capacitance: float = 1e-6,
    tolerance: float = 0.05,
) -> Circuit:
    """An RC low-pass ladder — the dynamic-mode workload.

    Each stage is a series resistor into a shunt capacitor; probe nets
    are ``m1 .. m<stages>``.  A capacitor fault here is invisible at DC
    (capacitors are open at the operating point) and only the transient
    engine can implicate it, which is exactly the experiment the paper's
    "dynamic mode" remark calls for.
    """
    if stages < 1:
        raise ValueError("need at least one RC stage")
    ckt = Circuit(f"rc-lowpass-{stages}", description="dynamic-mode workload")
    # The source idles at the post-step level so the *static* engine sees
    # the settled state; the dynamic driver overrides it with the step
    # waveform during transient runs.
    ckt.add(VoltageSource("Vin", 5.0, p="in", n=GROUND))
    prev = "in"
    for i in range(1, stages + 1):
        node = f"m{i}"
        ckt.add(Resistor(f"R{i}", resistance, tolerance, a=prev, b=node))
        ckt.add(Capacitor(f"C{i}", capacitance, tolerance, a=node, b=GROUND))
        prev = node
    return ckt
