"""DC operating-point simulator (modified nodal analysis).

This is the "physical circuit" stand-in: FLAMES was evaluated against
real boards probed on a bench; we synthesise ground-truth measurements
by solving the faulty circuit numerically.  The solver is a standard
MNA formulation with *device-state iteration* for the piecewise-linear
nonlinear devices:

* diodes are either OFF (open) or ON (a ``v_on`` drop),
* BJTs are in cutoff, the linear (active) region (``Vbe = vbe_on``,
  ``Ic = beta * Ib``) or saturation (``Vce = vce_sat``).

Each state assignment yields a linear system; the solver iterates state
flips until the solution is consistent with every device's region
checks, falling back to exhaustive state enumeration for small device
counts.  A tiny ``gmin`` conductance from every net to ground keeps the
matrix regular when faults float a net.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Component, Net

__all__ = ["DCSolver", "OperatingPoint", "SimulationError"]

#: Leak conductance to ground on every net (regularises floating nets).
GMIN = 1e-9

#: Region-check slack (amps / volts).
_TOL = 1e-9


class SimulationError(RuntimeError):
    """The DC operating point could not be established."""


@dataclass
class OperatingPoint:
    """Solved DC state: node voltages and component currents."""

    voltages: Dict[str, float]
    currents: Dict[str, float]
    device_states: Dict[str, str] = field(default_factory=dict)

    def voltage(self, net: "Net | str") -> float:
        name = net.name if isinstance(net, Net) else net
        if name == "0":
            return 0.0
        return self.voltages[name]

    def current(self, component: str, which: str = "") -> float:
        """Current through ``component`` (``which`` selects BJT terminals)."""
        key = f"{component}.{which}" if which else component
        return self.currents[key]

    def state(self, component: str) -> str:
        return self.device_states.get(component, "linear")


class DCSolver:
    """Assembles and solves the MNA system for a circuit."""

    def __init__(self, circuit: Circuit, max_iterations: int = 60) -> None:
        circuit.validate(strict=False)  # fault-injected clones may dangle nets
        self.circuit = circuit
        self.max_iterations = max_iterations
        self._nets = [n for n in circuit.nets if not n.is_ground]
        self._net_index = {n.name: i for i, n in enumerate(self._nets)}
        self._nonlinear = [
            c for c in circuit.components if isinstance(c, (Diode, BJT))
        ]

    # ------------------------------------------------------------------
    def solve(self) -> OperatingPoint:
        """Find a consistent operating point or raise SimulationError."""
        states = {c.name: self._initial_state(c) for c in self._nonlinear}
        seen = set()
        for _ in range(self.max_iterations):
            key = tuple(sorted(states.items()))
            if key in seen:
                break  # cycling between state assignments
            seen.add(key)
            solution = self._solve_linear(states)
            if solution is None:
                break
            violations = self._violations(states, solution)
            if not violations:
                return self._operating_point(states, solution)
            for name, new_state in violations.items():
                states[name] = new_state
        return self._exhaustive()

    # ------------------------------------------------------------------
    def _initial_state(self, comp: Component) -> str:
        return "on" if isinstance(comp, Diode) else "active"

    def _exhaustive(self) -> OperatingPoint:
        if len(self._nonlinear) > 10:
            raise SimulationError(
                f"{self.circuit.name}: state iteration diverged and "
                f"{len(self._nonlinear)} nonlinear devices is too many to enumerate"
            )
        options = [
            ("on", "off") if isinstance(c, Diode) else ("active", "cutoff", "saturation")
            for c in self._nonlinear
        ]
        for combo in itertools.product(*options):
            states = {c.name: s for c, s in zip(self._nonlinear, combo)}
            solution = self._solve_linear(states)
            if solution is None:
                continue
            if not self._violations(states, solution):
                return self._operating_point(states, solution)
        raise SimulationError(f"{self.circuit.name}: no consistent operating point")

    # ------------------------------------------------------------------
    # Linear system assembly
    # ------------------------------------------------------------------
    def _branch_layout(self, states: Dict[str, str]) -> Dict[str, int]:
        """Extra unknowns: one per independent/controlled voltage branch."""
        layout: Dict[str, int] = {}

        def claim(key: str) -> None:
            layout[key] = len(self._nets) + len(layout)

        for comp in self.circuit.components:
            if isinstance(comp, VoltageSource):
                claim(comp.name)
            elif isinstance(comp, Amplifier):
                claim(comp.name)
            elif isinstance(comp, Diode) and states[comp.name] == "on":
                claim(comp.name)
            elif isinstance(comp, BJT):
                state = states[comp.name]
                if state in ("active", "saturation"):
                    claim(f"{comp.name}.be")
                if state == "saturation":
                    claim(f"{comp.name}.ce")
        return layout

    def _solve_linear(self, states: Dict[str, str]) -> Optional[Dict[str, float]]:
        layout = self._branch_layout(states)
        size = len(self._nets) + len(layout)
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)

        idx = self._net_index

        def node(net: Net) -> Optional[int]:
            return None if net.is_ground else idx[net.name]

        def stamp_conductance(a: Net, b: Net, g: float) -> None:
            ia, ib = node(a), node(b)
            if ia is not None:
                matrix[ia, ia] += g
            if ib is not None:
                matrix[ib, ib] += g
            if ia is not None and ib is not None:
                matrix[ia, ib] -= g
                matrix[ib, ia] -= g

        def stamp_branch_kcl(row: int, p: Net, n: Net) -> None:
            """Branch current (column ``row``) leaves ``p`` and enters ``n``."""
            ip, inn = node(p), node(n)
            if ip is not None:
                matrix[ip, row] += 1.0
            if inn is not None:
                matrix[inn, row] -= 1.0

        def stamp_voltage_eq(row: int, p: Net, n: Net, value: float) -> None:
            ip, inn = node(p), node(n)
            if ip is not None:
                matrix[row, ip] += 1.0
            if inn is not None:
                matrix[row, inn] -= 1.0
            rhs[row] += value

        # gmin leak on every net
        for i in range(len(self._nets)):
            matrix[i, i] += GMIN

        for comp in self.circuit.components:
            if isinstance(comp, Resistor):
                stamp_conductance(comp.net("a"), comp.net("b"), 1.0 / comp.resistance)
            elif isinstance(comp, Capacitor):
                continue  # open at DC
            elif isinstance(comp, VoltageSource):
                row = layout[comp.name]
                stamp_branch_kcl(row, comp.net("p"), comp.net("n"))
                stamp_voltage_eq(row, comp.net("p"), comp.net("n"), comp.voltage)
            elif isinstance(comp, CurrentSource):
                # Pushes `current` out of p into the external circuit
                # (i.e. the branch current flows n -> p inside the source).
                ip, inn = node(comp.net("p")), node(comp.net("n"))
                if ip is not None:
                    rhs[ip] += comp.current
                if inn is not None:
                    rhs[inn] -= comp.current
            elif isinstance(comp, Amplifier):
                # VCVS: V(out) = gain * V(in); output branch current unknown.
                row = layout[comp.name]
                stamp_branch_kcl(row, comp.net("out"), Net("0"))
                iout, iin = node(comp.net("out")), node(comp.net("inp"))
                if iout is not None:
                    matrix[row, iout] += 1.0
                if iin is not None:
                    matrix[row, iin] -= comp.gain
                # rhs stays 0
            elif isinstance(comp, Diode):
                if states[comp.name] == "on":
                    row = layout[comp.name]
                    stamp_branch_kcl(row, comp.net("anode"), comp.net("cathode"))
                    stamp_voltage_eq(
                        row, comp.net("anode"), comp.net("cathode"), comp.v_on
                    )
                # off: no stamp (gmin covers floating nets)
            elif isinstance(comp, BJT):
                state = states[comp.name]
                if state == "cutoff":
                    continue
                be_row = layout[f"{comp.name}.be"]
                stamp_branch_kcl(be_row, comp.net("b"), comp.net("e"))
                stamp_voltage_eq(be_row, comp.net("b"), comp.net("e"), comp.vbe_on)
                if state == "active":
                    # CCCS: Ic = beta * Ib from collector to emitter.
                    ic_from, ic_to = node(comp.net("c")), node(comp.net("e"))
                    if ic_from is not None:
                        matrix[ic_from, be_row] += comp.beta
                    if ic_to is not None:
                        matrix[ic_to, be_row] -= comp.beta
                else:  # saturation
                    ce_row = layout[f"{comp.name}.ce"]
                    stamp_branch_kcl(ce_row, comp.net("c"), comp.net("e"))
                    stamp_voltage_eq(
                        ce_row, comp.net("c"), comp.net("e"), comp.vce_sat
                    )
            else:
                raise SimulationError(
                    f"{self.circuit.name}: cannot simulate component kind "
                    f"{comp.kind}"
                )

        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(solution)):
            return None
        values = {net.name: float(solution[i]) for net, i in zip(self._nets, range(len(self._nets)))}
        for key, row in layout.items():
            values[f"I({key})"] = float(solution[row])
        return values

    # ------------------------------------------------------------------
    # Region checks
    # ------------------------------------------------------------------
    def _violations(
        self, states: Dict[str, str], sol: Dict[str, float]
    ) -> Dict[str, str]:
        def v(net: Net) -> float:
            return 0.0 if net.is_ground else sol[net.name]

        flips: Dict[str, str] = {}
        for comp in self._nonlinear:
            if isinstance(comp, Diode):
                vd = v(comp.net("anode")) - v(comp.net("cathode"))
                if states[comp.name] == "on":
                    if sol[f"I({comp.name})"] < -_TOL:
                        flips[comp.name] = "off"
                else:
                    if vd > comp.v_on + _TOL:
                        flips[comp.name] = "on"
            else:  # BJT
                state = states[comp.name]
                vbe = v(comp.net("b")) - v(comp.net("e"))
                vce = v(comp.net("c")) - v(comp.net("e"))
                if state == "cutoff":
                    if vbe > comp.vbe_on + _TOL:
                        flips[comp.name] = "active"
                elif state == "active":
                    ib = sol[f"I({comp.name}.be)"]
                    if ib < -_TOL:
                        flips[comp.name] = "cutoff"
                    elif vce < comp.vce_sat - _TOL:
                        flips[comp.name] = "saturation"
                else:  # saturation
                    ib = sol[f"I({comp.name}.be)"]
                    ic = sol[f"I({comp.name}.ce)"]
                    if ib < -_TOL:
                        flips[comp.name] = "cutoff"
                    elif ic > comp.beta * ib + _TOL:
                        flips[comp.name] = "active"
        return flips

    # ------------------------------------------------------------------
    def _operating_point(
        self, states: Dict[str, str], sol: Dict[str, float]
    ) -> OperatingPoint:
        def v(net: Net) -> float:
            return 0.0 if net.is_ground else sol[net.name]

        voltages = {net.name: sol[net.name] for net in self._nets}
        currents: Dict[str, float] = {}
        device_states: Dict[str, str] = {}
        for comp in self.circuit.components:
            if isinstance(comp, Resistor):
                currents[comp.name] = (
                    v(comp.net("a")) - v(comp.net("b"))
                ) / comp.resistance
            elif isinstance(comp, Capacitor):
                currents[comp.name] = 0.0
            elif isinstance(comp, (VoltageSource, Amplifier)):
                currents[comp.name] = sol[f"I({comp.name})"]
            elif isinstance(comp, CurrentSource):
                currents[comp.name] = comp.current
            elif isinstance(comp, Diode):
                state = states[comp.name]
                device_states[comp.name] = state
                currents[comp.name] = (
                    sol[f"I({comp.name})"] if state == "on" else 0.0
                )
            elif isinstance(comp, BJT):
                state = states[comp.name]
                device_states[comp.name] = state
                if state == "cutoff":
                    ib = ic = 0.0
                elif state == "active":
                    ib = sol[f"I({comp.name}.be)"]
                    ic = comp.beta * ib
                else:
                    ib = sol[f"I({comp.name}.be)"]
                    ic = sol[f"I({comp.name}.ce)"]
                currents[f"{comp.name}.b"] = ib
                currents[f"{comp.name}.c"] = ic
                currents[f"{comp.name}.e"] = ib + ic
        return OperatingPoint(voltages, currents, device_states)
