"""Transient (dynamic-mode) simulation.

The paper evaluates FLAMES "either in dynamic mode or in static one";
dynamic mode is what makes reactive components diagnosable at all — an
open capacitor is invisible at the DC operating point but wrecks the
step response.  This module adds a backward-Euler transient solver on
top of the MNA machinery: at each time step a capacitor becomes its
companion model (a conductance ``C/dt`` in parallel with a history
current source), sources may carry time-varying waveforms, and the
nonlinear devices re-iterate their operating regions per step (warm
started from the previous step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


from repro.circuit.components import Capacitor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import DCSolver, OperatingPoint

__all__ = ["Waveform", "step_waveform", "TransientResult", "TransientSolver"]

#: A time-varying source value.
Waveform = Callable[[float], float]


def step_waveform(low: float, high: float, at: float = 0.0) -> Waveform:
    """A voltage step from ``low`` to ``high`` at time ``at``."""

    def wave(t: float) -> float:
        return high if t >= at else low

    return wave


@dataclass
class TransientResult:
    """Sampled waveforms: one operating point per time step."""

    times: List[float]
    points: List[OperatingPoint]

    def voltage(self, net: str) -> List[float]:
        return [p.voltage(net) for p in self.points]

    def voltage_at(self, net: str, t: float) -> float:
        """Voltage at the sample nearest to ``t``."""
        return self.points[self.index_of(t)].voltage(net)

    def index_of(self, t: float) -> int:
        best = min(range(len(self.times)), key=lambda i: abs(self.times[i] - t))
        return best

    def __len__(self) -> int:
        return len(self.times)


class TransientSolver:
    """Backward-Euler transient analysis.

    Args:
        circuit: the circuit (capacitors allowed, obviously).
        waveforms: optional map of voltage-source name -> waveform; a
            source without a waveform keeps its constant value.
        dt: time step.
        initial: starting state — ``"dc"`` solves the t=0 operating
            point first (waveforms evaluated at t=0), ``"zero"`` starts
            all capacitor voltages at zero, and an explicit mapping of
            capacitor name -> voltage resumes from a prior run's state
            (missing capacitors start at zero; how the streaming plane's
            live source carries state across a mid-stream fault swap).
    """

    def __init__(
        self,
        circuit: Circuit,
        waveforms: Optional[Dict[str, Waveform]] = None,
        dt: float = 1e-4,
        initial: "str | Dict[str, float]" = "dc",
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if isinstance(initial, str) and initial not in ("dc", "zero"):
            raise ValueError("initial must be 'dc', 'zero' or a capacitor-voltage map")
        circuit.validate(strict=False)
        self.circuit = circuit
        self.waveforms = dict(waveforms or {})
        for name in self.waveforms:
            comp = circuit.component(name)
            if not isinstance(comp, VoltageSource):
                raise ValueError(f"waveform target {name!r} is not a voltage source")
        self.dt = dt
        self.initial = initial
        self._capacitors = [c for c in circuit.components if isinstance(c, Capacitor)]

    # ------------------------------------------------------------------
    def run(self, duration: float) -> TransientResult:
        """Simulate ``t in [0, duration]``; returns every sample."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        steps = max(int(round(duration / self.dt)), 1)
        times: List[float] = []
        points: List[OperatingPoint] = []

        # Waveform application mutates the sources; restore afterwards so
        # the caller's circuit is unchanged by a simulation run.
        saved = {
            name: self.circuit.component(name).voltage for name in self.waveforms
        }
        try:
            cap_voltages = self._initial_cap_voltages()
            for k in range(steps + 1):
                t = k * self.dt
                self._apply_waveforms(t)
                op = _CompanionDCSolver(self.circuit, cap_voltages, self.dt).solve()
                # Update capacitor history for the next step.
                for cap in self._capacitors:
                    cap_voltages[cap.name] = op.voltage(cap.net("a")) - op.voltage(
                        cap.net("b")
                    )
                times.append(t)
                points.append(op)
        finally:
            for name, voltage in saved.items():
                self.circuit.component(name).voltage = voltage
        return TransientResult(times, points)

    # ------------------------------------------------------------------
    def _initial_cap_voltages(self) -> Dict[str, float]:
        if isinstance(self.initial, dict):
            return {c.name: self.initial.get(c.name, 0.0) for c in self._capacitors}
        if self.initial == "zero" or not self._capacitors:
            return {c.name: 0.0 for c in self._capacitors}
        # The pre-step steady state: waveforms evaluated just *before* the
        # run starts, so a step at t=0 actually produces a transient.
        self._apply_waveforms(-self.dt)
        op = DCSolver(self.circuit).solve()  # capacitors open at DC
        return {
            c.name: op.voltage(c.net("a")) - op.voltage(c.net("b"))
            for c in self._capacitors
        }

    def _apply_waveforms(self, t: float) -> None:
        for name, wave in self.waveforms.items():
            self.circuit.component(name).voltage = wave(t)


class _CompanionDCSolver:
    """One backward-Euler step: solve the companion circuit.

    Each capacitor C between (a, b) with previous voltage ``v_prev``
    becomes a resistor ``dt/C`` in parallel with a current source
    injecting ``(C/dt) * v_prev`` into node a — the standard companion
    model, after which the step is an ordinary DC solve.
    """

    def __init__(
        self, circuit: Circuit, cap_voltages: Dict[str, float], dt: float
    ) -> None:
        self._original = circuit
        self._cap_voltages = cap_voltages
        self._dt = dt
        self._companion = self._build_companion()

    def _build_companion(self) -> Circuit:
        from repro.circuit.components import CurrentSource, Resistor

        companion = Circuit(f"{self._original.name}@companion")
        for comp in self._original.components:
            if not isinstance(comp, Capacitor):
                companion.add(comp.clone())
                continue
            conductance = comp.capacitance / self._dt
            v_prev = self._cap_voltages.get(comp.name, 0.0)
            a, b = comp.net("a").name, comp.net("b").name
            companion.add(
                Resistor(f"__G_{comp.name}", 1.0 / conductance, 0.0, a=a, b=b)
            )
            companion.add(
                CurrentSource(
                    f"__J_{comp.name}", conductance * v_prev, p=a, n=b
                )
            )
        return companion

    def solve(self) -> OperatingPoint:
        op = DCSolver(self._companion).solve()
        # Report the true capacitor currents and hide the companion
        # elements from the caller.
        for comp in self._original.components:
            if isinstance(comp, Capacitor):
                v_now = op.voltage(comp.net("a")) - op.voltage(comp.net("b"))
                v_prev = self._cap_voltages.get(comp.name, 0.0)
                op.currents[comp.name] = (
                    comp.capacitance * (v_now - v_prev) / self._dt
                )
                op.currents.pop(f"__G_{comp.name}", None)
                op.currents.pop(f"__J_{comp.name}", None)
        return op
