"""A SPICE-subset netlist reader/writer.

Downstream users have circuits in netlist form, not Python; this module
reads the familiar card format into :class:`~repro.circuit.netlist.
Circuit` objects and writes them back out.  Supported cards (one per
line, ``*`` comments, case-insensitive, blank lines ignored):

===========  ==================================================  ==========================
card         syntax                                              component
===========  ==================================================  ==========================
resistor     ``Rname n+ n- value [tol=0.05]``                    :class:`Resistor`
capacitor    ``Cname n+ n- value [tol=0.1]``                     :class:`Capacitor`
diode        ``Dname anode cathode [von=0.7]``                   :class:`Diode`
BJT (npn)    ``Qname nc nb ne beta [vbe=0.7]`` (or ``Tname``)     :class:`BJT`
V source     ``Vname n+ n- value [tol=0]``                       :class:`VoltageSource`
I source     ``Iname n+ n- value [tol=0]``                       :class:`CurrentSource`
gain block   ``Ename nin nout gain [tol=0.05]``                  :class:`Amplifier`
title        first line starting with ``.title``                 circuit name
===========  ==================================================  ==========================

Values accept the usual engineering suffixes (``k``, ``meg``, ``m``,
``u``, ``n``, ``p``, ``g``, ``t``); node ``0`` is ground.  A card may
also lead with an explicit single-letter kind token — ``E amp1 nin nout
gain`` — which frees the component name from the first-letter
convention; the writer emits that form whenever a name (``amp1``)
would not otherwise parse back to its own class.  This is a pragmatic
subset — enough to describe every circuit in this repository — not a
general SPICE front end.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Component

__all__ = ["parse_netlist", "parse_value", "write_netlist", "NetlistError"]


class NetlistError(ValueError):
    """A netlist line could not be understood."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


#: Engineering suffixes, longest first so ``meg`` wins over ``m``.
_SUFFIXES: Tuple[Tuple[str, float], ...] = (
    ("meg", 1e6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
)

_VALUE_RE = re.compile(r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)([a-zA-Z]*)$")


def parse_value(token: str) -> float:
    """Parse ``4.7k``, ``100u``, ``2meg``, ``1e3`` ... into a float."""
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise ValueError(f"cannot parse value {token!r}")
    number, suffix = float(match.group(1)), match.group(2).lower()
    if not suffix:
        return number
    for name, scale in _SUFFIXES:
        if suffix == name or suffix.startswith(name):
            return number * scale
    raise ValueError(f"unknown value suffix {suffix!r} in {token!r}")


def _keywords(tokens: List[str]) -> Tuple[List[str], Dict[str, float]]:
    """Split trailing ``key=value`` tokens off a card."""
    positional: List[str] = []
    keywords: Dict[str, float] = {}
    for token in tokens:
        if "=" in token:
            key, _, raw = token.partition("=")
            keywords[key.lower()] = parse_value(raw)
        else:
            positional.append(token)
    return positional, keywords


def parse_netlist(text: str, name: str = "netlist") -> Circuit:
    """Parse a netlist into a circuit (see module docstring for cards)."""
    circuit = Circuit(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if line.lower().startswith(".title"):
            circuit.name = line[len(".title"):].strip() or circuit.name
            continue
        if line.startswith("."):
            continue  # other dot-cards are ignored, SPICE-style
        tokens = line.split()
        positional, keywords = _keywords(tokens)
        card = positional[0]
        args = positional[1:]
        if len(card) == 1 and card.upper() in _KINDS and len(args) >= 3:
            # Explicit-kind card: ``E amp1 nin nout gain`` — used when a
            # component's name does not start with its card letter (the
            # writer emits this form so e.g. ``amp1`` round-trips).
            kind, card, args = card.upper(), args[0], args[1:]
        else:
            kind = card[0].upper()
        try:
            component = _build(kind, card, args, keywords)
        except (ValueError, IndexError) as exc:
            raise NetlistError(line_number, raw, str(exc)) from exc
        try:
            circuit.add(component)
        except ValueError as exc:
            raise NetlistError(line_number, raw, str(exc)) from exc
    return circuit


def _build(
    kind: str, name: str, args: List[str], kw: Dict[str, float]
) -> Component:
    if kind == "R":
        _need(args, 3, "Rname n+ n- value")
        return Resistor(
            name, parse_value(args[2]), kw.get("tol", 0.05), a=args[0], b=args[1]
        )
    if kind == "C":
        _need(args, 3, "Cname n+ n- value")
        return Capacitor(
            name, parse_value(args[2]), kw.get("tol", 0.1), a=args[0], b=args[1]
        )
    if kind == "D":
        _need(args, 2, "Dname anode cathode")
        return Diode(
            name,
            v_on=kw.get("von", 0.7),
            tolerance=kw.get("tol", 0.05),
            anode=args[0],
            cathode=args[1],
        )
    if kind in ("Q", "T"):  # T: European schematic convention (the paper's own)
        _need(args, 4, "Qname nc nb ne beta")
        return BJT(
            name,
            beta=parse_value(args[3]),
            vbe_on=kw.get("vbe", 0.7),
            beta_tolerance=kw.get("btol", 0.1),
            tolerance=kw.get("tol", 0.05),
            c=args[0],
            b=args[1],
            e=args[2],
        )
    if kind == "V":
        _need(args, 3, "Vname n+ n- value")
        return VoltageSource(
            name, parse_value(args[2]), kw.get("tol", 0.0), p=args[0], n=args[1]
        )
    if kind == "I":
        _need(args, 3, "Iname n+ n- value")
        return CurrentSource(
            name, parse_value(args[2]), kw.get("tol", 0.0), p=args[0], n=args[1]
        )
    if kind == "E":
        _need(args, 3, "Ename nin nout gain")
        return Amplifier(
            name, parse_value(args[2]), kw.get("tol", 0.05), inp=args[0], out=args[1]
        )
    raise ValueError(f"unknown card kind {kind!r}")


def _need(args: List[str], count: int, usage: str) -> None:
    if len(args) < count:
        raise ValueError(f"expected {usage}")


#: Card letters the parser dispatches on (first letter of the name, or an
#: explicit single-letter kind token).
_KINDS = frozenset("RCDQTVIE")

#: Letters under which each component class parses back to itself.
_CARD_LETTERS = {
    Resistor: "R",
    Capacitor: "C",
    Diode: "D",
    BJT: "QT",
    VoltageSource: "V",
    CurrentSource: "I",
    Amplifier: "E",
}


def _card_name(comp: Component) -> str:
    """``name`` when it dispatches to the right kind, else ``<KIND> name``.

    Amplifiers are conventionally called ``amp1`` — a name the
    letter-dispatch parser would reject — so the writer emits the
    explicit-kind form for any component whose name would not parse
    back to its own class.
    """
    letters = _CARD_LETTERS[type(comp)]
    if len(comp.name) > 1 and comp.name[0].upper() in letters:
        return comp.name
    return f"{letters[0]} {comp.name}"


def write_netlist(circuit: Circuit) -> str:
    """Serialise a circuit back to the card format (round-trippable)."""
    lines = [f".title {circuit.name}"]
    for comp in circuit.components:
        if isinstance(comp, Resistor):
            lines.append(
                f"{_card_name(comp)} {comp.net('a')} {comp.net('b')} "
                f"{comp.resistance!r} tol={comp.tolerance!r}"
            )
        elif isinstance(comp, Capacitor):
            lines.append(
                f"{_card_name(comp)} {comp.net('a')} {comp.net('b')} "
                f"{comp.capacitance!r} tol={comp.tolerance!r}"
            )
        elif isinstance(comp, Diode):
            lines.append(
                f"{_card_name(comp)} {comp.net('anode')} {comp.net('cathode')} "
                f"von={comp.v_on!r} tol={comp.tolerance!r}"
            )
        elif isinstance(comp, BJT):
            lines.append(
                f"{_card_name(comp)} {comp.net('c')} {comp.net('b')} {comp.net('e')} "
                f"{comp.beta!r} vbe={comp.vbe_on!r} btol={comp.beta_tolerance!r} "
                f"tol={comp.tolerance!r}"
            )
        elif isinstance(comp, VoltageSource):
            lines.append(
                f"{_card_name(comp)} {comp.net('p')} {comp.net('n')} "
                f"{comp.voltage!r} tol={comp.tolerance!r}"
            )
        elif isinstance(comp, CurrentSource):
            lines.append(
                f"{_card_name(comp)} {comp.net('p')} {comp.net('n')} "
                f"{comp.current!r} tol={comp.tolerance!r}"
            )
        elif isinstance(comp, Amplifier):
            lines.append(
                f"{_card_name(comp)} {comp.net('inp')} {comp.net('out')} "
                f"{comp.gain!r} tol={comp.tolerance!r}"
            )
        else:
            raise ValueError(f"cannot serialise component kind {comp.kind}")
    return "\n".join(lines) + "\n"
