"""Netlist representation: nets, components, circuits."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Net", "Component", "Circuit", "GROUND"]

#: Conventional name of the reference net.
GROUND = "0"


@dataclass(frozen=True, order=True)
class Net:
    """A named electrical node."""

    name: str

    @property
    def is_ground(self) -> bool:
        return self.name == GROUND

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class Component:
    """Base class for circuit elements.

    Subclasses declare ``PINS`` (ordered pin names) and carry their
    electrical parameters plus a relative ``tolerance`` that the
    diagnosis side turns into fuzzy parameter values.
    """

    PINS: Tuple[str, ...] = ()

    def __init__(self, name: str, tolerance: float = 0.05, **connections: str) -> None:
        if not name:
            raise ValueError("component needs a name")
        missing = [p for p in self.PINS if p not in connections]
        if missing:
            raise ValueError(f"{name}: unconnected pins {missing}")
        extra = [p for p in connections if p not in self.PINS]
        if extra:
            raise ValueError(f"{name}: unknown pins {extra}")
        if tolerance < 0:
            raise ValueError(f"{name}: negative tolerance")
        self.name = name
        self.tolerance = tolerance
        self.pins: Dict[str, Net] = {p: Net(n) for p, n in connections.items()}

    def net(self, pin: str) -> Net:
        return self.pins[pin]

    def rewire(self, pin: str, net_name: str) -> None:
        """Reconnect one pin (used by the node-open fault)."""
        if pin not in self.PINS:
            raise KeyError(f"{self.name} has no pin {pin!r}")
        self.pins[pin] = Net(net_name)

    @property
    def kind(self) -> str:
        return type(self).__name__

    def clone(self) -> "Component":
        """Deep-enough copy for fault injection (parameters + wiring)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wires = ",".join(f"{p}={n.name}" for p, n in self.pins.items())
        return f"{self.kind}({self.name}: {wires})"


@dataclass
class Circuit:
    """A named collection of components over shared nets."""

    name: str
    components: List[Component] = field(default_factory=list)
    description: str = ""

    def add(self, component: Component) -> Component:
        if any(c.name == component.name for c in self.components):
            raise ValueError(f"duplicate component name {component.name!r}")
        self.components.append(component)
        return component

    def component(self, name: str) -> Component:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"no component named {name!r} in {self.name}")

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.components)

    @property
    def nets(self) -> List[Net]:
        seen = {}
        for c in self.components:
            for net in c.pins.values():
                seen[net.name] = net
        return sorted(seen.values())

    @property
    def non_ground_nets(self) -> List[Net]:
        return [n for n in self.nets if not n.is_ground]

    def components_on(self, net: Net) -> List[Tuple[Component, str]]:
        """(component, pin) pairs touching ``net``."""
        found = []
        for c in self.components:
            for pin, n in c.pins.items():
                if n == net:
                    found.append((c, pin))
        return found

    def validate(self, strict: bool = True) -> None:
        """Structural sanity: a ground reference and no dangling nets.

        ``strict=False`` skips the dangling-net check — fault injection
        legitimately leaves nets hanging (a node-open detaches a pin) and
        the simulator's gmin leak keeps such circuits solvable.
        """
        nets = self.nets
        if not any(n.is_ground for n in nets):
            raise ValueError(f"{self.name}: no ground net {GROUND!r}")
        if not strict:
            return
        for net in nets:
            if net.name.startswith("__float"):
                continue  # intentionally floating (node-open fault injection)
            touching = self.components_on(net)
            if len(touching) < 2 and not net.is_ground:
                # An ideal gain block's output may legitimately drive an
                # otherwise unloaded probe net.
                if any(pin == "out" for _, pin in touching):
                    continue
                raise ValueError(
                    f"{self.name}: net {net.name!r} touches only "
                    f"{[c.name for c, _ in touching]}"
                )

    def canonical_form(self) -> Tuple:
        """Order-independent structural description of the circuit.

        Components are listed sorted by name, each as ``(kind, name,
        pins, params)`` with pins and numeric parameters themselves
        sorted, so two circuits built in different insertion orders —
        or round-tripped through the netlist format — canonicalise
        identically.  The circuit ``name``/``description`` labels are
        deliberately excluded: the form describes electrical content.
        """
        comps = []
        for c in sorted(self.components, key=lambda c: c.name):
            pins = tuple(sorted((p, n.name) for p, n in c.pins.items()))
            params = tuple(
                sorted(
                    (k, float(v))
                    for k, v in vars(c).items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                )
            )
            comps.append((c.kind, c.name, pins, params))
        return tuple(comps)

    def fingerprint(self) -> str:
        """Deterministic content hash (sha256 hex) of :meth:`canonical_form`.

        Equal for electrically identical circuits regardless of component
        insertion order; used as the circuit part of the fleet service's
        content-addressed result-cache keys.
        """
        return hashlib.sha256(repr(self.canonical_form()).encode()).hexdigest()

    def clone(self) -> "Circuit":
        return Circuit(
            name=self.name,
            components=[c.clone() for c in self.components],
            description=self.description,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit({self.name}, {len(self.components)} components)"
