"""Analog-circuit substrate.

The paper diagnoses physical circuits; we synthesise their behaviour
with a small DC operating-point simulator (modified nodal analysis with
device-state iteration for diodes and BJTs), inject faults, and expose a
constraint-network view of each circuit that the FLAMES engine reasons
over.  The simulator and the diagnosis models are deliberately separate
code paths, mirroring the paper's separation between the unit under test
and its model database.
"""

from repro.circuit.netlist import Circuit, Component, Net, GROUND
from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.simulate import DCSolver, OperatingPoint, SimulationError
from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.measurements import Measurement, probe, probe_all
from repro.circuit.constraints import Constraint, ConstraintNetwork, Variable
from repro.circuit.library import (
    amplifier_cascade,
    diode_resistor_circuit,
    rc_lowpass,
    three_stage_amplifier,
)
from repro.circuit.transient import (
    TransientResult,
    TransientSolver,
    Waveform,
    step_waveform,
)
from repro.circuit.generators import (
    resistor_ladder,
    amplifier_chain,
    divider_tree,
    mesh_grid,
    bridge_cascade,
)
from repro.circuit.spice import NetlistError, parse_netlist, parse_value, write_netlist
from repro.circuit.analysis import (
    MonteCarloResult,
    WorstCaseResult,
    dc_sweep,
    monte_carlo,
    worst_case,
)

__all__ = [
    "Circuit",
    "Component",
    "Net",
    "GROUND",
    "Resistor",
    "Capacitor",
    "Diode",
    "BJT",
    "Amplifier",
    "VoltageSource",
    "CurrentSource",
    "DCSolver",
    "OperatingPoint",
    "SimulationError",
    "Fault",
    "FaultKind",
    "apply_fault",
    "Measurement",
    "probe",
    "probe_all",
    "Constraint",
    "ConstraintNetwork",
    "Variable",
    "amplifier_cascade",
    "diode_resistor_circuit",
    "rc_lowpass",
    "three_stage_amplifier",
    "TransientResult",
    "TransientSolver",
    "Waveform",
    "step_waveform",
    "MonteCarloResult",
    "WorstCaseResult",
    "dc_sweep",
    "monte_carlo",
    "worst_case",
    "NetlistError",
    "parse_netlist",
    "parse_value",
    "write_netlist",
    "resistor_ladder",
    "amplifier_chain",
    "divider_tree",
    "mesh_grid",
    "bridge_cascade",
]
