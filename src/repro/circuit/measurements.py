"""Measurements: probing the (simulated) unit under test.

A measurement is a fuzzy interval — the paper insists the imprecision of
the measuring equipment be representable separately from component
tolerances.  :func:`probe` reads a node voltage from an operating point
and wraps it with the instrument's fuzziness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.circuit.simulate import OperatingPoint
from repro.fuzzy import FuzzyInterval

__all__ = ["Measurement", "probe", "probe_all"]


@dataclass(frozen=True)
class Measurement:
    """An observed quantity: a probe point name plus its fuzzy value."""

    point: str
    value: FuzzyInterval

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.point}={self.value!r}"


def probe(
    op: OperatingPoint,
    net: str,
    imprecision: float = 0.01,
    relative: bool = False,
) -> Measurement:
    """Measure the voltage of ``net`` with the given instrument imprecision.

    ``imprecision`` is the slope width added on both sides — absolute
    volts by default, or relative to the reading when ``relative``.
    """
    reading = op.voltage(net)
    spread = abs(reading) * imprecision if relative else imprecision
    return Measurement(f"V({net})", FuzzyInterval.number(reading, spread))


def probe_all(
    op: OperatingPoint,
    nets: Sequence[str],
    imprecision: float = 0.01,
    relative: bool = False,
) -> List[Measurement]:
    """Measure several nets with the same instrument."""
    return [probe(op, n, imprecision, relative) for n in nets]
