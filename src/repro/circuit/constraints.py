"""Constraint-network view of a circuit: the model database (paper §6.2).

Every component contributes *correct-behaviour* constraints guarded by
the propositional assumption ``Correct(component)``; Kirchhoff's current
law is applied at every net (unguarded by default — wiring is trusted
unless ``assumable_nodes`` is set, in which case each net's KCL carries
its own assumption and wiring faults become diagnosable).

Constraints are bidirectional: each can solve for any of its variables
given fuzzy values for the others, which is what lets the propagation
engine reason from measurements *backwards* through the models.

Nonlinear devices (diode, BJT) contribute *modal* constraints: the
equation set depends on the operating region, and the region test reads
the best current estimate of the controlling voltage (the paper's
qualitative rule "If T is correct and Vbe(T) >= 0.4 then it should be in
an ON state" is exactly such a mode guard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Net
from repro.fuzzy import FuzzyInterval

__all__ = ["Variable", "Constraint", "ConstraintNetwork", "ModeGuard"]

#: Default physical seed bounds.
VOLTAGE_RAIL = 60.0
CURRENT_RAIL = 10.0

#: Vbe level separating cutoff from conduction in the mode guard —
#: the paper's published qualitative threshold.
VBE_GUARD = 0.4
#: Vbe level above which conduction is entailed regardless of the
#: designed mode (comfortably past the guard so tolerances cannot flip
#: a healthy device).
VBE_ENTAIL_ON = 0.55
#: Vce margin around vce_sat for saturation entailment.
VCE_SAT_MARGIN = 0.1


@dataclass(frozen=True)
class Variable:
    """A circuit quantity: a node voltage or a branch current."""

    name: str
    kind: str  # "voltage" | "current"

    @property
    def seed(self) -> FuzzyInterval:
        """Physically justified initial range (assumption-free)."""
        rail = VOLTAGE_RAIL if self.kind == "voltage" else CURRENT_RAIL
        return FuzzyInterval.crisp_interval(-rail, rail)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: A mode guard inspects current best estimates and decides whether a
#: modal constraint applies right now.  Estimates may be plain
#: ``FuzzyInterval`` values or propagation values carrying ``.interval``
#: and ``.environment``.  A guard returns either a bare bool or a
#: ``(applicable, evidence_env)`` pair: when evidence *overrides* the
#: designed operating region, the assumptions that evidence rests on
#: must travel with every value the activated constraints derive —
#: otherwise a mode flip inferred from (say) a nominal prediction would
#: blame the device alone for conflicts the prediction's components
#: caused.
ModeGuard = Callable[[Dict[str, object]], "bool | Tuple[bool, FrozenSet[str]]"]


def _estimate_interval(estimate: object) -> Optional[FuzzyInterval]:
    if estimate is None:
        return None
    if isinstance(estimate, FuzzyInterval):
        return estimate
    return getattr(estimate, "interval", None)


def _estimate_environment(estimate: object) -> FrozenSet[str]:
    return getattr(estimate, "environment", frozenset())


class Constraint:
    """Base: a relation over variables, guarded by assumptions.

    Subclasses implement :meth:`project`, computing the target variable's
    value from fuzzy values of the remaining variables (``None`` when the
    direction is not invertible).
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[Variable],
        assumptions: FrozenSet[str] = frozenset(),
        guard: Optional[ModeGuard] = None,
        guard_variables: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.variables = tuple(variables)
        self.assumptions = frozenset(assumptions)
        self.guard = guard
        #: Variables the mode guard reads; changes to them must re-trigger
        #: this constraint even when they are not among its own variables.
        self.guard_variables = tuple(guard_variables)

    def applicable(self, estimates: Dict[str, object]) -> bool:
        ok, _ = self.applicable_with_environment(estimates)
        return ok

    def applicable_with_environment(
        self, estimates: Dict[str, object]
    ) -> Tuple[bool, FrozenSet[str]]:
        """(applicable, evidence env the guard's decision rests on)."""
        if self.guard is None:
            return True, frozenset()
        outcome = self.guard(estimates)
        if isinstance(outcome, tuple):
            return bool(outcome[0]), frozenset(outcome[1])
        return bool(outcome), frozenset()

    def project(
        self, target: Variable, values: Dict[str, FuzzyInterval]
    ) -> Optional[FuzzyInterval]:
        raise NotImplementedError

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name}>"


class LinearConstraint(Constraint):
    """``sum_i coef_i * x_i = rhs`` with crisp coefficients, fuzzy rhs."""

    def __init__(
        self,
        name: str,
        terms: Dict[Variable, float],
        rhs: FuzzyInterval,
        assumptions: FrozenSet[str] = frozenset(),
        guard: Optional[ModeGuard] = None,
        guard_variables: Sequence[str] = (),
    ) -> None:
        if not terms:
            raise ValueError(f"{name}: a linear constraint needs terms")
        if any(c == 0.0 for c in terms.values()):
            raise ValueError(f"{name}: zero coefficient")
        super().__init__(name, list(terms), assumptions, guard, guard_variables)
        self.terms = {v.name: c for v, c in terms.items()}
        self.rhs = rhs

    def project(self, target, values):
        coef = self.terms[target.name]
        acc = self.rhs
        for name, c in self.terms.items():
            if name == target.name:
                continue
            acc = acc - values[name].scale(c)
        return acc.scale(1.0 / coef)


class ScaledDifferenceConstraint(Constraint):
    """``x_plus - x_minus = k * y`` with fuzzy coefficient ``k``.

    Covers Ohm's law (``Va - Vb = R*I``), gain blocks
    (``Vout - 0 = A*Vin``) and the BJT current gain (``Ic = beta*Ib``).
    ``x_minus`` may be ``None`` (treated as zero).
    """

    def __init__(
        self,
        name: str,
        x_plus: Variable,
        x_minus: Optional[Variable],
        y: Variable,
        k: FuzzyInterval,
        assumptions: FrozenSet[str] = frozenset(),
        guard: Optional[ModeGuard] = None,
        guard_variables: Sequence[str] = (),
    ) -> None:
        variables = [x_plus] + ([x_minus] if x_minus else []) + [y]
        super().__init__(name, variables, assumptions, guard, guard_variables)
        self.x_plus = x_plus
        self.x_minus = x_minus
        self.y = y
        self.k = k
        k_lo, k_hi = k.support
        self._k_invertible = not (k_lo <= 0.0 <= k_hi)

    def project(self, target, values):
        def xm() -> FuzzyInterval:
            if self.x_minus is None:
                return FuzzyInterval.crisp(0.0)
            return values[self.x_minus.name]

        if self.x_minus and target.name == self.x_minus.name:
            return values[self.x_plus.name] - self.k * values[self.y.name]
        if target.name == self.x_plus.name:
            return xm() + self.k * values[self.y.name]
        if target.name == self.y.name:
            if not self._k_invertible:
                return None
            return (values[self.x_plus.name] - xm()) / self.k
        raise KeyError(f"{target.name} not in {self.name}")


class RangeConstraint(Constraint):
    """``x in interval`` — a one-variable model prediction.

    The diode's sub-threshold current bound (the paper's
    ``Id <= 100 uA`` as ``[-1, 100, 0, 10]``) is the canonical instance.
    """

    def __init__(
        self,
        name: str,
        variable: Variable,
        interval: FuzzyInterval,
        assumptions: FrozenSet[str] = frozenset(),
        guard: Optional[ModeGuard] = None,
        guard_variables: Sequence[str] = (),
    ) -> None:
        super().__init__(name, [variable], assumptions, guard, guard_variables)
        self.interval = interval

    def project(self, target, values):
        return self.interval


def _estimate_difference(
    estimates: Dict[str, object], hi: str, lo: str
) -> Optional[Tuple[FuzzyInterval, FrozenSet[str]]]:
    raw_a, raw_b = estimates.get(hi), estimates.get(lo)
    a, b = _estimate_interval(raw_a), _estimate_interval(raw_b)
    if a is None or b is None:
        return None
    env = _estimate_environment(raw_a) | _estimate_environment(raw_b)
    return a - b, env


def _bjt_conducting(b: str, e: str, nominal_conducting: bool) -> ModeGuard:
    """Conducting-mode guard: the designed region unless evidence entails
    otherwise.

    A modal constraint must only fire when its mode actually holds;
    applying a merely *possible* mode is unsound (both diode modes firing
    at once contradicts every circuit).  The designed (nominal) operating
    region is part of the model database; current value estimates can
    override it only when they confidently entail the other region.
    """

    def guard(estimates: Dict[str, object]):
        pair = _estimate_difference(estimates, b, e)
        if pair is None:
            return nominal_conducting, frozenset()
        vbe, env = pair
        if vbe.support[1] < VBE_GUARD:
            # Entailed cutoff (paper's Vbe >= 0.4 rule, negated); the env
            # matters to the *cutoff* constraints, not the disabled ones.
            return False, env
        if vbe.support[0] >= VBE_ENTAIL_ON:
            return True, (frozenset() if nominal_conducting else env)
        return nominal_conducting, frozenset()

    return guard


def _bjt_cutoff(b: str, e: str, nominal_conducting: bool) -> ModeGuard:
    conducting = _bjt_conducting(b, e, nominal_conducting)

    def guard(estimates: Dict[str, object]):
        ok, env = conducting(estimates)
        return (not ok), env

    return guard


def _bjt_saturated(
    c: str, e: str, vce_sat: float, nominal_saturated: bool
) -> ModeGuard:
    """Saturation guard: designed region unless Vce evidence overrides.

    In saturation ``Ic < beta*Ib`` — the linear current-gain relation no
    longer holds — so the Beta constraints must switch off the moment
    the collector-emitter voltage is confidently pinned near ``vce_sat``
    (the classic trap: a fault elsewhere saturates a healthy transistor
    and an active-only model would condemn it).
    """

    def guard(estimates: Dict[str, object]):
        pair = _estimate_difference(estimates, c, e)
        if pair is None:
            return nominal_saturated, frozenset()
        vce, env = pair
        if vce.support[1] < vce_sat + VCE_SAT_MARGIN:
            return True, (frozenset() if nominal_saturated else env)
        if vce.support[0] > vce_sat + VCE_SAT_MARGIN:
            return False, env
        return nominal_saturated, frozenset()

    return guard


def _diode_conducting(a: str, c: str, v_on: float, nominal_on: bool) -> ModeGuard:
    def guard(estimates: Dict[str, object]):
        pair = _estimate_difference(estimates, a, c)
        if pair is None:
            return nominal_on, frozenset()
        vd, env = pair
        if vd.support[1] < v_on - 0.1:
            return False, env  # entailed blocking
        if vd.support[0] >= v_on - 0.05:
            return True, (frozenset() if nominal_on else env)
        return nominal_on, frozenset()

    return guard


def _diode_blocking(a: str, c: str, v_on: float, nominal_on: bool) -> ModeGuard:
    conducting = _diode_conducting(a, c, v_on, nominal_on)

    def guard(estimates: Dict[str, object]):
        ok, env = conducting(estimates)
        return (not ok), env

    return guard


class ConstraintNetwork:
    """Variables + constraints + assumption inventory for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        assumable_nodes: bool = False,
        nominal_modes: Optional[Dict[str, str]] = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.assumable_nodes = assumable_nodes
        #: Designed operating region per nonlinear device ("active" /
        #: "cutoff" / "saturation" for BJTs, "on" / "off" for diodes).
        #: Defaults to the conducting region, which is what well-biased
        #: analog circuits are designed for; :class:`repro.core.diagnosis.
        #: Flames` fills this from a golden DC solve.
        self.nominal_modes = dict(nominal_modes or {})
        self.variables: Dict[str, Variable] = {}
        self.constraints: List[Constraint] = []
        self._build()

    # ------------------------------------------------------------------
    def voltage(self, net: "Net | str") -> Variable:
        name = net.name if isinstance(net, Net) else net
        return self._var(f"V({name})", "voltage")

    def current(self, component: str, terminal: str = "") -> Variable:
        key = f"I({component}.{terminal})" if terminal else f"I({component})"
        return self._var(key, "current")

    def _var(self, name: str, kind: str) -> Variable:
        if name not in self.variables:
            self.variables[name] = Variable(name, kind)
        return self.variables[name]

    @property
    def component_names(self) -> List[str]:
        return [c.name for c in self.circuit.components]

    def constraints_on(self, variable_name: str) -> List[Constraint]:
        return [
            c for c in self.constraints if variable_name in c.variable_names
        ]

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for comp in self.circuit.components:
            builder = getattr(self, f"_build_{comp.kind.lower()}", None)
            if builder is None:
                raise ValueError(f"no diagnosis model for component kind {comp.kind}")
            builder(comp)
        self._build_kcl()

    def _build_kcl(self) -> None:
        """One current-law constraint per non-ground net."""
        for net in self.circuit.non_ground_nets:
            terms: Dict[Variable, float] = {}
            for comp, pin in self.circuit.components_on(net):
                var, sign = self._pin_current(comp, pin)
                if var is None:
                    continue
                terms[var] = terms.get(var, 0.0) + sign
            terms = {v: c for v, c in terms.items() if c != 0.0}
            if not terms:
                continue
            assumptions = frozenset({f"node:{net.name}"}) if self.assumable_nodes else frozenset()
            self.constraints.append(
                LinearConstraint(
                    f"KCL({net.name})", terms, FuzzyInterval.crisp(0.0), assumptions
                )
            )

    def _pin_current(self, comp, pin: str):
        """(variable, sign) of the current *leaving the net* into ``comp``."""
        if isinstance(comp, Resistor):
            return self.current(comp.name), (1.0 if pin == "a" else -1.0)
        if isinstance(comp, Capacitor):
            return None, 0.0  # open at DC
        if isinstance(comp, (VoltageSource, CurrentSource)):
            return self.current(comp.name), (1.0 if pin == "p" else -1.0)
        if isinstance(comp, Diode):
            return self.current(comp.name), (1.0 if pin == "anode" else -1.0)
        if isinstance(comp, BJT):
            # Ib and Ic flow into the device, Ie flows out of it.
            if pin == "b":
                return self.current(comp.name, "b"), 1.0
            if pin == "c":
                return self.current(comp.name, "c"), 1.0
            return self.current(comp.name, "e"), -1.0
        if isinstance(comp, Amplifier):
            if pin == "inp":
                return None, 0.0  # infinite input impedance
            return self.current(comp.name), 1.0  # free output current
        raise ValueError(f"unknown component kind {comp.kind}")

    # ------------------------------------------------------------------
    # Per-component models
    # ------------------------------------------------------------------
    def _build_resistor(self, comp: Resistor) -> None:
        r = comp.fuzzy_params()["resistance"]
        self.constraints.append(
            ScaledDifferenceConstraint(
                f"Ohm({comp.name})",
                self.voltage(comp.net("a")),
                self.voltage(comp.net("b")),
                self.current(comp.name),
                r,
                frozenset({comp.name}),
            )
        )

    def _build_capacitor(self, comp: Capacitor) -> None:
        # Open at DC: no constraint ties its pins; its correctness is not
        # testable from DC measurements.
        return

    def _build_voltagesource(self, comp: VoltageSource) -> None:
        v = comp.fuzzy_params()["voltage"]
        self.constraints.append(
            LinearConstraint(
                f"Source({comp.name})",
                {self.voltage(comp.net("p")): 1.0, self.voltage(comp.net("n")): -1.0},
                v,
                frozenset({comp.name}),
            )
        )

    def _build_currentsource(self, comp: CurrentSource) -> None:
        # The network's I() is the p->n branch current, while the source
        # pushes `current` internally n->p, hence the negation.
        i = comp.fuzzy_params()["current"].scale(-1.0)
        self.constraints.append(
            RangeConstraint(
                f"Source({comp.name})",
                self.current(comp.name),
                i,
                frozenset({comp.name}),
            )
        )

    def _build_amplifier(self, comp: Amplifier) -> None:
        gain = comp.fuzzy_params()["gain"]
        self.constraints.append(
            ScaledDifferenceConstraint(
                f"Gain({comp.name})",
                self.voltage(comp.net("out")),
                None,
                self.voltage(comp.net("inp")),
                gain,
                frozenset({comp.name}),
            )
        )

    def _build_diode(self, comp: Diode) -> None:
        params = comp.fuzzy_params()
        a = self.voltage(comp.net("anode"))
        c = self.voltage(comp.net("cathode"))
        i = self.current(comp.name)
        nominal_on = self.nominal_modes.get(comp.name, "on") == "on"
        conducting = _diode_conducting(a.name, c.name, comp.v_on, nominal_on)
        blocking = _diode_blocking(a.name, c.name, comp.v_on, nominal_on)
        gvars = (a.name, c.name)
        # Conducting: a fixed junction drop.
        self.constraints.append(
            LinearConstraint(
                f"DiodeOn({comp.name})",
                {a: 1.0, c: -1.0},
                params["v_on"],
                frozenset({comp.name}),
                guard=conducting,
                guard_variables=gvars,
            )
        )
        # Blocking / sub-threshold: the fuzzy leak bound on current.
        self.constraints.append(
            RangeConstraint(
                f"DiodeLeak({comp.name})",
                i,
                params["leak"],
                frozenset({comp.name}),
                guard=blocking,
                guard_variables=gvars,
            )
        )

    def _build_bjt(self, comp: BJT) -> None:
        params = comp.fuzzy_params()
        vb = self.voltage(comp.net("b"))
        ve = self.voltage(comp.net("e"))
        vc = self.voltage(comp.net("c"))
        ib = self.current(comp.name, "b")
        ic = self.current(comp.name, "c")
        ie = self.current(comp.name, "e")
        asm = frozenset({comp.name})
        mode = self.nominal_modes.get(comp.name, "active")
        nominal_conducting = mode != "cutoff"
        conducting = _bjt_conducting(vb.name, ve.name, nominal_conducting)
        cutoff = _bjt_cutoff(vb.name, ve.name, nominal_conducting)
        saturated = _bjt_saturated(
            vc.name, ve.name, comp.vce_sat, mode == "saturation"
        )
        gvars = (vb.name, ve.name, vc.name)

        def linear(estimates):
            ok_conducting, env_conducting = conducting(estimates)
            ok_saturated, env_saturated = saturated(estimates)
            return (
                ok_conducting and not ok_saturated,
                env_conducting | env_saturated,
            )
        # Conducting (linear region): Vbe = vbe_on, Ic = beta * Ib.
        self.constraints.append(
            LinearConstraint(
                f"Vbe({comp.name})", {vb: 1.0, ve: -1.0}, params["vbe_on"], asm,
                guard=conducting, guard_variables=gvars,
            )
        )
        self.constraints.append(
            ScaledDifferenceConstraint(
                f"Beta({comp.name})", ic, None, ib, params["beta"], asm,
                guard=linear, guard_variables=gvars,
            )
        )
        # Saturation: Vce pinned at vce_sat (with tolerance), beta law off.
        self.constraints.append(
            LinearConstraint(
                f"VceSat({comp.name})",
                {vc: 1.0, ve: -1.0},
                # the whole physical saturation band, not just vce_sat
                FuzzyInterval(0.0, comp.vce_sat + 0.1, 0.0, 0.1),
                asm,
                guard=saturated,
                guard_variables=gvars,
            )
        )
        self.constraints.append(
            RangeConstraint(
                f"IbPositive({comp.name})",
                ib,
                FuzzyInterval(0.0, CURRENT_RAIL, 1e-7, 0.0),
                asm,
                guard=conducting,
                guard_variables=gvars,
            )
        )
        # Cutoff: junction currents vanish.
        tiny = FuzzyInterval(0.0, 0.0, 1e-7, 1e-7)
        self.constraints.append(
            RangeConstraint(
                f"CutoffIb({comp.name})", ib, tiny, asm,
                guard=cutoff, guard_variables=gvars,
            )
        )
        self.constraints.append(
            RangeConstraint(
                f"CutoffIc({comp.name})", ic, tiny, asm,
                guard=cutoff, guard_variables=gvars,
            )
        )
        # Always: Kirchhoff at the device, Ie = Ib + Ic.
        self.constraints.append(
            LinearConstraint(
                f"Ie({comp.name})",
                {ie: 1.0, ib: -1.0, ic: -1.0},
                FuzzyInterval.crisp(0.0),
                asm,
            )
        )
        # Algebraic consequences of {Ic = beta*Ib, Ie = Ib + Ic} in the
        # conducting region.  Interval propagation cannot solve the pair
        # for Ib given Ie (the loop has gain beta), so the closed forms
        # are added explicitly — standard redundant-constraint practice.
        beta = params["beta"]
        self.constraints.append(
            ScaledDifferenceConstraint(
                f"IeFromIb({comp.name})", ie, None, ib, beta + 1.0, asm,
                guard=linear, guard_variables=gvars,
            )
        )
        self.constraints.append(
            ScaledDifferenceConstraint(
                f"IeFromIc({comp.name})", ie, None, ic,
                (beta + 1.0) / beta, asm,
                guard=linear, guard_variables=gvars,
            )
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "variables": len(self.variables),
            "constraints": len(self.constraints),
            "components": len(self.circuit.components),
        }
