"""Fault injection.

The paper exercises both *hard* faults (opens and shorts) and *soft*
faults (parametric drifts, e.g. "R2 is slightly high: 12.18k",
"Beta2 is slightly low: 194").  A :class:`Fault` describes the defect;
:func:`apply_fault` returns a faulty **clone** of the circuit so the
golden netlist stays untouched.

Opens and shorts are modelled with extreme but finite resistances so the
MNA system stays regular; a *node open* rewires one pin onto a fresh
floating net (the "Open circuit in N1" defect of figure 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Component

__all__ = [
    "FaultKind",
    "Fault",
    "apply_fault",
    "apply_faults",
    "OPEN_RESISTANCE",
    "SHORT_RESISTANCE",
]

#: Resistance used to emulate an open circuit (finite for MNA regularity).
OPEN_RESISTANCE = 1e12
#: Resistance used to emulate a short circuit.
SHORT_RESISTANCE = 1e-3


class FaultKind(enum.Enum):
    """The defect taxonomy used by the experiments."""

    OPEN = "open"  # component becomes (nearly) an open circuit
    SHORT = "short"  # component becomes (nearly) a wire
    PARAM = "param"  # a parameter drifts to `value`
    NODE_OPEN = "node_open"  # one pin disconnects from its net
    DRIFT = "drift"  # a parameter drifts *relatively* by `value` (e.g. tempco aging)
    INTERMITTENT = "intermittent"  # `base` defect present only in some measurements


@dataclass(frozen=True)
class Fault:
    """A single defect.

    Attributes:
        kind: the defect class.
        component: name of the affected component (for NODE_OPEN, the
            component whose pin detaches).
        parameter: for PARAM/DRIFT faults, which parameter drifts
            (defaults to the component's main parameter).
        value: for PARAM faults, the new crisp value; for DRIFT faults,
            the *relative* drift (``+0.2`` means 20% high — the shape a
            temperature-coefficient sweep produces).
        pin: for NODE_OPEN faults, which pin detaches.
        base: for INTERMITTENT faults, the underlying defect that is
            present only in a subset of the measurements.  Applying an
            intermittent fault yields the unit *while the defect shows*;
            which observations see it is the scenario's business (the
            corpus generator mixes faulty and golden readings).
    """

    kind: FaultKind
    component: str
    parameter: str = ""
    value: float = 0.0
    pin: str = ""
    base: Optional["Fault"] = None

    def describe(self) -> str:
        if self.kind is FaultKind.PARAM:
            return f"{self.component}.{self.parameter or 'value'} -> {self.value:g}"
        if self.kind is FaultKind.DRIFT:
            return f"{self.component}.{self.parameter or 'value'} drift {self.value:+.3g}"
        if self.kind is FaultKind.NODE_OPEN:
            return f"open at {self.component}.{self.pin}"
        if self.kind is FaultKind.INTERMITTENT:
            inner = self.base.describe() if self.base else self.component
            return f"intermittent({inner})"
        return f"{self.kind.value} {self.component}"

    def to_dict(self) -> Dict:
        """Plain-data form (manifest serialisation); inverse of :meth:`from_dict`."""
        data: Dict = {"kind": self.kind.value, "component": self.component}
        if self.parameter:
            data["parameter"] = self.parameter
        if self.value:
            data["value"] = self.value
        if self.pin:
            data["pin"] = self.pin
        if self.base is not None:
            data["base"] = self.base.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Fault":
        base = data.get("base")
        return cls(
            kind=FaultKind(str(data["kind"])),
            component=str(data["component"]),
            parameter=str(data.get("parameter", "")),
            value=float(data.get("value", 0.0)),
            pin=str(data.get("pin", "")),
            base=cls.from_dict(base) if base else None,
        )


def apply_fault(circuit: Circuit, fault: Fault) -> Circuit:
    """A faulty clone of ``circuit``; the original is untouched."""
    if fault.kind is FaultKind.INTERMITTENT:
        if fault.base is None:
            raise ValueError("an INTERMITTENT fault needs its 'base' defect")
        if fault.base.kind is FaultKind.INTERMITTENT:
            raise ValueError("INTERMITTENT faults do not nest")
        return apply_fault(circuit, fault.base)
    faulty = circuit.clone()
    comp = faulty.component(fault.component)
    if fault.kind is FaultKind.OPEN:
        _set_extreme(comp, OPEN_RESISTANCE, open_fault=True)
    elif fault.kind is FaultKind.SHORT:
        _set_extreme(comp, SHORT_RESISTANCE, open_fault=False)
    elif fault.kind is FaultKind.PARAM:
        _drift(comp, fault.parameter, fault.value)
    elif fault.kind is FaultKind.DRIFT:
        _drift_relative(comp, fault.parameter, fault.value)
    elif fault.kind is FaultKind.NODE_OPEN:
        if fault.pin not in comp.PINS:
            raise ValueError(f"{comp.name} has no pin {fault.pin!r}")
        comp.rewire(fault.pin, f"__float_{comp.name}_{fault.pin}")
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown fault kind {fault.kind}")
    faulty.name = f"{circuit.name}+{fault.describe()}"
    return faulty


def apply_faults(circuit: Circuit, faults: Sequence[Fault]) -> Circuit:
    """A clone with every fault applied, in order (multi-fault units)."""
    faulty = circuit
    for fault in faults:
        faulty = apply_fault(faulty, fault)
    return faulty


def _set_extreme(comp: Component, resistance: float, open_fault: bool) -> None:
    if isinstance(comp, Resistor):
        comp.resistance = resistance
    elif isinstance(comp, Diode):
        if open_fault:
            # Never conducts: raise the threshold beyond reach.
            comp.v_on = 1e6
        else:
            # Shorted junction: zero drop, conducts both ways. A tiny
            # threshold keeps the piecewise model well-defined.
            comp.v_on = 0.0
    elif isinstance(comp, BJT):
        if open_fault:
            comp.vbe_on = 1e6  # junction never conducts -> permanently cut off
        else:
            comp.vce_sat = 0.0
            comp.vbe_on = 0.0
    elif isinstance(comp, Capacitor):
        if not open_fault:
            raise ValueError("a capacitor short needs a PARAM fault on a model "
                             "that conducts at DC; use NODE_OPEN or resistor faults")
        # open capacitor: already open at DC; nothing to change.
    elif isinstance(comp, Amplifier):
        comp.gain = 0.0 if open_fault else 1.0
    elif isinstance(comp, VoltageSource):
        if open_fault:
            raise ValueError("an open voltage source makes the circuit unsolvable; "
                             "use NODE_OPEN on a neighbouring component instead")
        comp.voltage = 0.0
    else:
        raise ValueError(f"cannot apply open/short to {comp.kind}")


def _main_parameter(comp: Component, parameter: str) -> str:
    name = parameter
    if not name:
        defaults = {
            Resistor: "resistance",
            Capacitor: "capacitance",
            BJT: "beta",
            Amplifier: "gain",
            VoltageSource: "voltage",
            Diode: "v_on",
        }
        name = defaults.get(type(comp), "")
    if not name or not hasattr(comp, name):
        raise ValueError(f"{comp.name} ({comp.kind}) has no parameter {parameter!r}")
    return name


def _drift(comp: Component, parameter: str, value: float) -> None:
    setattr(comp, _main_parameter(comp, parameter), value)


def _drift_relative(comp: Component, parameter: str, fraction: float) -> None:
    name = _main_parameter(comp, parameter)
    setattr(comp, name, getattr(comp, name) * (1.0 + fraction))
