"""Parametric circuit families for the scaling and strategy studies.

The paper claims fuzzy intervals "avoid possible explosions either in
treating tolerances or in sets of candidates"; these generators produce
circuits of controlled size so the benchmarks can sweep circuit size and
measure value spread, nogood counts and candidate counts for the crisp
and fuzzy engines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.circuit.components import Amplifier, Resistor, VoltageSource
from repro.circuit.netlist import Circuit, GROUND

__all__ = ["resistor_ladder", "amplifier_chain", "divider_tree"]


def resistor_ladder(
    sections: int,
    supply: float = 10.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """An R-2R-style ladder with ``sections`` series/shunt pairs.

    Nets are ``n1 .. n<sections>``; probe any of them.  Resistances are
    drawn from a decade around 10 kOhm when ``rng`` is given, otherwise
    fixed at 10k/20k so results are deterministic.
    """
    if sections < 1:
        raise ValueError("need at least one ladder section")
    ckt = Circuit(f"ladder-{sections}")
    ckt.add(VoltageSource("Vin", supply, p="in", n=GROUND))
    prev = "in"
    for i in range(1, sections + 1):
        node = f"n{i}"
        series = 10e3 if rng is None else rng.uniform(5e3, 50e3)
        shunt = 20e3 if rng is None else rng.uniform(5e3, 50e3)
        ckt.add(Resistor(f"Rs{i}", series, tolerance, a=prev, b=node))
        ckt.add(Resistor(f"Rp{i}", shunt, tolerance, a=node, b=GROUND))
        prev = node
    return ckt


def amplifier_chain(
    stages: int,
    input_voltage: float = 1.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """A single-path chain of gain blocks (the paper's "single path" shape).

    Gains default to an alternating 2.0 / 0.5 pattern to keep voltages
    bounded; with ``rng`` they are drawn in [0.5, 2.0].
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    ckt = Circuit(f"amp-chain-{stages}")
    ckt.add(VoltageSource("Vin", input_voltage, p="s0", n=GROUND))
    for i in range(1, stages + 1):
        gain = (2.0 if i % 2 else 0.5) if rng is None else rng.uniform(0.5, 2.0)
        ckt.add(Amplifier(f"amp{i}", gain, tolerance, inp=f"s{i-1}", out=f"s{i}"))
    return ckt


def divider_tree(
    depth: int,
    supply: float = 12.0,
    tolerance: float = 0.05,
) -> Circuit:
    """A binary tree of voltage dividers (multiple interacting paths).

    Each level halves the parent voltage through a 10k/10k divider; the
    tree has ``2**depth - 1`` internal nodes, exercising candidate
    generation with overlapping support sets.
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    ckt = Circuit(f"divider-tree-{depth}")
    ckt.add(VoltageSource("Vin", supply, p="t", n=GROUND))
    counter = [0]

    def grow(parent: str, level: int) -> None:
        if level >= depth:
            return
        for side in ("l", "r"):
            counter[0] += 1
            node = f"{parent}{side}"
            ckt.add(Resistor(f"Ra{counter[0]}", 10e3, tolerance, a=parent, b=node))
            ckt.add(Resistor(f"Rb{counter[0]}", 10e3, tolerance, a=node, b=GROUND))
            grow(node, level + 1)

    grow("t", 0)
    return ckt
