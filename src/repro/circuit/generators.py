"""Parametric circuit families for the scaling and strategy studies.

The paper claims fuzzy intervals "avoid possible explosions either in
treating tolerances or in sets of candidates"; these generators produce
circuits of controlled size so the benchmarks can sweep circuit size and
measure value spread, nogood counts and candidate counts for the crisp
and fuzzy engines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.circuit.components import Amplifier, Resistor, VoltageSource
from repro.circuit.netlist import Circuit, GROUND

__all__ = [
    "resistor_ladder",
    "amplifier_chain",
    "divider_tree",
    "mesh_grid",
    "bridge_cascade",
]


def _pick(rng: Optional[random.Random], nominal: float, lo: float, hi: float) -> float:
    """Nominal when unseeded, a draw from [lo, hi] when ``rng`` is given."""
    return nominal if rng is None else rng.uniform(lo, hi)


def resistor_ladder(
    sections: int,
    supply: float = 10.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """An R-2R-style ladder with ``sections`` series/shunt pairs.

    Nets are ``n1 .. n<sections>``; probe any of them.  Resistances are
    drawn from a decade around 10 kOhm when ``rng`` is given, otherwise
    fixed at 10k/20k so results are deterministic.
    """
    if sections < 1:
        raise ValueError("need at least one ladder section")
    ckt = Circuit(f"ladder-{sections}")
    ckt.add(VoltageSource("Vin", supply, p="in", n=GROUND))
    prev = "in"
    for i in range(1, sections + 1):
        node = f"n{i}"
        series = 10e3 if rng is None else rng.uniform(5e3, 50e3)
        shunt = 20e3 if rng is None else rng.uniform(5e3, 50e3)
        ckt.add(Resistor(f"Rs{i}", series, tolerance, a=prev, b=node))
        ckt.add(Resistor(f"Rp{i}", shunt, tolerance, a=node, b=GROUND))
        prev = node
    return ckt


def amplifier_chain(
    stages: int,
    input_voltage: float = 1.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """A single-path chain of gain blocks (the paper's "single path" shape).

    Gains default to an alternating 2.0 / 0.5 pattern to keep voltages
    bounded; with ``rng`` they are drawn in [0.5, 2.0].
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    ckt = Circuit(f"amp-chain-{stages}")
    ckt.add(VoltageSource("Vin", input_voltage, p="s0", n=GROUND))
    for i in range(1, stages + 1):
        gain = (2.0 if i % 2 else 0.5) if rng is None else rng.uniform(0.5, 2.0)
        ckt.add(Amplifier(f"amp{i}", gain, tolerance, inp=f"s{i-1}", out=f"s{i}"))
    return ckt


def divider_tree(
    depth: int,
    supply: float = 12.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """A binary tree of voltage dividers (multiple interacting paths).

    Each level halves the parent voltage through a 10k/10k divider; the
    tree has ``2**depth - 1`` internal nodes, exercising candidate
    generation with overlapping support sets.  With ``rng`` the divider
    resistances are drawn from a decade around 10 kOhm.
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    ckt = Circuit(f"divider-tree-{depth}")
    ckt.add(VoltageSource("Vin", supply, p="t", n=GROUND))
    counter = [0]

    def grow(parent: str, level: int) -> None:
        if level >= depth:
            return
        for side in ("l", "r"):
            counter[0] += 1
            node = f"{parent}{side}"
            upper = _pick(rng, 10e3, 5e3, 50e3)
            lower = _pick(rng, 10e3, 5e3, 50e3)
            ckt.add(Resistor(f"Ra{counter[0]}", upper, tolerance, a=parent, b=node))
            ckt.add(Resistor(f"Rb{counter[0]}", lower, tolerance, a=node, b=GROUND))
            grow(node, level + 1)

    grow("t", 0)
    return ckt


def mesh_grid(
    rows: int,
    cols: int,
    supply: float = 10.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """A ``rows x cols`` resistive mesh (the many-loop stress shape).

    Nodes are ``m<r>c<c>``; horizontal resistors ``Rh*`` and vertical
    resistors ``Rv*`` join lattice neighbours, the supply drives the
    ``m0c0`` corner and ``Rload`` returns the far corner to ground.
    Every interior node sits on at least two loops, so supports overlap
    heavily and conflict localisation is genuinely hard.
    """
    if rows < 2 or cols < 2:
        raise ValueError("mesh needs at least 2x2 nodes")
    ckt = Circuit(f"mesh-{rows}x{cols}")

    def node(r: int, c: int) -> str:
        return f"m{r}c{c}"

    ckt.add(VoltageSource("Vin", supply, p=node(0, 0), n=GROUND))
    counter = 0
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                counter += 1
                ckt.add(Resistor(f"Rh{counter}", _pick(rng, 10e3, 5e3, 50e3),
                                 tolerance, a=node(r, c), b=node(r, c + 1)))
            if r + 1 < rows:
                counter += 1
                ckt.add(Resistor(f"Rv{counter}", _pick(rng, 10e3, 5e3, 50e3),
                                 tolerance, a=node(r, c), b=node(r + 1, c)))
    ckt.add(Resistor("Rload", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                     a=node(rows - 1, cols - 1), b=GROUND))
    return ckt


def bridge_cascade(
    sections: int,
    supply: float = 10.0,
    tolerance: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Circuit:
    """A chain of loaded Wheatstone bridges.

    Section ``i`` splits its input ``b<i-1>`` into two divider arms
    (``Ra``/``Rb`` to ``x<i>``, ``Rc``/``Rd`` to ``y<i>``) tied by the
    bridge resistor ``Re<i>``; ``Rf<i>`` couples ``x<i>`` into the next
    section.  Bridges are the classic "balanced measurements hide the
    defect" topology, so probing both arms is required to localise.
    """
    if sections < 1:
        raise ValueError("need at least one bridge section")
    ckt = Circuit(f"bridge-{sections}")
    ckt.add(VoltageSource("Vin", supply, p="b0", n=GROUND))
    for i in range(1, sections + 1):
        ckt.add(Resistor(f"Ra{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"b{i-1}", b=f"x{i}"))
        ckt.add(Resistor(f"Rb{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"x{i}", b=GROUND))
        ckt.add(Resistor(f"Rc{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"b{i-1}", b=f"y{i}"))
        ckt.add(Resistor(f"Rd{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"y{i}", b=GROUND))
        ckt.add(Resistor(f"Re{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"x{i}", b=f"y{i}"))
        ckt.add(Resistor(f"Rf{i}", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                         a=f"x{i}", b=f"b{i}"))
    ckt.add(Resistor("Rload", _pick(rng, 10e3, 5e3, 50e3), tolerance,
                     a=f"b{sections}", b=GROUND))
    return ckt
