"""Component models.

Each component carries the parameters used by *both* code paths:

* the DC simulator reads the crisp parameter values (possibly altered by
  an injected fault) to compute ground-truth behaviour;
* the diagnoser reads ``fuzzy_params()`` — nominal values softened by
  the datasheet tolerance — to build the model constraints, exactly the
  paper's "model parameters with tolerances" requirement.
"""

from __future__ import annotations

from typing import Dict

from repro.circuit.netlist import Component
from repro.fuzzy import FuzzyInterval

__all__ = [
    "Resistor",
    "Capacitor",
    "Diode",
    "BJT",
    "Amplifier",
    "VoltageSource",
    "CurrentSource",
]


class Resistor(Component):
    """Ohmic resistor: ``V = I * R``."""

    PINS = ("a", "b")

    def __init__(self, name: str, resistance: float, tolerance: float = 0.05, **conn: str):
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive")
        super().__init__(name, tolerance, **conn)
        self.resistance = resistance

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        return {"resistance": FuzzyInterval.around(self.resistance, self.tolerance)}

    def clone(self) -> "Resistor":
        return Resistor(
            self.name,
            self.resistance,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class Capacitor(Component):
    """Capacitor — an open circuit at the DC operating point.

    Kept in the netlist so dynamic-mode circuits from the paper's
    workloads can be described; the DC solver stamps nothing for it and
    the diagnoser emits no DC constraint (its correctness is untestable
    from DC measurements, which the engine reports honestly).
    """

    PINS = ("a", "b")

    def __init__(self, name: str, capacitance: float, tolerance: float = 0.1, **conn: str):
        if capacitance <= 0:
            raise ValueError(f"{name}: capacitance must be positive")
        super().__init__(name, tolerance, **conn)
        self.capacitance = capacitance

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        return {"capacitance": FuzzyInterval.around(self.capacitance, self.tolerance)}

    def clone(self) -> "Capacitor":
        return Capacitor(
            self.name,
            self.capacitance,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class Diode(Component):
    """Piecewise diode: OFF below ``v_on``, a ``v_on`` drop when conducting.

    ``leak_bound`` is the fuzzy bound on sub-threshold current used by
    the diagnosis model — the paper's ``Id <= 100 uA`` example encoded as
    ``[-1, 100, 0, 10]`` (in amperes here).
    """

    PINS = ("anode", "cathode")

    def __init__(
        self,
        name: str,
        v_on: float = 0.7,
        leak_bound: float = 100e-6,
        leak_soft: float = 10e-6,
        tolerance: float = 0.05,
        **conn: str,
    ):
        super().__init__(name, tolerance, **conn)
        self.v_on = v_on
        self.leak_bound = leak_bound
        self.leak_soft = leak_soft

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        return {
            "v_on": FuzzyInterval.around(self.v_on, self.tolerance),
            "leak": FuzzyInterval(
                -1e-6, self.leak_bound, 0.0, self.leak_soft
            ),
        }

    def clone(self) -> "Diode":
        return Diode(
            self.name,
            self.v_on,
            self.leak_bound,
            self.leak_soft,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class BJT(Component):
    """NPN transistor in the paper's linear-region model.

    ``Vbe = vbe_on`` when conducting, ``Ic = beta * Ib``; the simulator
    additionally handles cutoff (``Vbe < vbe_on`` and no current) and
    saturation (``Vce = vce_sat``, ``Ic < beta * Ib``).  The circuits in
    the paper are biased so every transistor stays in the linear region.
    """

    PINS = ("c", "b", "e")

    def __init__(
        self,
        name: str,
        beta: float,
        vbe_on: float = 0.7,
        vce_sat: float = 0.2,
        tolerance: float = 0.05,
        beta_tolerance: float = 0.1,
        **conn: str,
    ):
        if beta <= 0:
            raise ValueError(f"{name}: beta must be positive")
        super().__init__(name, tolerance, **conn)
        self.beta = beta
        self.vbe_on = vbe_on
        self.vce_sat = vce_sat
        self.beta_tolerance = beta_tolerance

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        return {
            "beta": FuzzyInterval.around(self.beta, self.beta_tolerance),
            "vbe_on": FuzzyInterval.around(self.vbe_on, self.tolerance),
        }

    def clone(self) -> "BJT":
        return BJT(
            self.name,
            self.beta,
            self.vbe_on,
            self.vce_sat,
            self.tolerance,
            self.beta_tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class Amplifier(Component):
    """Ideal unidirectional gain block: ``V(out) = gain * V(in)``.

    Infinite input impedance, ideal voltage output — the figure-2
    cascade's elements.  ``tolerance`` is an *absolute* spread on the
    gain (the paper writes ``amp1[1,1,0.05,0.05]`` ... ``amp3[3,3,0.05,
    0.05]`` — the same 0.05 at every gain).
    """

    PINS = ("inp", "out")

    def __init__(self, name: str, gain: float, tolerance: float = 0.05, **conn: str):
        super().__init__(name, tolerance, **conn)
        self.gain = gain

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        return {"gain": FuzzyInterval.number(self.gain, self.tolerance)}

    def clone(self) -> "Amplifier":
        return Amplifier(
            self.name,
            self.gain,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class VoltageSource(Component):
    """Ideal DC voltage source: ``V(p) - V(n) = voltage``."""

    PINS = ("p", "n")

    def __init__(self, name: str, voltage: float, tolerance: float = 0.0, **conn: str):
        super().__init__(name, tolerance, **conn)
        self.voltage = voltage

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        if self.tolerance:
            return {"voltage": FuzzyInterval.around(self.voltage, self.tolerance)}
        return {"voltage": FuzzyInterval.crisp(self.voltage)}

    def clone(self) -> "VoltageSource":
        return VoltageSource(
            self.name,
            self.voltage,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )


class CurrentSource(Component):
    """Ideal DC current source pushing ``current`` from ``n`` to ``p`` inside."""

    PINS = ("p", "n")

    def __init__(self, name: str, current: float, tolerance: float = 0.0, **conn: str):
        super().__init__(name, tolerance, **conn)
        self.current = current

    def fuzzy_params(self) -> Dict[str, FuzzyInterval]:
        if self.tolerance:
            return {"current": FuzzyInterval.around(self.current, self.tolerance)}
        return {"current": FuzzyInterval.crisp(self.current)}

    def clone(self) -> "CurrentSource":
        return CurrentSource(
            self.name,
            self.current,
            self.tolerance,
            **{p: n.name for p, n in self.pins.items()},
        )
