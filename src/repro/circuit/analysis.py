"""Tolerance analysis: Monte Carlo, worst-case corners, DC sweeps.

The diagnosis engine's predictions are first-order tolerance envelopes;
this module provides the reference analyses a bench engineer would run
against them:

* :func:`monte_carlo` — sample every toleranced parameter uniformly in
  its band, solve each sample, report per-net statistics.  The test
  suite uses it to validate that the sensitivity-based fuzzy predictions
  actually contain the sampled behaviour.
* :func:`worst_case` — extreme-value analysis over tolerance corners
  (exhaustive for small circuits, one-at-a-time plus the all-extreme
  corners otherwise).
* :func:`dc_sweep` — a transfer curve: sweep one source, record chosen
  nets.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.components import VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import DCSolver, SimulationError

__all__ = ["MonteCarloResult", "WorstCaseResult", "monte_carlo", "worst_case", "dc_sweep"]


def _toleranced(circuit: Circuit) -> List[Tuple[object, str, float, float]]:
    """(component, parameter, nominal, relative tolerance) to vary."""
    from repro.core.predict import _toleranced_parameters

    varied = []
    for comp in circuit.components:
        for parameter, tol_delta, _probe in _toleranced_parameters(comp):
            nominal = getattr(comp, parameter)
            if tol_delta > 0.0 and nominal != 0.0:
                varied.append((comp, parameter, nominal, tol_delta / abs(nominal)))
    return varied


@dataclass
class MonteCarloResult:
    """Per-net sample statistics over the tolerance space."""

    samples: int
    voltages: Dict[str, List[float]]
    failed: int = 0

    def mean(self, net: str) -> float:
        values = self.voltages[net]
        return sum(values) / len(values)

    def std(self, net: str) -> float:
        values = self.voltages[net]
        mu = self.mean(net)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))

    def minimum(self, net: str) -> float:
        return min(self.voltages[net])

    def maximum(self, net: str) -> float:
        return max(self.voltages[net])

    def spread(self, net: str) -> float:
        return self.maximum(net) - self.minimum(net)


def monte_carlo(
    circuit: Circuit,
    samples: int = 200,
    seed: int = 0,
    nets: Optional[Sequence[str]] = None,
) -> MonteCarloResult:
    """Uniform tolerance sampling of the DC operating point.

    The circuit is perturbed in place and restored; failures to converge
    are counted, not raised.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = random.Random(seed)
    varied = _toleranced(circuit)
    watch = list(nets) if nets is not None else [
        n.name for n in circuit.non_ground_nets
    ]
    voltages: Dict[str, List[float]] = {net: [] for net in watch}
    failed = 0
    originals = [(comp, parameter, getattr(comp, parameter)) for comp, parameter, _, _ in varied]
    try:
        for _ in range(samples):
            for comp, parameter, nominal, tolerance in varied:
                factor = 1.0 + rng.uniform(-tolerance, tolerance)
                setattr(comp, parameter, nominal * factor)
            try:
                op = DCSolver(circuit).solve()
            except (SimulationError, ValueError):
                failed += 1
                continue
            for net in watch:
                voltages[net].append(op.voltage(net))
    finally:
        for comp, parameter, value in originals:
            setattr(comp, parameter, value)
    if failed == samples:
        raise SimulationError(f"{circuit.name}: every Monte Carlo sample failed")
    return MonteCarloResult(samples - failed, voltages, failed)


@dataclass
class WorstCaseResult:
    """Extreme values per net over the examined tolerance corners."""

    corners_examined: int
    low: Dict[str, float]
    high: Dict[str, float]

    def band(self, net: str) -> Tuple[float, float]:
        return (self.low[net], self.high[net])


def worst_case(
    circuit: Circuit,
    nets: Optional[Sequence[str]] = None,
    exhaustive_limit: int = 12,
) -> WorstCaseResult:
    """Extreme-value analysis over tolerance corners.

    With at most ``exhaustive_limit`` varied parameters every corner of
    the tolerance hypercube is solved (2^n corners); beyond that, the
    one-at-a-time corners plus the two all-extreme corners are used —
    exact for monotone responses, a recognised approximation otherwise.
    """
    varied = _toleranced(circuit)
    watch = list(nets) if nets is not None else [
        n.name for n in circuit.non_ground_nets
    ]
    low = {net: float("inf") for net in watch}
    high = {net: float("-inf") for net in watch}

    if len(varied) <= exhaustive_limit:
        corner_iter = itertools.product((-1.0, 1.0), repeat=len(varied))
    else:
        one_at_a_time: List[Tuple[float, ...]] = []
        for i in range(len(varied)):
            for sign in (-1.0, 1.0):
                corner = [0.0] * len(varied)
                corner[i] = sign
                one_at_a_time.append(tuple(corner))
        one_at_a_time.append(tuple([-1.0] * len(varied)))
        one_at_a_time.append(tuple([1.0] * len(varied)))
        corner_iter = iter(one_at_a_time)

    originals = [(comp, parameter, getattr(comp, parameter)) for comp, parameter, _, _ in varied]
    corners = 0
    try:
        for corner in corner_iter:
            for (comp, parameter, nominal, tolerance), sign in zip(varied, corner):
                setattr(comp, parameter, nominal * (1.0 + sign * tolerance))
            try:
                op = DCSolver(circuit).solve()
            except (SimulationError, ValueError):
                continue
            corners += 1
            for net in watch:
                v = op.voltage(net)
                low[net] = min(low[net], v)
                high[net] = max(high[net], v)
    finally:
        for comp, parameter, value in originals:
            setattr(comp, parameter, value)
    if corners == 0:
        raise SimulationError(f"{circuit.name}: no tolerance corner converged")
    return WorstCaseResult(corners, low, high)


def dc_sweep(
    circuit: Circuit,
    source: str,
    values: Sequence[float],
    nets: Sequence[str],
) -> Dict[str, List[float]]:
    """Transfer curves: sweep a voltage source, record net voltages.

    Returns ``{"<source value axis>": values, net: readings, ...}``; the
    source is restored afterwards.
    """
    comp = circuit.component(source)
    if not isinstance(comp, VoltageSource):
        raise ValueError(f"{source!r} is not a voltage source")
    if not values:
        raise ValueError("sweep needs at least one source value")
    original = comp.voltage
    curves: Dict[str, List[float]] = {source: list(values)}
    for net in nets:
        curves[net] = []
    try:
        for value in values:
            comp.voltage = value
            op = DCSolver(circuit).solve()
            for net in nets:
                curves[net].append(op.voltage(net))
    finally:
        comp.voltage = original
    return curves
