"""The staged diagnosis pipeline — figure 3 as explicit, observable stages.

``Flames.diagnose`` used to be one opaque method; this module is the
same computation decomposed into named stages, each wrapped in a
:class:`~repro.runtime.spans.Span` and each checking the run's
:class:`~repro.runtime.context.RunContext`:

* ``nominal``    — solve/refresh the model database's nominal predictions;
* ``seed``       — build the fuzzy ATMS + propagator and assert the
  predictions and measurements;
* ``propagate``  — run the constraint-propagation fixpoint (the only
  long stage: it ticks the context per work-list pop and winds down
  cooperatively on expiry);
* ``classify``   — per-probe consistency (the figure-7 Dc table);
* ``nogoods``    — collect the weighted nogoods above threshold;
* ``candidates`` — minimal hitting sets (the candidate spaces);
* ``score``      — per-component suspicion degrees.

Interruption contract: when the context expires mid-``propagate`` the
downstream stages still run on whatever the fixpoint had established, so
the caller always receives a *well-formed* :class:`DiagnosisResult`; the
result (and its ``propagation`` outcome) is flagged ``interrupted`` and
is never cached by the service layer.  With an unbounded, untraced
context the pipeline is byte-identical to the pre-staged engine — the
golden snapshots in ``tests/golden`` pin that down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.atms import FuzzyATMS, minimal_diagnoses, suspicion_scores
from repro.atms.nodes import Node
from repro.circuit.measurements import Measurement
from repro.core.conflicts import RecognizedConflict
from repro.core.propagation import FuzzyPropagator
from repro.fuzzy import consistency
from repro.kernel import FastFuzzyATMS
from repro.runtime.context import RunContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> runtime)
    from repro.core.diagnosis import DiagnosisResult, Flames

__all__ = ["DiagnosisPipeline", "STAGES"]

#: The stage names, in execution order (also the span names).
STAGES = (
    "nominal",
    "seed",
    "propagate",
    "classify",
    "nogoods",
    "candidates",
    "score",
)


class DiagnosisPipeline:
    """One engine's diagnose cycle as explicit, interruptible stages."""

    def __init__(self, engine: "Flames") -> None:
        self.engine = engine

    def run(
        self,
        measurements: Sequence[Measurement],
        ctx: Optional[RunContext] = None,
        propagator: Optional[FuzzyPropagator] = None,
    ) -> "DiagnosisResult":
        """Run every stage; always returns a well-formed result.

        ``propagator`` reuses a warm :class:`FuzzyPropagator` built by
        :meth:`Flames.make_propagator` instead of constructing a fresh
        one: the seed stage resets its *values* (so the run is
        observationally identical to a cold run — the differential suite
        in ``tests/stream`` pins this) while the fast kernel's
        projection/op/intern memo caches persist across runs, which is
        what makes streaming re-diagnosis incremental in compute.
        """
        from repro.core.diagnosis import DiagnosisResult

        engine = self.engine
        config = engine.config
        if ctx is None:
            ctx = RunContext.background()

        with ctx.span(
            "diagnose", circuit=engine.circuit.name, kernel=config.kernel
        ):
            with ctx.span("nominal"):
                engine._ensure_nominal()
            nominal = engine._nominal
            assert nominal is not None

            atms_cls = FastFuzzyATMS if config.kernel == "fast" else FuzzyATMS
            atms = atms_cls(
                t_norm=config.t_norm, hard_threshold=config.hard_threshold
            )
            assumption_nodes: Dict[str, Node] = {}

            def node_for(name: str) -> Node:
                if name not in assumption_nodes:
                    assumption_nodes[name] = atms.create_assumption(f"ok({name})", name)
                return assumption_nodes[name]

            data_conflicts: List[RecognizedConflict] = []

            def on_conflict(conflict: RecognizedConflict) -> None:
                if conflict.degree < config.conflict_threshold:
                    return
                if not conflict.environment:
                    data_conflicts.append(conflict)
                    return
                atms.declare_soft_nogood(
                    f"{conflict.variable}",
                    [node_for(n) for n in sorted(conflict.environment)],
                    conflict.degree,
                )

            with ctx.span("seed"):
                if propagator is None:
                    propagator = FuzzyPropagator(
                        engine.network,
                        on_conflict=on_conflict,
                        config=config.effective_propagator(),
                    )
                else:
                    if propagator.network is not engine.network:
                        raise ValueError(
                            "reused propagator was built for a different network"
                        )
                    propagator.reset()
                    propagator.on_conflict = on_conflict
                # Database predictions first (so mode guards and coincidence
                # checks see them), then the observations.
                for name, prediction in nominal.items():
                    if name in engine.network.variables:
                        propagator.set_value(
                            name,
                            prediction.value,
                            prediction.support,
                            source="prediction",
                        )
                for m in measurements:
                    if m.point not in engine.network.variables:
                        raise KeyError(f"no variable {m.point!r} in the model")
                    propagator.set_value(m.point, m.value)

            with ctx.span("propagate") as span:
                if config.kernel == "fast":
                    # Chaos hook: the resilience plane's kernel.exception
                    # point fires here, where a real fast-kernel edge case
                    # would surface — the fleet's circuit breaker catches
                    # it and re-runs on the reference engine.
                    from repro.resilience import faults

                    faults.maybe_raise("kernel.exception")
                outcome = propagator.run(ctx=ctx)
                if span is not None:
                    span.meta["steps"] = outcome.steps
                    span.meta["quiescent"] = outcome.quiescent

            # The remaining stages are cheap bookkeeping over whatever the
            # fixpoint established: they run even after an interruption so
            # the partial result is well-formed (ranked, classified,
            # serialisable) — the flag below tells the caller it is partial.
            with ctx.span("classify"):
                predictions = engine.predictions()
                support = engine.prediction_support()
                consistencies = {
                    m.point: consistency(m.value, predictions[m.point])
                    for m in measurements
                    if m.point in predictions
                }
            with ctx.span("nogoods"):
                nogoods = atms.weighted_nogoods(config.conflict_threshold)
            with ctx.span("candidates"):
                diagnoses = minimal_diagnoses(
                    nogoods,
                    threshold=config.conflict_threshold,
                    max_size=config.max_candidate_size,
                )
            with ctx.span("score"):
                suspicions = {
                    a.datum: s for a, s in suspicion_scores(nogoods).items()
                }

            ctx.should_stop()  # latch expiry observed after the last stage
            return DiagnosisResult(
                measurements=list(measurements),
                predictions=predictions,
                prediction_support=support,
                consistencies=consistencies,
                nogoods=nogoods,
                diagnoses=diagnoses,
                suspicions=suspicions,
                conflicts=propagator.conflicts + data_conflicts,
                propagation=outcome,
                interrupted=ctx.interrupted or outcome.interrupted,
                trace=ctx.trace() if ctx.tracing else None,
            )
