"""Staged diagnosis runtime: deadlines, cancellation, spans, pipeline.

The production layers (fleet service, HTTP server) used to bolt
timeouts and telemetry on from the *outside* — a 504 abandoned the
asyncio future while the worker kept burning CPU, and timing was only
known at job granularity.  This package moves both concerns *inside*
the engine:

* :mod:`repro.runtime.context`  — :class:`RunContext`: monotonic
  deadline, cooperative :class:`CancelToken`, deterministic step
  budgets, trace ids;
* :mod:`repro.runtime.spans`    — :class:`Span` trees, the single
  timing mechanism behind engine traces, service telemetry phases and
  server metrics;
* :mod:`repro.runtime.pipeline` — :class:`DiagnosisPipeline`: the
  engine's diagnose cycle as named, observable, interruptible stages
  (``nominal``→``seed``→``propagate``→``classify``→``nogoods``→
  ``candidates``→``score``).

Every layer threads the same context: CLI ``--deadline``/``--trace``,
server per-request budgets and ``X-Request-Id`` trace joins, fleet
in-band worker deadlines, down to the propagator's fixpoint loop, which
ticks the context per work-list pop and winds down cooperatively.
"""

from repro.runtime.context import CancelToken, RunContext
from repro.runtime.pipeline import STAGES, DiagnosisPipeline
from repro.runtime.spans import Span, render_trace

__all__ = [
    "CancelToken",
    "RunContext",
    "DiagnosisPipeline",
    "STAGES",
    "Span",
    "render_trace",
]
