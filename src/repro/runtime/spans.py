"""Hierarchical timing spans — the one timing mechanism of the runtime.

A :class:`Span` is a named, nestable stopwatch.  The engine's staged
pipeline opens one span per stage, the fleet service folds finished
span trees into its telemetry phase accumulators, the server surfaces
them in ``/metrics`` and response payloads, and the CLI renders them as
a trace tree — all from this single primitive, so "where does the time
go?" has exactly one answer everywhere.

Spans serialise to plain dicts (``to_dict``/``from_dict``) so they can
cross process boundaries with a pickled job payload or a JSON response
body.  Durations are measured with :func:`time.perf_counter`; the
absolute start/end instants are process-local and deliberately not
part of the serialised form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "render_trace"]


@dataclass
class Span:
    """One named, nestable timing interval with optional metadata."""

    name: str
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    _start: float = 0.0
    _end: Optional[float] = None
    #: Duration override used when a span is rebuilt from a dict.
    _seconds: Optional[float] = None

    def begin(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def finish(self) -> "Span":
        if self._end is None:
            self._end = time.perf_counter()
        return self

    @property
    def seconds(self) -> float:
        """Elapsed seconds (live spans read the clock; ended spans don't)."""
        if self._seconds is not None:
            return self._seconds
        end = self._end if self._end is not None else time.perf_counter()
        return max(0.0, end - self._start)

    def walk(self) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal including this span."""
        stack: List[Tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    # ------------------------------------------------------------------
    # Plain-data round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        entry: Dict[str, object] = {"name": self.name, "seconds": self.seconds}
        if self.meta:
            entry["meta"] = dict(self.meta)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    @classmethod
    def from_dict(cls, data: Dict) -> "Span":
        span = cls(
            name=str(data.get("name", "?")),
            meta=dict(data.get("meta") or {}),
            children=[cls.from_dict(c) for c in data.get("children") or []],
        )
        span._seconds = float(data.get("seconds", 0.0))
        span._end = 0.0  # rebuilt spans are closed by construction
        return span


def _render_meta(meta: Dict[str, object]) -> str:
    return " ".join(f"{key}={meta[key]}" for key in sorted(meta))


def render_trace(trace: Dict) -> str:
    """Render a ``RunContext.trace()`` dict as an indented span tree.

    ::

        trace 7f3a9c12 [interrupted: deadline]
          diagnose                      142.10ms  circuit=amp kernel=fast
            nominal                       0.01ms
            seed                          3.20ms
            propagate                   131.07ms
    """
    header = f"trace {trace.get('trace_id', '?')}"
    if trace.get("interrupted"):
        header += f" [interrupted: {trace.get('stop_reason') or 'stopped'}]"
    lines = [header]
    for entry in trace.get("spans", ()):
        for depth, span in Span.from_dict(entry).walk():
            indent = "  " * (depth + 1)
            label = f"{indent}{span.name}"
            line = f"{label:<30} {span.seconds * 1000:>10.2f}ms"
            if span.meta:
                line += f"  {_render_meta(span.meta)}"
            lines.append(line)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)
