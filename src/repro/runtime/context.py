"""Run-scoped execution control: deadlines, cancellation, budgets, traces.

The paper's engine ran one diagnosis to completion, however long it
took; a served engine must answer "stop now" and "you have 80ms left"
*from the inside*.  :class:`RunContext` is the object threaded through
every layer (CLI → server → fleet engine → pipeline → propagator) that
carries:

* a **monotonic deadline** — absolute, on an injectable clock so tests
  can expire it deterministically;
* a **cooperative cancellation token** — thread-safe and sharable, so
  the server's event loop can cancel the worker thread it timed out;
* a **step budget** — a deterministic work bound counted in propagator
  queue pops, identical across kernels (both process the same work
  list), which is what makes interruption reproducible in tests;
* a **trace id** and a hierarchical :class:`~repro.runtime.spans.Span`
  collector (off by default; spans cost nothing when tracing is off).

Checking is *cooperative*: long-running loops call :meth:`tick` (or
:meth:`should_stop`) at safe points and wind down cleanly, returning
partial-but-well-formed results flagged ``interrupted`` — never a
half-mutated engine.  The first stop condition observed wins and is
latched in :attr:`stop_reason`.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Callable, Dict, List, Optional

from repro.runtime.spans import Span

__all__ = ["CancelToken", "RunContext"]


class CancelToken:
    """A thread-safe, latching cancellation flag.

    The requesting side (a server event loop, a supervising thread)
    calls :meth:`cancel`; the working side observes :attr:`cancelled`
    at its next checkpoint.  Cancellation is sticky — a token never
    un-cancels — and one token may be shared by several contexts.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CancelToken({'cancelled' if self.cancelled else 'live'})"


class _NullSpanHandle:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager that opens one span on a context's span stack."""

    __slots__ = ("_ctx", "span")

    def __init__(self, ctx: "RunContext", name: str, meta: Dict[str, object]):
        self._ctx = ctx
        self.span = Span(name=name, meta=meta)

    def __enter__(self) -> Span:
        ctx = self._ctx
        stack = ctx._span_stack
        if stack:
            stack[-1].children.append(self.span)
        else:
            ctx.spans.append(self.span)
        stack.append(self.span)
        self.span.begin()
        return self.span

    def __exit__(self, *exc_info: object) -> bool:
        self.span.finish()
        self._ctx._span_stack.pop()
        return False


class RunContext:
    """Deadline + cancellation + budget + trace for one diagnosis run.

    Args:
        deadline: absolute instant (on ``clock``'s timeline) after which
            the run must wind down; ``None`` = unbounded.
        step_budget: maximum cooperative :meth:`tick` charges before the
            run must stop; deterministic across kernels.  ``None`` =
            unbounded.
        trace_id: correlates the run across layers and log lines; a
            fresh id is minted when omitted.
        tracing: collect :class:`Span` trees (off by default — span
            collection is cheap but not free).
        cancel: a shared :class:`CancelToken`; a private one is built
            when omitted.
        clock: monotonic time source (injectable for deterministic
            deadline tests).
    """

    __slots__ = (
        "deadline",
        "step_budget",
        "steps_used",
        "trace_id",
        "tracing",
        "cancel_token",
        "clock",
        "spans",
        "interrupted",
        "stop_reason",
        "_span_stack",
    )

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        step_budget: Optional[int] = None,
        trace_id: Optional[str] = None,
        tracing: bool = False,
        cancel: Optional[CancelToken] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.clock = clock
        self.deadline = deadline
        self.step_budget = step_budget
        self.steps_used = 0
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self.tracing = bool(tracing)
        self.cancel_token = cancel if cancel is not None else CancelToken()
        self.spans: List[Span] = []
        self._span_stack: List[Span] = []
        self.interrupted = False
        self.stop_reason = ""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def background(cls) -> "RunContext":
        """An unbounded, untraced context (the no-deadline default)."""
        return cls()

    @classmethod
    def with_timeout(
        cls,
        seconds: Optional[float],
        *,
        trace_id: Optional[str] = None,
        tracing: bool = False,
        cancel: Optional[CancelToken] = None,
        clock: Callable[[], float] = time.monotonic,
        step_budget: Optional[int] = None,
    ) -> "RunContext":
        """A context whose deadline is ``seconds`` from now (``None`` = never)."""
        deadline = clock() + seconds if seconds is not None else None
        return cls(
            deadline=deadline,
            step_budget=step_budget,
            trace_id=trace_id,
            tracing=tracing,
            cancel=cancel,
            clock=clock,
        )

    # ------------------------------------------------------------------
    # Deadline / cancellation
    # ------------------------------------------------------------------
    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` = unbounded, floor 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    def cancel(self) -> None:
        """Request cooperative cancellation (observable across threads)."""
        self.cancel_token.cancel()

    @property
    def cancelled(self) -> bool:
        return self.cancel_token.cancelled

    def _stop(self, reason: str) -> bool:
        self.interrupted = True
        if not self.stop_reason:
            self.stop_reason = reason
        return True

    def should_stop(self) -> bool:
        """True when the run must wind down; latches :attr:`stop_reason`."""
        if self.cancel_token.cancelled:
            return self._stop("cancelled")
        if self.deadline is not None and self.clock() >= self.deadline:
            return self._stop("deadline")
        if self.step_budget is not None and self.steps_used >= self.step_budget:
            return self._stop("step-budget")
        return False

    def tick(self, steps: int = 1) -> bool:
        """Charge ``steps`` units of work and report whether to stop.

        The propagator calls this once per work-list pop: the charge is
        what makes step budgets deterministic, and the check is what
        makes deadlines and cancellation cooperative.
        """
        self.steps_used += steps
        return self.should_stop()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **meta: object):
        """Open a nested span (a no-op handle when tracing is off)."""
        if not self.tracing:
            return _NULL_SPAN
        return _SpanHandle(self, name, meta)

    def trace(self) -> Dict:
        """The collected span tree as a JSON-safe dict."""
        return {
            "trace_id": self.trace_id,
            "interrupted": self.interrupted,
            "stop_reason": self.stop_reason,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        remaining = self.remaining()
        budget = (
            f" budget={self.steps_used}/{self.step_budget}"
            if self.step_budget is not None
            else ""
        )
        left = f" remaining={remaining:.3f}s" if remaining is not None else ""
        state = " interrupted" if self.interrupted else ""
        return f"RunContext({self.trace_id}{left}{budget}{state})"
