"""A blocking HTTP client for the diagnosis server, with retries.

:class:`DiagnosisClient` is the reference consumer of the server API —
the tests, the smoke script and the throughput benchmark all drive the
server through it.  Built on :mod:`http.client` (stdlib, blocking) so
callers need no event loop; the connection is kept open across calls
and transparently re-opened after a drop.

Retry policy: ``503 Service Unavailable`` (load shed) and transport
errors (connection refused/reset, timeouts) are retried with
exponential backoff under **full jitter** — each wait is drawn
uniformly from ``[0, backoff * 2**n]`` so retry storms from many
clients decorrelate instead of hammering the server in lockstep — while
still honouring the server's ``Retry-After`` hint (as a floor) up to
``max_delay``.  The jitter source is an injectable ``random.Random``,
so tests pin a seed and the schedule is deterministic.  Any other
non-2xx answer raises immediately —
:class:`ClientError` carries the status and the server's JSON error
body, so a 400 tells you exactly which field was malformed.

Every logical request mints one ``X-Request-Id`` and sends it on
*every* retry attempt; the server honours it as the request id and the
engine trace id, so all attempts of one request join into a single
trace in the server's logs and span trees.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import uuid
from typing import Dict, List, Optional

__all__ = ["DiagnosisClient", "ClientError", "ServerUnavailable"]


class ClientError(Exception):
    """A non-retryable (or retries-exhausted) HTTP-level failure."""

    def __init__(self, status: int, payload: Dict):
        # ``error`` is a {"message": ...} object on protocol errors but a
        # bare string on interrupted results — accept both shapes.
        message = None
        if isinstance(payload, dict):
            error = payload.get("error")
            if isinstance(error, dict):
                message = error.get("message")
            elif error:
                message = str(error)
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServerUnavailable(ClientError):
    """503s / transport errors persisted through every retry."""

    def __init__(self, detail: str, payload: Optional[Dict] = None):
        ClientError.__init__(self, 503, payload or {"error": {"message": detail}})


class DiagnosisClient:
    """Connection-reusing JSON client with exponential-backoff retries.

    Args:
        host/port: where the server listens.
        timeout: socket timeout per attempt, seconds.
        retries: extra attempts after the first (0 = fail fast).
        backoff: base delay, seconds; attempt *n* waits a uniform draw
            from ``[0, backoff * 2**n]`` (full jitter).
        max_delay: ceiling for any single wait, including ``Retry-After``
            hints (keeps tests and interactive callers snappy).
        rng: jitter source; pass a seeded ``random.Random`` for a
            deterministic retry schedule (tests, replayable chaos runs).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.1,
        max_delay: float = 2.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_delay = max_delay
        self.rng = rng if rng is not None else random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None
        self.attempts_made = 0  # lifetime request attempts (visible to tests)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "DiagnosisClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        retry_503: bool = True,
    ) -> Dict:
        body = None
        # One id per *logical* request, reused verbatim across retry
        # attempts — the server adopts it, so retries share one trace.
        request_id = f"cli-{uuid.uuid4().hex[:16]}"
        headers = {"Accept": "application/json", "X-Request-Id": request_id}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._delay(attempt - 1, last_error))
            self.attempts_made += 1
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException, socket.timeout) as exc:
                self._drop_connection()
                last_error = exc
                continue
            data = self._decode(raw)
            if response.status == 503 and retry_503:
                last_error = ClientError(503, data)
                retry_after = response.getheader("Retry-After")
                if retry_after is not None:
                    last_error.retry_after = retry_after  # type: ignore[attr-defined]
                if response.getheader("Connection", "").lower() == "close":
                    self._drop_connection()
                continue
            if response.status >= 400:
                raise ClientError(response.status, data)
            return data
        if isinstance(last_error, ClientError):
            raise ServerUnavailable(
                f"server still overloaded after {self.retries + 1} attempts",
                last_error.payload,
            )
        raise ServerUnavailable(
            f"cannot reach {self.host}:{self.port} after {self.retries + 1} attempts: "
            f"{last_error}"
        )

    def _delay(self, completed_attempts: int, last_error: Optional[Exception]) -> float:
        # Full jitter: draw uniformly from [0, backoff * 2**n].  A fleet
        # of clients retrying the same overloaded server spreads out
        # instead of arriving in synchronised waves.
        ceiling = min(self.backoff * (2 ** completed_attempts), self.max_delay)
        delay = self.rng.uniform(0.0, ceiling)
        hint = getattr(last_error, "retry_after", None)
        if hint is not None:
            # The server's Retry-After is a floor, not a suggestion.
            try:
                delay = max(delay, float(hint))
            except ValueError:
                pass
        return min(delay, self.max_delay)

    @staticmethod
    def _decode(raw: bytes) -> Dict:
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": {"message": raw.decode("latin-1", "replace")}}
        return data if isinstance(data, dict) else {"value": data}

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def ready(self) -> Dict:
        """Readiness probe; raises :class:`ClientError` 503 while draining."""
        return self._request("GET", "/readyz", retry_503=False)

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def diagnose(self, spec: Dict, trace: bool = False) -> Dict:
        """POST one job spec (the batch-manifest job shape) → JobResult dict.

        ``trace=True`` asks the server for the engine's span tree
        (returned under the result's ``"trace"`` key).
        """
        path = "/v1/diagnose?trace=1" if trace else "/v1/diagnose"
        return self._request("POST", path, spec)

    def batch(self, specs: List[Dict]) -> Dict:
        """POST a list of job specs → results in job order."""
        return self._request("POST", "/v1/batch", {"jobs": list(specs)})
