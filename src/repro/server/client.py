"""A blocking HTTP client for the diagnosis server, with retries.

:class:`DiagnosisClient` is the reference consumer of the server API —
the tests, the smoke script, the throughput benchmark and the cluster
gateway all drive servers through it.  Built on :mod:`http.client`
(stdlib, blocking) so callers need no event loop; one connection per
endpoint is kept open across calls and transparently re-opened after a
drop.

Retry policy: ``503 Service Unavailable`` (load shed) and transport
errors (connection refused/reset, timeouts) are retried with
exponential backoff under **full jitter** — each wait is drawn
uniformly from ``[0, backoff * 2**n]`` so retry storms from many
clients decorrelate instead of hammering the server in lockstep — while
still honouring the server's ``Retry-After`` hint (as a floor) up to
``max_delay``.  The jitter source is an injectable ``random.Random``,
so tests pin a seed and the schedule is deterministic.  Any other
non-2xx answer raises immediately —
:class:`ClientError` carries the status and the server's JSON error
body, so a 400 tells you exactly which field was malformed.

Multi-endpoint mode: constructed with ``base_urls`` (or handed an
explicit ``endpoints`` order per request — the cluster gateway passes
the hash ring's preference list), the client *fails over*: each retry
attempt rotates to the next endpoint instead of re-hitting the one
that just refused, and a failed endpoint's pooled socket is discarded
so a later attempt never reuses a connection to a server that already
dropped it.  The ``Retry-After`` floor only applies when the next
attempt targets the same endpoint that issued the hint — a different
replica is not the one that asked for breathing room.

Every logical request mints one ``X-Request-Id`` and sends it on
*every* retry attempt; the server honours it as the request id and the
engine trace id, so all attempts of one request join into a single
trace in the server's logs and span trees.
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import socket
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DiagnosisClient", "ClientError", "AuthError", "ServerUnavailable"]

log = logging.getLogger("repro.client")

#: An endpoint as the client keys it internally: ``(host, port)``.
Endpoint = Tuple[str, int]

#: Header names whose values are credentials — never logged verbatim.
_SENSITIVE_HEADERS = frozenset({"authorization", "x-api-key"})


def redact_headers(headers: Dict[str, str]) -> Dict[str, str]:
    """A copy of ``headers`` with credential values masked for logging.

    The scheme word of an ``Authorization`` value survives (``Bearer
    ***``) — it is diagnostic; the credential itself never is.  Applied
    on *every* log call, so retry attempts cannot leak the key either.
    """
    safe = {}
    for name, value in headers.items():
        if name.lower() in _SENSITIVE_HEADERS:
            scheme, _, rest = value.partition(" ")
            safe[name] = f"{scheme} ***" if rest else "***"
        else:
            safe[name] = value
    return safe


def _parse_endpoint(spec: object) -> Endpoint:
    """``"host:port"`` / ``"http://host:port"`` / ``(host, port)`` → (host, port)."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    text = str(spec)
    if text.startswith("http://"):
        text = text[len("http://"):]
    text = text.rstrip("/")
    host, _, raw_port = text.rpartition(":")
    if not host or not raw_port:
        raise ValueError(f"endpoint must look like 'host:port', got {spec!r}")
    try:
        return host, int(raw_port)
    except ValueError:
        raise ValueError(f"bad endpoint port in {spec!r}") from None


class ClientError(Exception):
    """A non-retryable (or retries-exhausted) HTTP-level failure."""

    def __init__(self, status: int, payload: Dict):
        # ``error`` is a {"message": ...} object on protocol errors but a
        # bare string on interrupted results — accept both shapes.
        message = None
        if isinstance(payload, dict):
            error = payload.get("error")
            if isinstance(error, dict):
                message = error.get("message")
            elif error:
                message = str(error)
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload
        #: The server's ``Retry-After`` header, when one accompanied the
        #: error (quota 429s and load-shed 503s send one).  Quota 429s
        #: carry *float seconds* computed from the token bucket's refill
        #: rate — parse with :attr:`retry_after_seconds`.
        self.retry_after: Optional[str] = None

    @property
    def retry_after_seconds(self) -> Optional[float]:
        """``Retry-After`` as float seconds (None when absent/unparsable)."""
        if self.retry_after is None:
            return None
        try:
            return float(self.retry_after)
        except ValueError:
            return None


class AuthError(ClientError):
    """401/403: the API key is missing, unknown, or the wrong tenant's.

    Typed so callers can tell "fix your credentials" from every other
    client failure — an auth problem is never solved by retrying.
    """


class ServerUnavailable(ClientError):
    """503s / transport errors persisted through every retry."""

    def __init__(self, detail: str, payload: Optional[Dict] = None):
        ClientError.__init__(self, 503, payload or {"error": {"message": detail}})


class DiagnosisClient:
    """Connection-reusing JSON client with exponential-backoff retries.

    Args:
        host/port: where the server listens (single-endpoint mode).
        base_urls: multiple server endpoints (``"host:port"`` strings or
            ``(host, port)`` tuples); retry attempts rotate across them.
            Overrides ``host``/``port`` when given.
        timeout: socket timeout per attempt, seconds.
        retries: extra attempts after the first (0 = fail fast).
        backoff: base delay, seconds; attempt *n* waits a uniform draw
            from ``[0, backoff * 2**n]`` (full jitter).
        max_delay: ceiling for any single wait, including ``Retry-After``
            hints (keeps tests and interactive callers snappy).
        rng: jitter source; pass a seeded ``random.Random`` for a
            deterministic retry schedule (tests, replayable chaos runs).
        api_key: tenant credential, sent as ``Authorization: Bearer``
            on every request (and every retry attempt).  The key never
            appears in log output — request logging redacts it.  A
            server answering 401/403 raises the typed
            :class:`AuthError`.
        api_key_header: set to ``"x-api-key"`` to send the credential
            as the ``X-Api-Key`` header instead of ``Authorization``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.1,
        max_delay: float = 2.0,
        rng: Optional[random.Random] = None,
        base_urls: Optional[Sequence[object]] = None,
        api_key: str = "",
        api_key_header: str = "authorization",
    ) -> None:
        if base_urls:
            self.endpoints: List[Endpoint] = [_parse_endpoint(u) for u in base_urls]
        else:
            self.endpoints = [(host, int(port))]
        # Single-endpoint attribute compatibility (tests, error text).
        self.host, self.port = self.endpoints[0]
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_delay = max_delay
        self.rng = rng if rng is not None else random.Random()
        if api_key_header.lower() not in ("authorization", "x-api-key"):
            raise ValueError("api_key_header must be 'authorization' or 'x-api-key'")
        self.api_key = api_key
        self.api_key_header = api_key_header.lower()
        self._conns: Dict[Endpoint, http.client.HTTPConnection] = {}
        self.attempts_made = 0  # lifetime request attempts (visible to tests)
        self.last_endpoint: Optional[Endpoint] = None  # who answered last

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self, endpoint: Endpoint) -> http.client.HTTPConnection:
        conn = self._conns.get(endpoint)
        if conn is None:
            conn = http.client.HTTPConnection(
                endpoint[0], endpoint[1], timeout=self.timeout
            )
            self._conns[endpoint] = conn
        return conn

    def _drop_connection(self, endpoint: Optional[Endpoint] = None) -> None:
        """Discard pooled socket(s) — all of them, or one failed endpoint's.

        A socket that just raised (or whose server said ``Connection:
        close``) must never be retried: the next attempt to that
        endpoint opens fresh.
        """
        targets = [endpoint] if endpoint is not None else list(self._conns)
        for key in targets:
            conn = self._conns.pop(key, None)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    def retain_endpoints(self, endpoints: Sequence[object]) -> None:
        """Close pooled sockets to endpoints no longer in the fleet."""
        keep = {_parse_endpoint(e) for e in endpoints}
        for key in list(self._conns):
            if key not in keep:
                self._drop_connection(key)

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "DiagnosisClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        retry_503: bool = True,
        endpoints: Optional[Sequence[object]] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        body = None
        # One id per *logical* request, reused verbatim across retry
        # attempts — the server adopts it, so retries share one trace.
        request_id = f"cli-{uuid.uuid4().hex[:16]}"
        headers = {"Accept": "application/json", "X-Request-Id": request_id}
        if extra_headers:
            # Per-request headers (the gateway forwards the caller's
            # credentials through these); still subject to redaction in
            # the attempt log below.
            headers.update(extra_headers)
        if self.api_key:
            if self.api_key_header == "x-api-key":
                headers["X-Api-Key"] = self.api_key
            else:
                headers["Authorization"] = f"Bearer {self.api_key}"
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        targets = (
            [_parse_endpoint(e) for e in endpoints] if endpoints else self.endpoints
        )
        last_error: Optional[Exception] = None
        last_error_endpoint: Optional[Endpoint] = None
        for attempt in range(self.retries + 1):
            # Ring-aware rotation: the first attempt goes to the
            # preferred endpoint; each retry advances to the next.
            target = targets[attempt % len(targets)]
            if attempt:
                time.sleep(
                    self._delay(
                        attempt - 1,
                        last_error,
                        honour_hint=(target == last_error_endpoint),
                    )
                )
            self.attempts_made += 1
            if log.isEnabledFor(logging.DEBUG):
                # Every attempt's headers go through redaction — a retry
                # must be exactly as credential-silent as the first try.
                log.debug(
                    "attempt %d %s %s -> %s:%d headers=%s",
                    attempt + 1, method, path, target[0], target[1],
                    redact_headers(headers),
                )
            try:
                conn = self._connection(target)
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException, socket.timeout) as exc:
                self._drop_connection(target)
                last_error = exc
                last_error_endpoint = target
                continue
            data = self._decode(raw)
            if response.status == 503 and retry_503:
                last_error = ClientError(503, data)
                last_error_endpoint = target
                last_error.retry_after = response.getheader("Retry-After")
                if response.getheader("Connection", "").lower() == "close":
                    self._drop_connection(target)
                continue
            if response.status >= 400:
                self.last_endpoint = target
                if response.status in (401, 403):
                    error: ClientError = AuthError(response.status, data)
                else:
                    error = ClientError(response.status, data)
                error.retry_after = response.getheader("Retry-After")
                raise error
            self.last_endpoint = target
            return data
        if isinstance(last_error, ClientError):
            raise ServerUnavailable(
                f"server still overloaded after {self.retries + 1} attempts",
                last_error.payload,
            )
        where = (
            f"{self.host}:{self.port}"
            if len(targets) == 1
            else "/".join(f"{h}:{p}" for h, p in targets)
        )
        raise ServerUnavailable(
            f"cannot reach {where} after {self.retries + 1} attempts: {last_error}"
        )

    def _delay(
        self,
        completed_attempts: int,
        last_error: Optional[Exception],
        honour_hint: bool = True,
    ) -> float:
        # Full jitter: draw uniformly from [0, backoff * 2**n].  A fleet
        # of clients retrying the same overloaded server spreads out
        # instead of arriving in synchronised waves.
        ceiling = min(self.backoff * (2 ** completed_attempts), self.max_delay)
        delay = self.rng.uniform(0.0, ceiling)
        hint = getattr(last_error, "retry_after", None) if honour_hint else None
        if hint is not None:
            # The server's Retry-After is a floor, not a suggestion —
            # but only for the server that asked; a failover attempt to
            # a *different* replica owes it nothing.
            try:
                delay = max(delay, float(hint))
            except ValueError:
                pass
        return min(delay, self.max_delay)

    @staticmethod
    def _decode(raw: bytes) -> Dict:
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"error": {"message": raw.decode("latin-1", "replace")}}
        return data if isinstance(data, dict) else {"value": data}

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def ready(self, endpoints: Optional[Sequence[object]] = None) -> Dict:
        """Readiness probe; raises :class:`ClientError` 503 while draining."""
        return self._request("GET", "/readyz", retry_503=False, endpoints=endpoints)

    def metrics(
        self, samples: bool = False, endpoints: Optional[Sequence[object]] = None
    ) -> Dict:
        """The telemetry snapshot; ``samples=True`` includes percentile
        reservoirs (what the gateway aggregates across replicas)."""
        path = "/metrics?samples=1" if samples else "/metrics"
        return self._request("GET", path, endpoints=endpoints)

    def diagnose(
        self,
        spec: Dict,
        trace: bool = False,
        endpoints: Optional[Sequence[object]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """POST one job spec (the batch-manifest job shape) → JobResult dict.

        ``trace=True`` asks the server for the engine's span tree
        (returned under the result's ``"trace"`` key).  ``endpoints``
        overrides the target order for this request (ring failover);
        ``headers`` adds per-request headers (the gateway forwards the
        caller's credentials this way).
        """
        path = "/v1/diagnose?trace=1" if trace else "/v1/diagnose"
        return self._request("POST", path, spec, endpoints=endpoints, extra_headers=headers)

    def batch(
        self,
        specs: List[Dict],
        endpoints: Optional[Sequence[object]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """POST a list of job specs → results in job order."""
        return self._request(
            "POST",
            "/v1/batch",
            {"jobs": list(specs)},
            endpoints=endpoints,
            extra_headers=headers,
        )

    def experience(self, endpoints: Optional[Sequence[object]] = None) -> Dict:
        """GET the replica's shared :class:`ExperienceBase` as plain data."""
        return self._request("GET", "/v1/experience", endpoints=endpoints)

    def merge_experience(
        self, data: Dict, endpoints: Optional[Sequence[object]] = None
    ) -> Dict:
        """POST an experience delta for the replica to merge (gossip)."""
        return self._request("POST", "/v1/experience", data, endpoints=endpoints)

    def tenant_report(
        self,
        tenant_id: str,
        limit: int = 0,
        endpoints: Optional[Sequence[object]] = None,
    ) -> Dict:
        """GET the tenant's fleet-health report (requires this client's
        ``api_key`` to belong to ``tenant_id``; 401/403 →
        :class:`AuthError`).  ``limit`` restricts the fold to the most
        recent N history rows."""
        path = f"/v1/tenants/{tenant_id}/report"
        if limit > 0:
            path += f"?limit={int(limit)}"
        return self._request("GET", path, endpoints=endpoints)
