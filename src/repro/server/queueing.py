"""Admission control and backpressure for the diagnosis server.

A diagnosis pass is CPU-bound and takes a meaningfully long time, so an
overloaded server must *shed* load, not buffer it without bound.  The
policy lives here:

* at most ``workers`` requests execute concurrently (an asyncio
  semaphore sized to the engine's executor threads);
* at most ``queue_size`` further requests may *wait* for a slot;
* anything beyond that is refused immediately with
  :class:`QueueFullError`, which the app layer turns into
  ``503 Service Unavailable`` plus a ``Retry-After`` hint derived from
  the current backlog and the observed mean job latency.

The gauge side (:meth:`AdmissionQueue.depth`) feeds ``GET /metrics``:
active slots, waiting requests, high-water marks and the running total
of rejections.
"""

from __future__ import annotations

import asyncio
import math
from contextlib import asynccontextmanager
from typing import AsyncIterator, Dict

__all__ = ["AdmissionQueue", "QueueFullError"]


class QueueFullError(Exception):
    """The bounded wait queue is full; the request must be shed."""

    def __init__(self, retry_after: float):
        super().__init__(f"admission queue full; retry after ~{retry_after:g}s")
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded concurrency plus a bounded wait queue, with gauges.

    Only ever touched from the event-loop thread, so plain attributes
    are safe; the executing work itself runs elsewhere.
    """

    def __init__(self, workers: int, queue_size: int) -> None:
        if workers < 1:
            raise ValueError("need at least one worker slot")
        if queue_size < 0:
            raise ValueError("queue size must be non-negative")
        self.workers = workers
        self.queue_size = queue_size
        self._slots = asyncio.Semaphore(workers)
        self.active = 0
        self.waiting = 0
        self.peak_active = 0
        self.peak_waiting = 0
        self.admitted = 0
        self.rejected = 0

    def retry_after(self, mean_job_seconds: float) -> float:
        """Seconds until a shed client plausibly finds a free slot."""
        backlog = self.waiting + self.active
        estimate = backlog * max(mean_job_seconds, 0.05) / self.workers
        return float(max(1, min(30, math.ceil(estimate))))

    @asynccontextmanager
    async def slot(self, mean_job_seconds: float = 0.0) -> AsyncIterator[None]:
        """Hold one execution slot; raises :class:`QueueFullError` when shed.

        Admission is bounded on *total outstanding work*: up to
        ``workers`` executing plus ``queue_size`` waiting.  With
        ``queue_size=0`` a request is still admitted whenever a slot is
        free — only the wait queue is eliminated.
        """
        if self.active + self.waiting >= self.workers + self.queue_size:
            self.rejected += 1
            raise QueueFullError(self.retry_after(mean_job_seconds))
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            await self._slots.acquire()
        finally:
            self.waiting -= 1
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        self.admitted += 1
        try:
            yield
        finally:
            self.active -= 1
            self._slots.release()

    def depth(self) -> Dict:
        """Gauges for ``/metrics``: occupancy, peaks, shed count."""
        return {
            "workers": self.workers,
            "queue_size": self.queue_size,
            "active": self.active,
            "waiting": self.waiting,
            "peak_active": self.peak_active,
            "peak_waiting": self.peak_waiting,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
