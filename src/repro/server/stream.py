"""The ``GET /v1/stream`` endpoint's plumbing.

The server side of streaming diagnosis: parse the stream request off
the query string (:class:`StreamSpec`), build a
:class:`~repro.stream.session.StreamingSession` over a live simulated
unit, and pump its blocking update generator from a worker thread into
the event loop (:class:`StreamRunner`) so the asyncio writer can frame
each update as a Server-Sent Event between heartbeats.

The simulated-unit source keeps the endpoint self-contained — a client
opens a stream with nothing but query parameters and watches a fault
appear mid-observation.  Real telemetry would slot in as another
``Reading`` iterable without touching anything here.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.circuit.faults import Fault, FaultKind
from repro.circuit.generators import resistor_ladder
from repro.circuit.library import rc_lowpass
from repro.circuit.netlist import Circuit
from repro.circuit.transient import step_waveform
from repro.core.diagnosis import Flames, FlamesConfig
from repro.server.http import HttpError
from repro.service.telemetry import Telemetry
from repro.stream.detector import DetectorConfig, DriftDetector
from repro.stream.session import StreamingSession, StreamUpdate
from repro.stream.snapshot import SnapshotBuilder
from repro.stream.sources import LiveSimulatorSource

__all__ = ["StreamSpec", "StreamRunner"]

#: Queue sentinel: the producer finished (value = uncaught error, if any).
_DONE = object()


def _float(query: Dict[str, str], name: str, default: float) -> float:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name!r} must be a number") from None


def _int(query: Dict[str, str], name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name!r} must be an integer") from None


def _parse_fault(raw: str) -> Fault:
    """``kind:component[:value]`` — e.g. ``short:Rp3``, ``param:Rs2:30e3``."""
    parts = raw.split(":")
    kinds = {k.value: k for k in FaultKind}
    if len(parts) < 2 or parts[0] not in kinds or not parts[1]:
        raise HttpError(
            400,
            f"bad fault {raw!r}; want kind:component[:value] with kind one of "
            + ", ".join(sorted(kinds)),
        )
    kind = kinds[parts[0]]
    if kind is FaultKind.PARAM:
        if len(parts) != 3:
            raise HttpError(400, f"param fault {raw!r} needs a value: param:comp:value")
        try:
            return Fault(kind, parts[1], value=float(parts[2]))
        except ValueError:
            raise HttpError(400, f"bad fault value {parts[2]!r}") from None
    if len(parts) != 2:
        raise HttpError(400, f"fault {raw!r} takes no value for kind {parts[0]!r}")
    return Fault(kind, parts[1])


@dataclass(frozen=True)
class StreamSpec:
    """A validated ``/v1/stream`` request (also built by ``repro watch``)."""

    circuit: str = "ladder"  # "ladder" (resistive) or "rc" (dynamic)
    size: int = 6  # ladder sections / RC stages
    nets: Tuple[str, ...] = ()  # empty = every probe net of the family
    fault: Optional[Fault] = None
    fault_at: float = 0.0
    duration: float = 0.01
    dt: float = 1e-3
    imprecision: float = 0.05
    noise: float = 0.0
    seed: int = 0
    kernel: str = "fast"
    threshold: float = 0.5
    hysteresis: float = 0.2
    alpha: float = 0.4
    epsilon: float = 1e-3  # snapshot dirty gate, volts
    top: int = 5
    tick_deadline: Optional[float] = None

    @classmethod
    def from_query(cls, query: Dict[str, str]) -> "StreamSpec":
        """Validate a query-string mapping; raises :class:`HttpError` 400."""
        circuit = query.get("circuit", "ladder")
        if circuit not in ("ladder", "rc"):
            raise HttpError(400, f"unknown circuit family {circuit!r}; use ladder or rc")
        kernel = query.get("kernel", "fast")
        if kernel not in ("reference", "fast"):
            raise HttpError(400, f"unknown kernel {kernel!r}; use reference or fast")
        size = _int(query, "size", 6)
        if not 1 <= size <= 64:
            raise HttpError(400, "size must be in [1, 64]")
        nets = tuple(n for n in query.get("nets", "").split(",") if n)
        fault_raw = query.get("fault", "")
        duration = _float(query, "duration", 0.01)
        dt = _float(query, "dt", 1e-3)
        if duration <= 0 or dt <= 0:
            raise HttpError(400, "duration and dt must be positive")
        if duration / dt > 100_000:
            raise HttpError(400, "duration/dt asks for more than 100000 samples")
        deadline = _float(query, "tick_deadline", 0.0)
        try:
            spec = cls(
                circuit=circuit,
                size=size,
                nets=nets,
                fault=_parse_fault(fault_raw) if fault_raw else None,
                fault_at=_float(query, "fault_at", 0.0),
                duration=duration,
                dt=dt,
                imprecision=_float(query, "imprecision", 0.05),
                noise=_float(query, "noise", 0.0),
                seed=_int(query, "seed", 0),
                kernel=kernel,
                threshold=_float(query, "threshold", 0.5),
                hysteresis=_float(query, "hysteresis", 0.2),
                alpha=_float(query, "alpha", 0.4),
                epsilon=_float(query, "epsilon", 1e-3),
                top=_int(query, "top", 5),
                tick_deadline=deadline if deadline > 0 else None,
            )
            spec.build_session(Telemetry(), dry_run=True)  # fail fast on bad combos
        except HttpError:
            raise
        except (KeyError, ValueError) as exc:
            raise HttpError(400, f"bad stream request: {exc}") from None
        return spec

    # ------------------------------------------------------------------
    def golden_circuit(self) -> Circuit:
        if self.circuit == "rc":
            return rc_lowpass(stages=self.size)
        return resistor_ladder(self.size)

    def default_nets(self) -> List[str]:
        prefix = "m" if self.circuit == "rc" else "n"
        return [f"{prefix}{i}" for i in range(1, self.size + 1)]

    def build_session(
        self, telemetry: Telemetry, dry_run: bool = False
    ) -> Optional[StreamingSession]:
        """Construct the session (validating everything); None on dry runs."""
        circuit = self.golden_circuit()
        nets = list(self.nets) or self.default_nets()
        known = {net.name for net in circuit.nets}
        for net in nets:
            if net not in known:
                raise HttpError(400, f"circuit has no net {net!r}")
        if self.fault is not None:
            try:
                circuit.component(self.fault.component)
            except KeyError:
                raise HttpError(
                    400, f"circuit has no component {self.fault.component!r}"
                ) from None
        # The RC family needs its step drive to produce a transient worth
        # watching; the resistive ladder is driven by its DC source.
        waveforms = (
            {"Vin": step_waveform(0.0, 5.0, at=0.0)} if self.circuit == "rc" else None
        )
        source = LiveSimulatorSource(
            circuit,
            nets,
            duration=self.duration,
            dt=self.dt,
            fault=self.fault,
            fault_at=self.fault_at,
            waveforms=waveforms,
            noise=self.noise,
            seed=self.seed,
        )
        if dry_run:
            return None
        engine = Flames(circuit, FlamesConfig(kernel=self.kernel))
        detector = DriftDetector(
            DetectorConfig(
                threshold=self.threshold, hysteresis=self.hysteresis, alpha=self.alpha
            )
        )
        builder = SnapshotBuilder(imprecision=self.imprecision, epsilon=self.epsilon)
        return StreamingSession(
            engine=engine,
            source=source,
            detector=detector,
            builder=builder,
            telemetry=telemetry,
            tick_deadline=self.tick_deadline,
            top=self.top,
        )


class StreamRunner:
    """Pump a session's blocking generator into an asyncio queue.

    The session does real CPU work (transient simulation + incremental
    re-diagnosis), so it runs on an executor thread; updates cross into
    the event loop through ``loop.call_soon_threadsafe``.  ``stop()``
    makes the source iterator exit at the next reading, after which the
    session's final drain tick still runs — a stopped stream ends with
    a ranking that reflects everything ingested so far.
    """

    def __init__(self, session: StreamingSession) -> None:
        self.session = session
        self._stop = threading.Event()
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.Queue[Union[StreamUpdate, object]]" = asyncio.Queue()
        self.error: Optional[BaseException] = None

    # -- producer side (worker thread) ---------------------------------
    def produce(self) -> None:
        """Run the session to completion; always ends with the sentinel."""
        original = self.session.source
        self.session.source = self._stoppable(original)
        try:
            for update in self.session.run():
                self._put(update)
        except BaseException as exc:  # surfaced to the consumer, not lost
            self.error = exc
        finally:
            self.session.source = original
            self._put(_DONE)

    def _stoppable(self, source):
        for reading in source:
            if self._stop.is_set():
                return
            yield reading

    def _put(self, item: object) -> None:
        self._loop.call_soon_threadsafe(self._queue.put_nowait, item)

    # -- consumer side (event loop) ------------------------------------
    def stop(self) -> None:
        self._stop.set()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    async def next_update(self, timeout: float) -> Optional[object]:
        """The next queue item, ``None`` on timeout, ``_DONE`` at the end."""
        try:
            return await asyncio.wait_for(self._queue.get(), timeout=timeout)
        except asyncio.TimeoutError:
            return None

    def pending(self) -> List[StreamUpdate]:
        """Updates still queued after the sentinel (drained synchronously)."""
        items: List[StreamUpdate] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return items
            if not self.is_done(item):
                items.append(item)  # type: ignore[arg-type]

    @staticmethod
    def is_done(item: object) -> bool:
        return item is _DONE
