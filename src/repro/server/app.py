"""The diagnosis server: a long-lived owner of the fleet engine.

One process keeps a warm :class:`~repro.service.FleetEngine` — its
content-addressed :class:`~repro.service.ResultCache`, shared
:class:`~repro.service.Telemetry` and learned
:class:`~repro.core.learning.ExperienceBase` — resident, and serves
diagnosis over HTTP/JSON (stdlib asyncio only):

* ``POST /v1/diagnose`` — one job (the batch-manifest job spec shape,
  netlist inlined as ``netlist_text``) → one JobResult;
* ``POST /v1/batch``    — ``{"jobs": [...]}`` fanned out through the
  engine's worker pool → results in job order;
* ``GET /healthz``      — liveness;
* ``GET /readyz``       — readiness (503 while draining);
* ``GET /metrics``      — telemetry + cache + admission-queue snapshot
  (``?samples=1`` adds percentile reservoirs for cluster aggregation);
* ``GET /v1/stream``    — Server-Sent Events: a live-simulated unit
  (optionally faulted mid-stream, see :mod:`repro.server.stream`) is
  watched by a :class:`~repro.stream.session.StreamingSession` and each
  incremental re-diagnosis is framed as an ``update`` event with a
  per-connection monotonic ``id:``, interleaved with ``heartbeat``
  events during quiet stretches and closed by a terminal ``end`` event
  (``reason`` = ``complete`` or ``drain``);
* ``GET/POST /v1/experience`` — the gossip surface: read the engine's
  shared :class:`~repro.core.learning.ExperienceBase` (rules restored
  from a persistence store carry ``seed_occurrences``), or merge a
  peer replica's delta into it (noisy-or ``merge()`` semantics);
* ``GET /v1/tenants/{id}/report`` — fleet-health summary over the
  tenant's persisted diagnosis history (requires ``--store`` and the
  tenant's own API key).

**Tenancy** (requires ``--store``, see :mod:`repro.store`): requests
may authenticate with ``Authorization: Bearer <key>`` or ``X-Api-Key``.
A resolved tenant gets isolated cache/experience namespaces threaded
through the engine and a fixed-window request quota (breach → ``429``
with ``Retry-After``); an unknown key is a ``401``; requests without
credentials stay in the shared public namespace, byte-identical to the
pre-tenant behavior.

Operational behaviour, in one place:

* **admission control** — at most ``workers`` requests execute at once
  (CPU-bound work runs on a thread-pool executor of that width) and at
  most ``queue_size`` more may wait; beyond that the server sheds load
  with ``503`` + ``Retry-After`` (see :mod:`repro.server.queueing`);
* **per-request deadline** — every diagnose request runs under a
  :class:`~repro.runtime.context.RunContext` whose deadline is the
  server's ``timeout`` budget, threaded down to the propagator's
  fixpoint loop.  A run that exhausts the budget winds down
  cooperatively and the response is ``504`` carrying the *partial*
  (well-formed, uncached) result; if the event loop's own timer fires
  first, the context is **cancelled** so the worker thread stops
  burning CPU instead of finishing in the background;
* **trace joins** — a client-supplied ``X-Request-Id`` header (when
  well-formed) becomes the request id *and* the engine trace id, so
  retried attempts of one logical request correlate across logs and
  span trees; ``?trace=1`` on ``/v1/diagnose`` returns the engine's
  span tree in the response payload;
* **graceful drain** — SIGTERM/SIGINT stops accepting connections,
  answers in-flight requests, flushes a final telemetry summary to the
  log, then exits 0;
* **structured logging** — one JSON line per request with the request
  id (also echoed in the ``X-Request-Id`` response header), method,
  path, status, queue wait and handling time.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import itertools
import json
import logging
import re
import signal
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.db import TenantRecord

from repro.resilience import FaultPlan, FleetSupervisor, faults
from repro.runtime.context import RunContext
from repro.server.http import (
    HttpError,
    HttpRequest,
    error_payload,
    read_request,
    render_stream_head,
    write_response,
)
from repro.server.queueing import AdmissionQueue, QueueFullError
from repro.server.stream import StreamRunner, StreamSpec
from repro.stream.sse import format_event
from repro.service import FleetEngine, ManifestError, job_from_spec
from repro.service.jobs import DiagnosisJob

__all__ = ["ServerConfig", "DiagnosisServer", "run", "main"]

log = logging.getLogger("repro.server")

#: Shape a client-supplied X-Request-Id must match to be honoured.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The fleet-health reporting route: GET /v1/tenants/{id}/report.
_TENANT_REPORT_RE = re.compile(r"^/v1/tenants/([^/]+)/report$")


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = ephemeral (the bound port lands in server.port)
    workers: int = 4
    queue_size: int = 64
    cache_size: int = 1024
    timeout: float = 30.0  # per-request budget, seconds
    retries: int = 1
    drain_grace: float = 30.0  # seconds to wait for in-flight work on shutdown
    max_streams: int = 4  # concurrent /v1/stream connections
    heartbeat: float = 5.0  # SSE keep-alive cadence during quiet stretches, seconds
    supervise: bool = False  # engage the FleetSupervisor (quarantine + breaker)
    faults: str = ""  # JSON FaultPlan armed server-wide (chaos testing only)
    verify_kernel: bool = False  # differential-check every fast-kernel run
    store: str = ""  # sqlite persistence-plane path; "" = in-memory only
    disk_cache_size: int = 4096  # store cache-table row bound
    lifecycle: bool = True  # run StoreMaintenance (cluster replicas turn it off)
    checkpoint_interval: float = 60.0  # WAL checkpoint cadence, seconds (0 = never)
    retain_history_days: float = 30.0  # history age window, days (0 = keep forever)
    retain_history_rows: int = 100_000  # history row bound (0 = unbounded)
    retain_cache_days: float = 0.0  # cache-row age window, days (0 = row bound only)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.queue_size < 0:
            raise ValueError("queue size must be non-negative")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_streams < 0:
            raise ValueError("max_streams must be non-negative")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if self.faults:
            FaultPlan.from_json(self.faults)  # fail fast on a bad plan


class DiagnosisServer:
    """Asyncio HTTP front end over a shared, warm fleet engine."""

    def __init__(self, config: ServerConfig, engine: Optional[FleetEngine] = None):
        self.config = config
        # The persistence plane is entirely optional: without --store the
        # server is byte-identical to the in-memory-only build and none
        # of repro.store is even imported.
        self.store = None
        self.tenants = None
        self.quotas = None
        self.maintenance = None
        if config.store:
            from repro.store import DiagnosisStore, TenantRegistry, TokenBucketQuota

            self.store = DiagnosisStore(config.store)
            self.tenants = TenantRegistry(self.store)
            # Store-backed token buckets: every replica sharing the file
            # debits the same per-tenant budget (vs. the per-process
            # fixed window of the storeless QuotaTracker).
            self.quotas = TokenBucketQuota(self.store)
            if config.lifecycle:
                from repro.store import (
                    LifecycleConfig,
                    RetentionPolicy,
                    StoreMaintenance,
                )

                self.maintenance = StoreMaintenance(
                    self.store,
                    LifecycleConfig(
                        checkpoint_interval=config.checkpoint_interval,
                        retention=RetentionPolicy(
                            history_max_age=config.retain_history_days * 86400.0,
                            history_max_rows=config.retain_history_rows,
                            cache_max_age=config.retain_cache_days * 86400.0,
                        ),
                    ),
                )
        self.engine = engine or FleetEngine(
            workers=config.workers,
            executor="thread",
            retries=config.retries,
            cache_size=config.cache_size,
            supervisor=FleetSupervisor() if config.supervise else None,
            fault_plan=FaultPlan.from_json(config.faults) if config.faults else None,
            verify_kernel=config.verify_kernel,
            store=self.store,
            disk_cache_size=config.disk_cache_size,
        )
        self.telemetry = self.engine.telemetry
        self.admission = AdmissionQueue(config.workers, config.queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="diagnose"
        )
        # Streams are long-lived; giving them their own executor keeps a
        # saturated stream fleet from starving one-shot diagnose slots.
        self._stream_executor = ThreadPoolExecutor(
            max_workers=max(1, config.max_streams), thread_name_prefix="stream"
        )
        self._streams_active = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown = asyncio.Event()
        self._draining = False
        self._started = time.monotonic()
        self._mean_job_seconds = 0.1  # EWMA; seeds the Retry-After estimate
        self._request_ids = itertools.count(1)
        self._io_seq = itertools.count(1)  # deterministic server.io chaos key
        self._id_prefix = uuid.uuid4().hex[:8]
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (resolves ``self.port``)."""
        self._started = time.monotonic()
        if self.maintenance is not None:
            self.maintenance.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            json.dumps(
                {
                    "event": "listening",
                    "host": self.config.host,
                    "port": self.port,
                    "workers": self.config.workers,
                    "queue_size": self.config.queue_size,
                }
            )
        )

    def request_shutdown(self) -> None:
        """Begin the drain (signal-handler and test entry point)."""
        if not self._draining:
            self._draining = True
            self.telemetry.event("server_drain_begin")
            self._shutdown.set()

    async def serve(self) -> None:
        """Run until a shutdown is requested, then drain and exit."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, flush telemetry."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.config.drain_grace)
            drained = True
        except asyncio.TimeoutError:
            drained = False
        connections = [conn for conn in self._connections if not conn.done()]
        for conn in connections:
            conn.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        self._executor.shutdown(wait=drained)
        self._stream_executor.shutdown(wait=drained)
        if self.maintenance is not None:
            # Final tick: leave the WAL checkpointed behind us.
            self.maintenance.stop(final_tick=True)
        if self.store is not None:
            self.store.close()
        self.telemetry.event("server_drain_end", clean=drained)
        log.info(
            json.dumps(
                {
                    "event": "drained",
                    "clean": drained,
                    "uptime_seconds": round(time.monotonic() - self._started, 3),
                    "admitted": self.admission.admitted,
                    "rejected": self.admission.rejected,
                }
            )
        )
        log.info(self.telemetry.summary(title="server telemetry"))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, error_payload(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _request_id(self, request: HttpRequest) -> str:
        """The request's id: the client's ``X-Request-Id`` when well-formed.

        Honouring the client's id lets one logical request keep a single
        trace across client-side retries; a missing or malformed header
        falls back to a server-minted id.
        """
        supplied = request.headers.get("x-request-id", "")
        if supplied and _REQUEST_ID_RE.match(supplied):
            return supplied
        return f"{self._id_prefix}-{next(self._request_ids):06d}"

    async def _dispatch(self, request: HttpRequest, writer) -> bool:
        """Route one request, write one response; returns keep-alive."""
        if request.path == "/v1/stream":
            # SSE owns its writer (incremental frames, no Content-Length),
            # so it bypasses the buffered request/response path entirely.
            return await self._handle_stream(request, writer)
        request_id = self._request_id(request)
        started = time.perf_counter()
        self._inflight += 1
        self._idle.clear()
        status = 500
        extra = {"X-Request-Id": request_id}
        keep_alive = request.keep_alive and not self._draining
        try:
            # Chaos hook: an injected dispatch failure must surface as a
            # structured 500 (the generic handler below) with the
            # connection intact — exactly like a real handler bug.  Keyed
            # on an arrival counter, so a sequential chaos client sees the
            # same requests fail on every run.
            faults.maybe_raise(
                "server.io",
                f"{request.method} {request.path}#{next(self._io_seq)}",
            )
            status, payload, headers = await self._route(request, request_id)
            extra.update(headers)
        except QueueFullError as exc:
            status = 503
            payload = error_payload(503, str(exc), request_id)
            extra["Retry-After"] = f"{exc.retry_after:g}"
        except asyncio.TimeoutError:
            status = 504
            payload = error_payload(
                504, f"request exceeded the {self.config.timeout:g}s budget", request_id
            )
        except HttpError as exc:
            status = exc.status
            payload = error_payload(exc.status, exc.message, request_id)
            extra.update(exc.headers)
        except Exception as exc:  # a handler bug must not kill the connection
            status = 500
            payload = error_payload(500, f"{type(exc).__name__}: {exc}", request_id)
            log.exception("request %s failed", request_id)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        elapsed = time.perf_counter() - started
        self.telemetry.incr("http_requests")
        self.telemetry.incr(f"http_status_{status}")
        self.telemetry.observe(f"http_seconds_{request.method} {request.path}", elapsed)
        log.info(
            json.dumps(
                {
                    "request_id": request_id,
                    "method": request.method,
                    "path": request.path,
                    "status": status,
                    "elapsed_ms": round(elapsed * 1000, 3),
                    "inflight": self._inflight,
                    "queued": self.admission.waiting,
                }
            )
        )
        try:
            await write_response(writer, status, payload, keep_alive, extra)
        except (ConnectionResetError, BrokenPipeError):
            return False
        return keep_alive

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _route(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            return 200, {"status": "ok", "uptime_seconds": self._uptime()}, {}
        if path == "/readyz":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            if self._draining:
                return 503, {"status": "draining"}, {}
            ready: Dict[str, object] = {"status": "ready"}
            if self.maintenance is not None:
                ready["lifecycle"] = self.maintenance.snapshot()
            return 200, ready, {}
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            samples = request.query.get("samples", "") in ("1", "true", "yes")
            return 200, self._metrics(samples=samples), {}
        if path == "/v1/experience":
            if method == "GET":
                return 200, self._experience_export(), {}
            if method == "POST":
                return self._handle_experience_merge(request, request_id)
            raise HttpError(405, "use GET or POST", {"Allow": "GET, POST"})
        if path == "/v1/diagnose":
            if method != "POST":
                raise HttpError(405, "use POST", {"Allow": "POST"})
            return await self._handle_diagnose(request, request_id)
        if path == "/v1/batch":
            if method != "POST":
                raise HttpError(405, "use POST", {"Allow": "POST"})
            return await self._handle_batch(request, request_id)
        report_match = _TENANT_REPORT_RE.match(path)
        if report_match:
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            return self._handle_tenant_report(request, request_id, report_match.group(1))
        raise HttpError(404, f"no route {path!r}")

    # ------------------------------------------------------------------
    # Tenancy (auth middleware, quotas, reporting)
    # ------------------------------------------------------------------
    def _resolve_tenant(self, request: HttpRequest) -> "Optional[TenantRecord]":
        """Auth middleware: the request's tenant, or None for public.

        Credentials ride ``Authorization: Bearer <key>`` (preferred) or
        ``X-Api-Key``.  A request without credentials is *public* — the
        shared namespace, never rejected.  A request **with** a key that
        resolves to no tenant is a 401: a caller who presented identity
        must not silently fall back to the shared pool.  Without a store
        there are no tenants, so keys are ignored entirely.
        """
        auth = request.headers.get("authorization", "")
        api_key = auth[7:].strip() if auth.lower().startswith("bearer ") else ""
        if not api_key:
            api_key = request.headers.get("x-api-key", "").strip()
        if not api_key or self.tenants is None:
            return None
        record = self.tenants.resolve(api_key)
        if record is None:
            self.telemetry.incr("auth_rejections")
            raise HttpError(401, "unknown API key", {"WWW-Authenticate": "Bearer"})
        return record

    def _check_quota(self, tenant: "Optional[TenantRecord]") -> None:
        """Enforce the tenant's request quota (429 + Retry-After on breach).

        ``Retry-After`` is float seconds until the next token accrues at
        the bucket's refill rate — the honest wait, not a fixed-window
        "try again next epoch" round-up.
        """
        if tenant is None or self.quotas is None:
            return
        decision = self.quotas.check(tenant)
        if not decision:
            self.telemetry.incr("quota_rejections")
            raise HttpError(
                429,
                f"tenant {tenant.tenant_id!r} exceeded "
                f"{tenant.quota_limit} requests per {tenant.quota_interval:g}s",
                {"Retry-After": f"{max(decision.retry_after, 0.001):.3f}"},
            )

    def _handle_tenant_report(
        self, request: HttpRequest, request_id: str, tenant_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        """Fleet-health report over the tenant's persisted history.

        Tenants read their *own* report: the request must authenticate
        as ``tenant_id`` (401 without credentials, 403 as someone else).
        """
        if self.store is None:
            raise HttpError(404, "no persistence store armed (serve with --store)")
        tenant = self._resolve_tenant(request)
        if tenant is None:
            raise HttpError(401, "API key required", {"WWW-Authenticate": "Bearer"})
        if tenant.tenant_id != tenant_id:
            raise HttpError(403, f"key does not belong to tenant {tenant_id!r}")
        try:
            limit = int(request.query.get("limit", "0") or 0)
        except ValueError:
            raise HttpError(400, "limit must be an integer") from None
        from repro.store import build_report

        report = build_report(self.store, tenant_id, limit=max(0, limit))
        if report is None:  # pragma: no cover - key just resolved to it
            raise HttpError(404, f"no tenant {tenant_id!r}")
        report["request_id"] = request_id
        return 200, report, {}

    def _experience_export(self) -> Dict:
        """The gossip export, annotated with store-restored baselines.

        Each rule restored from the store at boot carries its
        ``seed_occurrences`` so a gossip peer can tell persisted history
        from fresh evidence after this replica restarts (the ledger uses
        it as the expectation baseline instead of zero).  Without a
        store the payload is exactly the plain snapshot.
        """
        snapshot = self.engine.experience_snapshot()
        seed = self.engine.experience_seed
        if seed:
            from repro.core.learning import rule_identity

            for entry in snapshot["rules"]:
                occurrences = seed.get(
                    rule_identity(entry["signature"], entry["component"], entry["mode"])
                )
                if occurrences:
                    entry["seed_occurrences"] = occurrences
        seed_episodes = getattr(self.engine, "experience_seed_episodes", 0)
        if seed_episodes:
            snapshot["seed_episode_count"] = seed_episodes
        return snapshot

    def _uptime(self) -> float:
        return round(time.monotonic() - self._started, 3)

    def _metrics(self, samples: bool = False) -> Dict:
        return {
            "server": {
                "uptime_seconds": self._uptime(),
                "draining": self._draining,
                "inflight": self._inflight,
                "mean_job_seconds": round(self._mean_job_seconds, 6),
            },
            "queue": self.admission.depth(),
            "cache": self.engine.cache.snapshot(),
            "supervisor": (
                self.engine.supervisor.snapshot()
                if self.engine.supervisor is not None
                else None
            ),
            "experience_rules": len(self.engine.experience),
            "store": self.store.snapshot() if self.store is not None else None,
            "quota": self.quotas.snapshot() if self.quotas is not None else None,
            "lifecycle": (
                self.maintenance.snapshot() if self.maintenance is not None else None
            ),
            "telemetry": self.telemetry.snapshot(samples=samples),
        }

    def _reject_if_draining(self) -> None:
        if self._draining:
            raise HttpError(503, "server is draining", {"Retry-After": "1"})

    async def _handle_diagnose(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        self._reject_if_draining()
        tenant = self._resolve_tenant(request)
        self._check_quota(tenant)
        spec = request.json()
        try:
            job = job_from_spec(spec, index=0)
        except ManifestError as exc:
            raise HttpError(400, str(exc)) from None
        tracing = request.query.get("trace", "") in ("1", "true", "yes")
        ctx = RunContext.with_timeout(
            self.config.timeout, trace_id=request_id, tracing=tracing
        )
        run = (
            functools.partial(self.engine.run_job, tenant=tenant.tenant_id)
            if tenant is not None
            else self.engine.run_job
        )
        result = await self._admitted(run, job, ctx=ctx)
        payload = result.to_dict()
        payload["request_id"] = request_id
        if result.status == "interrupted":
            # The budget expired in-band: the engine wound down and this
            # is the partial (uncached) result — a 504 with substance.
            return 504, payload, {}
        return 200, payload, {}

    def _handle_experience_merge(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        """Gossip sink: merge a peer's experience delta into the engine.

        Accepts an :meth:`~repro.core.learning.ExperienceBase.to_dict`
        payload (the cluster gateway posts per-round deltas) and merges
        it with the existing noisy-or semantics.  Runs inline — the
        merge is a small in-memory fold, not diagnosis work — so gossip
        never competes with requests for admission slots.
        """
        self._reject_if_draining()
        data = request.json()
        if not isinstance(data, dict) or not isinstance(data.get("rules"), list):
            raise HttpError(400, "experience payload needs a 'rules' list")
        try:
            merged = self.engine.absorb_experience(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"bad experience payload: {exc}") from None
        self.telemetry.incr("gossip_merges")
        return 200, {
            "request_id": request_id,
            "merged_rules": merged,
            "rules": len(self.engine.experience),
        }, {}

    async def _handle_batch(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        self._reject_if_draining()
        tenant = self._resolve_tenant(request)
        self._check_quota(tenant)
        body = request.json()
        specs = body.get("jobs") if isinstance(body, dict) else body
        if not isinstance(specs, list) or not specs:
            raise HttpError(400, "batch body needs a non-empty 'jobs' list")
        try:
            jobs: List[DiagnosisJob] = [
                job_from_spec(spec, index) for index, spec in enumerate(specs)
            ]
        except ManifestError as exc:
            raise HttpError(400, str(exc)) from None
        run = (
            functools.partial(self.engine.run_batch, tenant=tenant.tenant_id)
            if tenant is not None
            else self.engine.run_batch
        )
        report = await self._admitted(run, jobs)
        payload = {
            "request_id": request_id,
            "results": [r.to_dict() for r in report.results],
            "cache": report.cache,
            "wall_clock": report.wall_clock,
            "rules_learned": report.rules_learned,
        }
        return 200, payload, {}

    # ------------------------------------------------------------------
    # Streaming (SSE)
    # ------------------------------------------------------------------
    async def _handle_stream(self, request: HttpRequest, writer) -> bool:
        """Serve one ``GET /v1/stream`` connection end to end.

        Events carry a per-connection monotonic, gapless ``id:`` (the
        smoke test asserts this), an ``update`` per re-diagnosis, a
        ``heartbeat`` after each quiet ``config.heartbeat`` stretch, and
        exactly one terminal ``end`` whose ``reason`` says why the
        stream finished — ``complete`` (source exhausted) or ``drain``
        (server shutting down; the session still gets its final drain
        tick, so every reading ingested is reflected in the last
        ranking before the goodbye).
        """
        request_id = self._request_id(request)
        started = time.perf_counter()
        try:
            if request.method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            self._reject_if_draining()
            self._check_quota(self._resolve_tenant(request))
            if self._streams_active >= self.config.max_streams:
                raise HttpError(
                    503,
                    f"at stream capacity ({self.config.max_streams})",
                    {"Retry-After": "1"},
                )
            spec = StreamSpec.from_query(request.query)
        except HttpError as exc:
            self._log_stream(request_id, exc.status, 0, started)
            try:
                await write_response(
                    writer,
                    exc.status,
                    error_payload(exc.status, exc.message, request_id),
                    keep_alive=False,
                    extra_headers={"X-Request-Id": request_id, **exc.headers},
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            return False

        self._inflight += 1
        self._idle.clear()
        self._streams_active += 1
        self.telemetry.gauge("streams_active", float(self._streams_active))
        self.telemetry.incr("streams_opened")
        events_sent = 0
        try:
            events_sent = await self._pump_stream(spec, writer, request_id)
            self.telemetry.incr("streams_completed")
        except (ConnectionResetError, BrokenPipeError):
            self.telemetry.incr("streams_disconnected")
        finally:
            self._streams_active -= 1
            self.telemetry.gauge("streams_active", float(self._streams_active))
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            self._log_stream(request_id, 200, events_sent, started)
        return False  # Connection: close — SSE streams never keep-alive

    async def _pump_stream(self, spec: StreamSpec, writer, request_id: str) -> int:
        """Write head + events until the session ends; returns event count."""
        session = spec.build_session(self.telemetry)
        assert session is not None
        runner = StreamRunner(session)
        writer.write(render_stream_head({"X-Request-Id": request_id}))
        await writer.drain()

        loop = asyncio.get_running_loop()
        producer = loop.run_in_executor(self._stream_executor, runner.produce)
        seq = 0
        last_sent = time.monotonic()
        reason = "complete"

        async def emit(event: str, data: Dict) -> None:
            nonlocal seq, last_sent
            writer.write(format_event(seq, event, data))
            await writer.drain()
            seq += 1
            last_sent = time.monotonic()

        try:
            while True:
                if self._draining and not runner.stopped:
                    runner.stop()
                    reason = "drain"
                # Short poll so a drain request is observed promptly even
                # while the producer is deep in a propagation fixpoint.
                item = await runner.next_update(
                    timeout=min(0.25, self.config.heartbeat)
                )
                if item is None:
                    if time.monotonic() - last_sent >= self.config.heartbeat:
                        await emit("heartbeat", {"request_id": request_id})
                    continue
                if StreamRunner.is_done(item):
                    break
                await emit("update", item.to_dict())
        finally:
            runner.stop()
        # Wait for the producer thread to wind down before the goodbye so
        # `end` is truly the last event and telemetry is fully flushed.
        await producer
        if runner.error is not None:
            log.error("stream %s failed: %s", request_id, runner.error)
            await emit(
                "end",
                {"reason": "error", "error": str(runner.error), "events": seq},
            )
            return seq
        # Flush updates that raced the sentinel (none expected, but the
        # zero-dropped-events guarantee should not hinge on scheduling).
        for item in runner.pending():
            await emit("update", item.to_dict())
        await emit("end", {"reason": reason, "events": seq})
        return seq

    def _log_stream(
        self, request_id: str, status: int, events: int, started: float
    ) -> None:
        log.info(
            json.dumps(
                {
                    "request_id": request_id,
                    "method": "GET",
                    "path": "/v1/stream",
                    "status": status,
                    "events": events,
                    "elapsed_ms": round((time.perf_counter() - started) * 1000, 3),
                    "streams_active": self._streams_active,
                }
            )
        )

    async def _admitted(self, fn, arg, ctx: Optional[RunContext] = None):
        """Run blocking engine work under admission control + timeout.

        ``ctx`` is the request's :class:`RunContext`; the normal expiry
        path is *in-band* (the engine observes its own deadline and
        returns an interrupted result before the event-loop timer
        fires).  When the timer does fire first — the job is stuck
        outside the cooperative loop — the context is cancelled so the
        worker thread winds down instead of burning CPU on an answer
        nobody is waiting for.
        """
        async with self.admission.slot(self._mean_job_seconds):
            loop = asyncio.get_running_loop()
            started = time.perf_counter()
            if ctx is not None:
                future = loop.run_in_executor(
                    self._executor, functools.partial(fn, arg, ctx)
                )
                # Give the in-band deadline a grace period to win: the
                # engine observes its own expiry at ``timeout`` and winds
                # down with a partial result; the event-loop timer is the
                # hard backstop for work stuck outside the cooperative
                # loop.
                budget = self.config.timeout + max(0.25, 0.25 * self.config.timeout)
            else:
                future = loop.run_in_executor(self._executor, fn, arg)
                budget = self.config.timeout
            try:
                result = await asyncio.wait_for(asyncio.shield(future), timeout=budget)
            except asyncio.TimeoutError:
                if ctx is not None:
                    ctx.cancel()
                self.telemetry.incr("http_timeouts")
                raise
            elapsed = time.perf_counter() - started
            self._mean_job_seconds = 0.8 * self._mean_job_seconds + 0.2 * elapsed
            return result


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run(config: ServerConfig) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return 0."""
    server = DiagnosisServer(config)
    asyncio.run(server.serve())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve", description="serve FLAMES diagnosis over HTTP/JSON"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port; 0 picks an ephemeral port"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="concurrent diagnosis slots (default 4)"
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="requests allowed to wait for a slot before 503s (default 64)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (default 1024)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget in seconds (default 30)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for crashed jobs (default 1)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="engage the fleet supervisor (poison-job quarantine, worker "
        "health eviction, kernel circuit breaker)",
    )
    parser.add_argument(
        "--faults", default="",
        help="JSON fault plan armed server-wide (chaos testing only); "
        'e.g. \'{"seed": 0, "rules": [{"point": "server.io", "rate": 0.2}]}\'',
    )
    parser.add_argument(
        "--max-streams", type=int, default=4,
        help="concurrent /v1/stream connections (default 4)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=5.0,
        help="SSE keep-alive cadence in seconds (default 5)",
    )
    parser.add_argument(
        "--verify-kernel", action="store_true",
        help="differentially check every fast-kernel run against the "
        "reference engine (expensive; chaos/soak runs only)",
    )
    parser.add_argument(
        "--store", default="",
        help="sqlite persistence-plane path (durable cache + experience, "
        "tenant auth/quotas, diagnosis history); default: in-memory only",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=60.0,
        help="store WAL checkpoint cadence in seconds, jittered (default 60; 0 never)",
    )
    parser.add_argument(
        "--retain-history", type=float, default=30.0, metavar="DAYS",
        help="drop history rows older than DAYS (default 30; 0 keeps forever)",
    )
    parser.add_argument(
        "--retain-history-rows", type=int, default=100_000, metavar="N",
        help="keep at most N history rows (default 100000; 0 unbounded)",
    )
    parser.add_argument(
        "--retain-cache", type=float, default=0.0, metavar="DAYS",
        help="drop cache rows older than DAYS (default 0: row bound only)",
    )
    parser.add_argument(
        "--no-lifecycle", action="store_true",
        help="skip the store maintenance loop (cluster replicas: the "
        "gateway checkpoints the shared file instead)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            timeout=args.timeout,
            retries=args.retries,
            supervise=args.supervise,
            faults=args.faults,
            verify_kernel=args.verify_kernel,
            max_streams=args.max_streams,
            heartbeat=args.heartbeat,
            store=args.store,
            lifecycle=not args.no_lifecycle,
            checkpoint_interval=args.checkpoint_interval,
            retain_history_days=args.retain_history,
            retain_history_rows=args.retain_history_rows,
            retain_cache_days=args.retain_cache,
        )
    except ValueError as exc:
        print(f"bad server options: {exc}", flush=True)
        return 2
    return run(config)
