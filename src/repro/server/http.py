"""Minimal HTTP/1.1 framing over asyncio streams — no dependencies.

The diagnosis server speaks a deliberately small slice of HTTP: JSON
bodies, ``Content-Length`` framing (chunked uploads are refused with
501), keep-alive connections, and a handful of routes.  This module
owns the wire format so :mod:`repro.server.app` can deal purely in
:class:`HttpRequest` objects and ``(status, payload)`` pairs:

* :func:`read_request` — parse one request off a stream reader, with
  hard limits on header and body size (an overload server must not be
  OOM-able by one fat request);
* :func:`render_response` — serialise a JSON response with correct
  framing and connection semantics;
* :class:`HttpError` — raisable anywhere in a handler to short-circuit
  into a structured JSON error response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
    "render_stream_head",
    "write_response",
    "error_payload",
    "parse_response_bytes",
    "REASONS",
]

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024


class HttpError(Exception):
    """A request-level failure that maps straight to a JSON error response."""

    def __init__(self, status: int, message: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        """Decode the body as JSON (raises :class:`HttpError` 400)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON, got an empty body")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


async def read_request(
    reader: asyncio.StreamReader,
    max_header: int = MAX_HEADER_BYTES,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` means the peer closed between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {max_header} bytes") from None
    if len(head) > max_header:
        raise HttpError(413, f"request head exceeds {max_header} bytes")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")[:-2]
    except UnicodeDecodeError:
        raise HttpError(400, "undecodable request head") from None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in header_lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
            if length < 0:
                raise ValueError
        except ValueError:
            raise HttpError(400, f"bad Content-Length {headers['content-length']!r}") from None
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length") from None

    split = urlsplit(target)
    query = {k: v[-1] for k, v in parse_qs(split.query).items()}
    return HttpRequest(
        method=method.upper(), path=split.path, query=query, headers=headers, body=body
    )


def render_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise a JSON response (headers + body) ready for one write."""
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_stream_head(extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    """The response head for a Server-Sent Events stream.

    No ``Content-Length`` — the body is open-ended, so the connection
    closes when the stream ends (``Connection: close``); events follow
    as ``text/event-stream`` frames written incrementally.
    """
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream; charset=utf-8",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def error_payload(status: int, message: str, request_id: str = "") -> Dict:
    """The uniform JSON error body: ``{"error": {...}}``."""
    payload = {"error": {"status": status, "message": message}}
    if request_id:
        payload["error"]["request_id"] = request_id
    return payload


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    writer.write(render_response(status, payload, keep_alive, extra_headers))
    await writer.drain()


def parse_response_bytes(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Split a rendered response back into (status, headers, body).

    Test helper — the production client uses :mod:`http.client`.
    """
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body
