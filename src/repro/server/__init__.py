"""Diagnosis server: the fleet engine behind a network API.

The fleet subsystem (:mod:`repro.service`) batches; this package makes
the batch engine *resident*.  One long-lived process keeps the warm
result cache and the learned experience base and serves diagnosis over
HTTP/JSON — stdlib asyncio only, no framework:

* :mod:`repro.server.http`     — minimal HTTP/1.1 framing over asyncio
  streams (:func:`read_request`, :func:`render_response`);
* :mod:`repro.server.queueing` — admission control and backpressure
  (:class:`AdmissionQueue`: bounded wait queue + concurrency slots,
  503 + ``Retry-After`` load shedding);
* :mod:`repro.server.app`      — the :class:`DiagnosisServer` itself:
  routes, per-request timeouts, graceful drain on SIGTERM/SIGINT,
  structured request logging (:class:`ServerConfig`, :func:`run`);
* :mod:`repro.server.client`   — :class:`DiagnosisClient`, a blocking
  connection-reusing client with exponential-backoff retries on 503
  and transport errors.

``python -m repro serve`` is the CLI front end; see README
"Server mode" for the endpoint reference.
"""

from repro.server.app import DiagnosisServer, ServerConfig, run
from repro.server.client import (
    AuthError,
    ClientError,
    DiagnosisClient,
    ServerUnavailable,
)
from repro.server.http import HttpError, HttpRequest
from repro.server.queueing import AdmissionQueue, QueueFullError

__all__ = [
    "DiagnosisServer",
    "ServerConfig",
    "run",
    "DiagnosisClient",
    "AuthError",
    "ClientError",
    "ServerUnavailable",
    "HttpError",
    "HttpRequest",
    "AdmissionQueue",
    "QueueFullError",
]
