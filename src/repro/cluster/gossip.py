"""Experience gossip: one shop's lessons reach every replica.

The paper's §7 learning loop records symptom→failure rules as
diagnoses are confirmed.  In cluster mode each replica only sees its
own shard of the traffic, so its :class:`ExperienceBase` would only
ever learn *its* circuits.  The gateway closes the loop with
star-topology gossip: every round it pulls each replica's experience
snapshot (``GET /v1/experience``), folds the *new* occurrences into a
cluster-wide ledger, and pushes each replica the ledger entries it
hasn't seen yet (``POST /v1/experience``, noisy-or ``merge()`` on the
replica side).

The hard part is idempotence — occurrence counts must not inflate as
snapshots keep arriving.  :class:`ExperienceGossip` keeps, per replica,
the occurrence count it *expects* that replica to report for each rule
(what the replica last reported plus every delta successfully delivered
to it).  Only the positive difference between a fresh report and that
expectation is new evidence; deliveries advance the expectation only
after the POST succeeds, so a dropped delivery (the
``cluster.gossip_drop`` fault point, a crashed replica) is simply
retried next round.  A replica restart bumps its epoch, which clears
its expectation table — the fresh process re-reports everything it
re-learns and receives the full ledger back, so learned experience
survives any single replica's death.

Delta certainty follows the learning model: ``k`` new occurrences of a
rule are delivered at certainty ``1 - (1 - base)^k``, which a replica's
noisy-or merge combines with its own view to exactly the certainty it
would have reached had it witnessed every episode locally — replicas
*converge* instead of drifting.

Persistence changes the restart story: when the cluster shares a
durable store (``--store``), the gateway primes the ledger from it at
boot (:meth:`ExperienceGossip.seed`), and every replica restores the
same experience on spawn.  A restored replica's ``/v1/experience``
export annotates each restored rule with ``seed_occurrences`` — the
count it *re-reports* rather than re-learned — and :meth:`observe`
uses that as the expectation baseline for first-seen keys, so restored
history is never double-counted as fresh evidence and never
re-delivered to the replica that already holds it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["ExperienceGossip"]

#: A rule's identity: (signature entries, component, mode).
RuleKey = Tuple[Tuple[Tuple[str, str, int], ...], str, str]


def _rule_key(entry: Dict) -> RuleKey:
    signature = tuple(
        sorted((str(p), str(b), int(d)) for p, b, d in entry.get("signature", []))
    )
    return signature, str(entry.get("component", "")), str(entry.get("mode", ""))


class ExperienceGossip:
    """The gateway's cluster-wide experience ledger and delivery state."""

    def __init__(self, base_certainty: float = 0.6) -> None:
        self.base_certainty = base_certainty
        # key -> cumulative occurrences across the whole cluster.
        self._ledger: Dict[RuleKey, int] = {}
        # per replica: what occurrence count we expect it to report next
        # (last report + successfully delivered deltas).
        self._expected: Dict[str, Dict[RuleKey, int]] = {}
        self._epochs: Dict[str, int] = {}
        self._episodes: Dict[str, int] = {}  # expected episode_count per replica
        self.episode_total = 0
        self.rounds = 0
        self.deliveries = 0
        self.dropped = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _touch(self, replica_id: str, epoch: int) -> None:
        """Bind state to the replica's current process generation.

        A changed (or first-seen) epoch means a fresh, empty process:
        whatever we expected the old process to hold is gone, so the
        expectation table clears — everything re-reported is fresh
        evidence, and the full ledger becomes pending again.
        """
        if self._epochs.get(replica_id) != epoch:
            self._expected[replica_id] = {}
            self._episodes[replica_id] = 0
            self._epochs[replica_id] = epoch

    def observe(self, replica_id: str, epoch: int, snapshot: Dict) -> int:
        """Fold one replica's experience snapshot into the ledger.

        Returns the number of *new* occurrences learned from this
        snapshot (0 when the replica reported nothing we did not
        already know about).
        """
        with self._lock:
            self._touch(replica_id, epoch)
            if snapshot.get("base_certainty") is not None:
                self.base_certainty = float(snapshot["base_certainty"])
            expected = self._expected.setdefault(replica_id, {})
            fresh = 0
            for entry in snapshot.get("rules", []):
                key = _rule_key(entry)
                reported = int(entry.get("occurrences", 1))
                if key not in expected:
                    # A replica that restored experience from a durable
                    # store re-reports persisted occurrences; its export
                    # marks how many (``seed_occurrences``) so they seed
                    # the expectation instead of counting as fresh.
                    baseline = int(entry.get("seed_occurrences", 0))
                    if baseline > 0:
                        expected[key] = baseline
                delta = reported - expected.get(key, 0)
                if delta > 0:
                    self._ledger[key] = self._ledger.get(key, 0) + delta
                    fresh += delta
                expected[key] = max(expected.get(key, 0), reported)
            reported_episodes = int(snapshot.get("episode_count", 0))
            episode_baseline = max(
                self._episodes.get(replica_id, 0),
                int(snapshot.get("seed_episode_count", 0)),
            )
            episode_delta = reported_episodes - episode_baseline
            if episode_delta > 0:
                self.episode_total += episode_delta
            self._episodes[replica_id] = max(episode_baseline, reported_episodes)
            return fresh

    # ------------------------------------------------------------------
    def seed(self, snapshot: Dict) -> int:
        """Prime the ledger from a persisted experience snapshot (boot).

        Raises each rule's cluster-wide total to at least its persisted
        occurrence count — nothing is attributed to any replica and no
        delivery state moves, so gossip proper starts from the durable
        baseline instead of zero after a gateway restart.  Returns the
        number of occurrences added.
        """
        with self._lock:
            if snapshot.get("base_certainty") is not None:
                self.base_certainty = float(snapshot["base_certainty"])
            added = 0
            for entry in snapshot.get("rules", []):
                key = _rule_key(entry)
                total = int(entry.get("occurrences", 1))
                have = self._ledger.get(key, 0)
                if total > have:
                    self._ledger[key] = total
                    added += total - have
            episodes = int(snapshot.get("episode_count", 0))
            if episodes > self.episode_total:
                self.episode_total = episodes
            return added

    # ------------------------------------------------------------------
    def pending(self, replica_id: str) -> Optional[Dict]:
        """The experience delta ``replica_id`` has not acknowledged.

        Shaped as an :class:`ExperienceBase` dict ready to POST: each
        rule carries its missing occurrence count ``k`` at certainty
        ``1 - (1 - base)^k``.  None when the replica is up to date.
        """
        with self._lock:
            expected = self._expected.get(replica_id, {})
            rules: List[Dict] = []
            for key, total in self._ledger.items():
                missing = total - expected.get(key, 0)
                if missing <= 0:
                    continue
                signature, component, mode = key
                rules.append(
                    {
                        "signature": [list(entry) for entry in signature],
                        "component": component,
                        "mode": mode,
                        "occurrences": missing,
                        "certainty": 1.0 - (1.0 - self.base_certainty) ** missing,
                    }
                )
            if not rules:
                return None
            return {
                "base_certainty": self.base_certainty,
                "episode_count": 0,  # occurrences carry the evidence
                "rules": rules,
            }

    def mark_delivered(
        self, replica_id: str, payload: Dict, epoch: Optional[int] = None
    ) -> None:
        """Advance the replica's expectation after a successful POST.

        Never called on failure — an undelivered delta stays pending
        and is retried on the next round.  ``epoch`` (when known) binds
        the delivery to the process generation that received it, so a
        delivery racing a restart cannot poison the fresh process's
        baseline.
        """
        with self._lock:
            if epoch is not None:
                self._touch(replica_id, epoch)
            expected = self._expected.setdefault(replica_id, {})
            for entry in payload.get("rules", []):
                key = _rule_key(entry)
                expected[key] = expected.get(key, 0) + int(entry.get("occurrences", 1))
            self.deliveries += 1

    # ------------------------------------------------------------------
    def note_round(self) -> None:
        with self._lock:
            self.rounds += 1

    def note_drop(self) -> None:
        """A delivery the chaos plan (or the network) ate this round."""
        with self._lock:
            self.dropped += 1

    def rule_count(self) -> int:
        with self._lock:
            return len(self._ledger)

    def export(self) -> Dict:
        """The full ledger as an :class:`ExperienceBase` dict.

        The gateway's ``GET /v1/experience`` — the cluster-wide view of
        everything any replica has learned, occurrences at the
        certainty the learning model assigns to that much repetition.
        """
        with self._lock:
            rules = []
            for (signature, component, mode), total in self._ledger.items():
                rules.append(
                    {
                        "signature": [list(entry) for entry in signature],
                        "component": component,
                        "mode": mode,
                        "occurrences": total,
                        "certainty": 1.0 - (1.0 - self.base_certainty) ** total,
                    }
                )
            return {
                "base_certainty": self.base_certainty,
                "episode_count": self.episode_total,
                "rules": rules,
            }

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "rules": len(self._ledger),
                "occurrences": sum(self._ledger.values()),
                "episodes": self.episode_total,
                "rounds": self.rounds,
                "deliveries": self.deliveries,
                "dropped": self.dropped,
            }
