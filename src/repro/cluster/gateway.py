"""The cluster gateway: one front door over a replicated engine fleet.

A single ``repro serve`` process is bounded by one GIL and one warm
cache.  ``repro cluster --replicas N`` scales the same API out: the
gateway owns a :class:`~repro.cluster.replicas.ReplicaManager` fleet of
server subprocesses and an asyncio front end speaking the *same*
HTTP/JSON protocol, so every existing client — ``DiagnosisClient``, the
benchmarks, the smoke scripts — points at the gateway unchanged.

Routing is **content-sharded**: each request's job spec is hashed
(:attr:`~repro.service.jobs.DiagnosisJob.content_hash`) onto a
consistent-hash ring (:class:`~repro.cluster.ring.HashRing`), so one
circuit's traffic always lands on the same replica and that replica's
result cache, interned kernel state and learned experience stay hot for
its shard.  ``/v1/batch`` bodies are split into per-replica sub-batches
along the same ring and scatter/gathered concurrently, results
reassembled in job order.

Everything else a production front end owes its callers:

* **failover** — the forwarding client walks the ring's preference
  list: a refused connection or a shed request (503) retries against
  the next replica for that key instead of hammering the dead one;
* **supervision** — a background tick probes every replica's
  ``/readyz`` + ``/metrics``, folds outcomes into per-replica EWMA
  health, and evicts + restarts anything dead or persistently sick
  (the ``cluster.replica_kill`` chaos point exercises exactly this);
* **gossip** — learned experience circulates through the gateway's
  :class:`~repro.cluster.gossip.ExperienceGossip` ledger so every
  replica eventually knows every shop's symptom→failure rules;
* **persistence** — ``--store PATH`` hands every replica the same
  durable sqlite store (``repro.store``): caches and experience
  survive restarts, and the gateway primes its gossip ledger from the
  store at boot so the cluster-wide view never regresses past what
  was already learned;
* **aggregated ``/metrics``** — per-replica telemetry merged by
  :meth:`Telemetry.merge` (counters summed, percentiles recomputed
  from pooled reservoirs) plus ring, fleet-health and gossip state;
* **cascading drain** — SIGTERM stops admission, finishes in-flight
  forwards, then SIGTERMs every replica and joins the subprocesses.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import logging
import re
import signal
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.gossip import ExperienceGossip
from repro.cluster.replicas import ReplicaConfig, ReplicaManager
from repro.cluster.ring import HashRing
from repro.resilience import FaultPlan, faults
from repro.server.client import ClientError, DiagnosisClient, ServerUnavailable
from repro.server.http import (
    HttpError,
    HttpRequest,
    error_payload,
    read_request,
    write_response,
)
from repro.service import ManifestError, job_from_spec
from repro.service.telemetry import Telemetry

__all__ = ["ClusterConfig", "ClusterGateway", "run", "main"]

log = logging.getLogger("repro.cluster")

_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass
class ClusterConfig:
    """Everything ``repro cluster`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8090  # 0 = ephemeral (the bound port lands in gateway.port)
    replicas: int = 2
    vnodes: int = 64
    workers: int = 2  # per replica
    queue_size: int = 64
    cache_size: int = 1024
    timeout: float = 30.0  # per-request budget inside each replica
    retries: int = 1  # per-replica crashed-job retries
    client_retries: int = 3  # forwarding attempts = 1 + this (ring failover)
    client_backoff: float = 0.05
    poll_interval: float = 1.0  # replica health tick, seconds
    gossip_interval: float = 2.0  # experience circulation period, seconds
    drain_grace: float = 30.0
    boot_timeout: float = 60.0
    health_decay: float = 0.7
    health_floor: float = 0.3
    supervise: bool = False  # per-replica fleet supervisor
    faults: str = ""  # JSON FaultPlan armed in the *gateway* (cluster.* points)
    replica_faults: str = ""  # JSON FaultPlan forwarded to every replica
    store: str = ""  # shared durable store file, forwarded to every replica
    checkpoint_interval: float = 60.0  # gateway-run WAL checkpoint cadence, seconds
    retain_history_days: float = 30.0  # history age window, days (0 = keep forever)
    retain_history_rows: int = 100_000  # history row bound (0 = unbounded)
    retain_cache_days: float = 0.0  # cache-row age window, days (0 = row bound only)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if self.poll_interval <= 0 or self.gossip_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.faults:
            FaultPlan.from_json(self.faults)  # fail fast on a bad plan
        if self.replica_faults:
            FaultPlan.from_json(self.replica_faults)

    def replica_config(self) -> ReplicaConfig:
        return ReplicaConfig(
            workers=self.workers,
            queue_size=self.queue_size,
            cache_size=self.cache_size,
            timeout=self.timeout,
            retries=self.retries,
            supervise=self.supervise,
            faults_json=self.replica_faults,
            store_path=self.store,
            # One maintenance loop per store *file*: the gateway owns it,
            # so N replicas never checkpoint the shared WAL in lockstep.
            lifecycle=False,
        )


class ClusterGateway:
    """Consistent-hash router + supervisor + gossip hub over the fleet.

    ``fleet`` defaults to a subprocess :class:`ReplicaManager` built
    from the config; tests inject a
    :class:`~repro.cluster.replicas.StaticFleet` over in-process
    servers instead — the gateway never knows the difference.
    """

    def __init__(self, config: ClusterConfig, fleet=None):
        self.config = config
        self.fleet = fleet if fleet is not None else ReplicaManager(
            config.replicas,
            config=config.replica_config(),
            health_decay=config.health_decay,
            health_floor=config.health_floor,
            boot_timeout=config.boot_timeout,
        )
        self.ring = HashRing(self.fleet.replica_ids, vnodes=config.vnodes)
        self.gossip = ExperienceGossip()
        self.telemetry = Telemetry()
        self.maintenance = None
        self._store = None
        if config.store:
            self._seed_gossip_from_store(config.store)
            self._build_maintenance(config)
        self._local = threading.local()  # one forwarding client per thread
        width = max(4, config.replicas * config.workers + 2)
        self._forward = ThreadPoolExecutor(width, thread_name_prefix="forward")
        self._control = ThreadPoolExecutor(2, thread_name_prefix="cluster-ctl")
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._loops: List[asyncio.Task] = []
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown = asyncio.Event()
        self._draining = False
        self._started = time.monotonic()
        self._request_ids = itertools.count(1)
        self._id_prefix = uuid.uuid4().hex[:8]
        self.port: Optional[int] = None

    def _seed_gossip_from_store(self, path: str) -> None:
        """Prime the gossip ledger from the durable store at boot.

        The gateway only *reads* the store — replicas own the writes
        (each learner persists its own episodes; gossip deliveries are
        never re-persisted) — so the connection opens, seeds, closes.
        A fresh or empty store seeds nothing.
        """
        from repro.store import PUBLIC_TENANT, DiagnosisStore

        store = DiagnosisStore(path)
        try:
            data, _version = store.load_experience(PUBLIC_TENANT)
        finally:
            store.close()
        seeded = self.gossip.seed(data)
        if seeded:
            self.telemetry.incr("gossip_seeded_occurrences", seeded)
            log.info(
                json.dumps(
                    {"event": "gossip_seeded", "occurrences": seeded, "store": path}
                )
            )

    def _build_maintenance(self, config: ClusterConfig) -> None:
        """The gateway is the fleet's single maintenance owner.

        Replicas run with the lifecycle disabled (see
        ``replica_config``); the gateway opens its own connection to the
        shared file and checkpoints/retains on behalf of everyone.  WAL
        checkpointing is cooperative across connections, so the
        replicas' writes are what this loop flushes.
        """
        from repro.store import (
            DiagnosisStore,
            LifecycleConfig,
            RetentionPolicy,
            StoreMaintenance,
        )

        self._store = DiagnosisStore(config.store)
        self.maintenance = StoreMaintenance(
            self._store,
            LifecycleConfig(
                checkpoint_interval=config.checkpoint_interval,
                retention=RetentionPolicy(
                    history_max_age=config.retain_history_days * 86400.0,
                    history_max_rows=config.retain_history_rows,
                    cache_max_age=config.retain_cache_days * 86400.0,
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot the fleet, then bind (resolves ``self.port``)."""
        self._started = time.monotonic()
        self._idle.set()
        if self.maintenance is not None:
            self.maintenance.start()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._control, self.fleet.start)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            json.dumps(
                {
                    "event": "cluster_listening",
                    "host": self.config.host,
                    "port": self.port,
                    "replicas": sorted(self.fleet.ready_endpoints().items()),
                    "vnodes": self.config.vnodes,
                }
            )
        )

    def request_shutdown(self) -> None:
        if not self._draining:
            self._draining = True
            self.telemetry.event("cluster_drain_begin")
            self._shutdown.set()

    async def serve(self) -> None:
        """Run until a shutdown is requested, then cascade the drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._loops = [
            asyncio.ensure_future(self._supervise_loop()),
            asyncio.ensure_future(self._gossip_loop()),
        ]
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()

    async def _drain(self) -> None:
        """Stop admitting → finish forwards → drain replicas → join."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.config.drain_grace)
            drained = True
        except asyncio.TimeoutError:
            drained = False
        for task in self._loops:
            task.cancel()
        if self._loops:
            await asyncio.gather(*self._loops, return_exceptions=True)
        connections = [conn for conn in self._connections if not conn.done()]
        for conn in connections:
            conn.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._control, self.fleet.stop, self.config.drain_grace
        )
        self._forward.shutdown(wait=drained)
        self._control.shutdown(wait=True)
        if self.maintenance is not None:
            # Final checkpoint after every replica has flushed and exited.
            self.maintenance.stop(final_tick=True)
        if self._store is not None:
            self._store.close()
        self.telemetry.event("cluster_drain_end", clean=drained)
        log.info(
            json.dumps(
                {
                    "event": "cluster_drained",
                    "clean": drained,
                    "uptime_seconds": round(time.monotonic() - self._started, 3),
                    "restarts": self.fleet.snapshot().get("restarts_total", 0),
                }
            )
        )
        log.info(self.telemetry.summary(title="cluster telemetry"))

    # ------------------------------------------------------------------
    # Background loops
    # ------------------------------------------------------------------
    async def _supervise_loop(self) -> None:
        loop = asyncio.get_running_loop()
        tick = 0
        while not self._draining:
            await asyncio.sleep(self.config.poll_interval)
            tick += 1
            try:
                events = await loop.run_in_executor(
                    self._control, self.fleet.poll_once, tick
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                log.exception("supervision tick %d failed", tick)
                continue
            for rid in events.get("killed", ()):
                self.telemetry.incr("chaos_replica_kills")
                self.telemetry.event("replica_killed", replica=rid)
            for rid in events.get("restarted", ()):
                self.telemetry.incr("replica_restarts")
                self.telemetry.event("replica_restarted", replica=rid)

    async def _gossip_loop(self) -> None:
        loop = asyncio.get_running_loop()
        round_no = 0
        while not self._draining:
            await asyncio.sleep(self.config.gossip_interval)
            round_no += 1
            try:
                await loop.run_in_executor(self._control, self.gossip_round, round_no)
            except asyncio.CancelledError:
                raise
            except Exception:
                log.exception("gossip round %d failed", round_no)

    def gossip_round(self, round_no: int = 0) -> None:
        """One full circulation (blocking; also the tests' entry point).

        Pass 1 pulls every live replica's snapshot into the ledger;
        pass 2 pushes each replica the delta it is missing — so a rule
        learned on one replica reaches every other within one round.
        """
        self.gossip.note_round()
        client = self._client()
        live = sorted(self.fleet.ready_endpoints().items())
        for rid, endpoint in live:
            try:
                snapshot = client.experience(endpoints=[endpoint])
            except (ClientError, OSError):
                continue
            fresh = self.gossip.observe(rid, self.fleet.epoch(rid), snapshot)
            if fresh:
                self.telemetry.incr("gossip_occurrences_learned", fresh)
        for rid, endpoint in live:
            delta = self.gossip.pending(rid)
            if delta is None:
                continue
            if faults.maybe_fire("cluster.gossip_drop", key=f"{rid}#{round_no}"):
                self.gossip.note_drop()
                self.telemetry.incr("gossip_dropped")
                continue
            try:
                client.merge_experience(delta, endpoints=[endpoint])
            except (ClientError, OSError):
                continue  # undelivered: stays pending, retried next round
            self.gossip.mark_delivered(rid, delta, epoch=self.fleet.epoch(rid))
            self.telemetry.incr("gossip_deliveries")

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _client(self) -> DiagnosisClient:
        client = getattr(self._local, "client", None)
        if client is None:
            client = DiagnosisClient(
                retries=self.config.client_retries,
                backoff=self.config.client_backoff,
                timeout=self.config.timeout * 1.5 + 5.0,
            )
            self._local.client = client
        return client

    def _targets(self, key: str) -> List[Tuple[str, str]]:
        """``(replica_id, endpoint)`` for ``key`` in failover order."""
        live = self.fleet.ready_endpoints()
        ordered = [
            (rid, live[rid]) for rid in self.ring.preference(key) if rid in live
        ]
        if not ordered:
            raise HttpError(503, "no replicas available", {"Retry-After": "1"})
        return ordered

    def _note_answer(self, targets: List[Tuple[str, str]], client: DiagnosisClient) -> None:
        """Credit the replica that answered; count ring failovers."""
        answered = client.last_endpoint
        if answered is None:
            return
        endpoint = f"{answered[0]}:{answered[1]}"
        for position, (rid, target) in enumerate(targets):
            if target == endpoint:
                self.fleet.note_outcome(rid, True)
                self.telemetry.incr(f"routed.{rid}")
                if position:
                    self.telemetry.incr("ring_failovers")
                return

    # ------------------------------------------------------------------
    # Connection handling (same framing as the single server)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, error_payload(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _request_id(self, request: HttpRequest) -> str:
        supplied = request.headers.get("x-request-id", "")
        if supplied and _REQUEST_ID_RE.match(supplied):
            return supplied
        return f"gw-{self._id_prefix}-{next(self._request_ids):06d}"

    async def _dispatch(self, request: HttpRequest, writer) -> bool:
        request_id = self._request_id(request)
        started = time.perf_counter()
        self._inflight += 1
        self._idle.clear()
        status = 500
        extra = {"X-Request-Id": request_id}
        keep_alive = request.keep_alive and not self._draining
        try:
            status, payload, headers = await self._route(request, request_id)
            extra.update(headers)
        except HttpError as exc:
            status = exc.status
            payload = error_payload(exc.status, exc.message, request_id)
            extra.update(exc.headers)
        except ClientError as exc:
            # A replica's own answer (400/401/429/504/terminal 503)
            # passes through untouched — the gateway adds routing, not
            # opinions.  Retry-After rides along so a quota 429's
            # refill-rate hint survives the hop.
            status = exc.status
            payload = exc.payload
            if exc.retry_after is not None:
                extra["Retry-After"] = exc.retry_after
            if isinstance(payload, dict):
                payload.setdefault("request_id", request_id)
        except Exception as exc:
            status = 500
            payload = error_payload(500, f"{type(exc).__name__}: {exc}", request_id)
            log.exception("request %s failed", request_id)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        elapsed = time.perf_counter() - started
        self.telemetry.incr("http_requests")
        self.telemetry.incr(f"http_status_{status}")
        self.telemetry.observe(f"http_seconds_{request.method} {request.path}", elapsed)
        log.info(
            json.dumps(
                {
                    "request_id": request_id,
                    "method": request.method,
                    "path": request.path,
                    "status": status,
                    "elapsed_ms": round(elapsed * 1000, 3),
                    "inflight": self._inflight,
                }
            )
        )
        try:
            await write_response(writer, status, payload, keep_alive, extra)
        except (ConnectionResetError, BrokenPipeError):
            return False
        return keep_alive

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _route(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            return 200, {
                "status": "ok",
                "uptime_seconds": self._uptime(),
                "replicas_ready": len(self.fleet.ready_endpoints()),
            }, {}
        if path == "/readyz":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            if self._draining:
                return 503, {"status": "draining"}, {}
            ready = len(self.fleet.ready_endpoints())
            if not ready:
                return 503, {"status": "no replicas ready"}, {}
            payload: Dict[str, object] = {"status": "ready", "replicas_ready": ready}
            if self.maintenance is not None:
                payload["lifecycle"] = self.maintenance.snapshot()
            return 200, payload, {}
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            samples = request.query.get("samples", "") in ("1", "true", "yes")
            return 200, self._metrics(samples=samples), {}
        if path == "/v1/experience":
            if method != "GET":
                raise HttpError(405, "use GET", {"Allow": "GET"})
            return 200, self.gossip.export(), {}
        if path == "/v1/diagnose":
            if method != "POST":
                raise HttpError(405, "use POST", {"Allow": "POST"})
            return await self._handle_diagnose(request, request_id)
        if path == "/v1/batch":
            if method != "POST":
                raise HttpError(405, "use POST", {"Allow": "POST"})
            return await self._handle_batch(request, request_id)
        raise HttpError(404, f"no route {path!r}")

    def _uptime(self) -> float:
        return round(time.monotonic() - self._started, 3)

    def _metrics(self, samples: bool = False) -> Dict:
        """Gateway state + the fleet's telemetry merged into one view."""
        replica_metrics = self.fleet.metrics_snapshots()
        telemetries = [
            snap["telemetry"]
            for snap in replica_metrics
            if isinstance(snap.get("telemetry"), dict)
        ]
        return {
            "gateway": {
                "uptime_seconds": self._uptime(),
                "draining": self._draining,
                "inflight": self._inflight,
            },
            "ring": self.ring.snapshot(),
            "fleet": self.fleet.snapshot(),
            "gossip": self.gossip.snapshot(),
            "lifecycle": (
                self.maintenance.snapshot() if self.maintenance is not None else None
            ),
            "cluster_telemetry": (
                Telemetry.merge(telemetries) if telemetries else None
            ),
            "telemetry": self.telemetry.snapshot(samples=samples),
        }

    def _reject_if_draining(self) -> None:
        if self._draining:
            raise HttpError(503, "cluster is draining", {"Retry-After": "1"})

    @staticmethod
    def _forward_headers(request: HttpRequest) -> Optional[Dict[str, str]]:
        """The caller's credentials, passed through to the replica.

        The gateway does not resolve tenants itself — replicas own auth
        and (store-backed) quota enforcement, and since every replica
        debits the same ``quota_buckets`` row, forwarding the identity
        is all it takes for the fleet to share one budget per tenant.
        """
        headers = {}
        auth = request.headers.get("authorization", "")
        if auth:
            headers["Authorization"] = auth
        api_key = request.headers.get("x-api-key", "")
        if api_key:
            headers["X-Api-Key"] = api_key
        return headers or None

    async def _handle_diagnose(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        self._reject_if_draining()
        spec = request.json()
        try:
            job = job_from_spec(spec, index=0)
        except ManifestError as exc:
            raise HttpError(400, str(exc)) from None
        targets = self._targets(job.content_hash)
        tracing = request.query.get("trace", "") in ("1", "true", "yes")
        credentials = self._forward_headers(request)
        loop = asyncio.get_running_loop()

        def forward() -> Dict:
            client = self._client()
            try:
                data = client.diagnose(
                    spec,
                    trace=tracing,
                    endpoints=[e for _, e in targets],
                    headers=credentials,
                )
            except ServerUnavailable:
                self.fleet.note_outcome(targets[0][0], False)
                raise
            self._note_answer(targets, client)
            return data

        payload = await loop.run_in_executor(self._forward, forward)
        payload["request_id"] = request_id
        return 200, payload, {}

    async def _handle_batch(
        self, request: HttpRequest, request_id: str
    ) -> Tuple[int, object, Dict[str, str]]:
        self._reject_if_draining()
        body = request.json()
        specs = body.get("jobs") if isinstance(body, dict) else body
        if not isinstance(specs, list) or not specs:
            raise HttpError(400, "batch body needs a non-empty 'jobs' list")
        try:
            jobs = [job_from_spec(spec, index) for index, spec in enumerate(specs)]
        except ManifestError as exc:
            raise HttpError(400, str(exc)) from None
        started = time.perf_counter()
        # Shard the batch along the ring: each job joins its primary
        # replica's sub-batch (with that key's failover order attached).
        shards: Dict[str, Dict] = {}
        for index, job in enumerate(jobs):
            targets = self._targets(job.content_hash)
            shard = shards.setdefault(
                targets[0][0], {"targets": targets, "indices": []}
            )
            shard["indices"].append(index)
        credentials = self._forward_headers(request)
        loop = asyncio.get_running_loop()

        def forward(shard: Dict) -> Dict:
            client = self._client()
            targets = shard["targets"]
            subset = [specs[i] for i in shard["indices"]]
            try:
                data = client.batch(
                    subset, endpoints=[e for _, e in targets], headers=credentials
                )
            except ServerUnavailable:
                self.fleet.note_outcome(targets[0][0], False)
                raise
            self._note_answer(targets, client)
            return data

        answers = await asyncio.gather(
            *(
                loop.run_in_executor(self._forward, forward, shard)
                for shard in shards.values()
            )
        )
        results: List[Optional[Dict]] = [None] * len(specs)
        cache: Dict[str, int] = {}
        rules_learned = 0
        for shard, answer in zip(shards.values(), answers):
            for position, index in enumerate(shard["indices"]):
                results[index] = answer["results"][position]
            for key, value in (answer.get("cache") or {}).items():
                if isinstance(value, (int, float)):
                    cache[key] = cache.get(key, 0) + value
            rules_learned += int(answer.get("rules_learned", 0))
        payload = {
            "request_id": request_id,
            "results": results,
            "cache": cache,
            "wall_clock": round(time.perf_counter() - started, 6),
            "rules_learned": rules_learned,
            "shards": {rid: len(shard["indices"]) for rid, shard in shards.items()},
        }
        return 200, payload, {}


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run(config: ClusterConfig) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return 0."""
    if config.faults:
        faults.install_plan(FaultPlan.from_json(config.faults))
    gateway = ClusterGateway(config)
    try:
        asyncio.run(gateway.serve())
    finally:
        if config.faults:
            faults.uninstall_plan()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="serve FLAMES diagnosis from a sharded replica fleet",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8090, help="gateway port; 0 picks an ephemeral port"
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="server subprocesses to run (default 2)"
    )
    parser.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per replica on the hash ring (default 64)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="diagnosis slots per replica (default 2)"
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue depth per replica (default 64)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity per replica (default 1024)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget in seconds (default 30)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="per-replica crashed-job retries (default 1)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=1.0,
        help="replica health-poll period in seconds (default 1)",
    )
    parser.add_argument(
        "--gossip-interval", type=float, default=2.0,
        help="experience gossip period in seconds (default 2)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="engage the fleet supervisor inside every replica",
    )
    parser.add_argument(
        "--faults", default="",
        help="JSON fault plan armed in the gateway (cluster.replica_kill / "
        "cluster.gossip_drop chaos)",
    )
    parser.add_argument(
        "--replica-faults", default="",
        help="JSON fault plan forwarded to every replica subprocess",
    )
    parser.add_argument(
        "--store", default="",
        help="durable sqlite store shared by every replica (caches and "
        "experience survive restarts; the gateway seeds gossip from it)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=60.0,
        help="gateway-run WAL checkpoint cadence in seconds (default 60; 0 never)",
    )
    parser.add_argument(
        "--retain-history", type=float, default=30.0, metavar="DAYS",
        help="drop history rows older than DAYS (default 30; 0 keeps forever)",
    )
    parser.add_argument(
        "--retain-history-rows", type=int, default=100_000, metavar="N",
        help="keep at most N history rows (default 100000; 0 unbounded)",
    )
    parser.add_argument(
        "--retain-cache", type=float, default=0.0, metavar="DAYS",
        help="drop cache rows older than DAYS (default 0: row bound only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    try:
        config = ClusterConfig(
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            vnodes=args.vnodes,
            workers=args.workers,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            timeout=args.timeout,
            retries=args.retries,
            poll_interval=args.poll_interval,
            gossip_interval=args.gossip_interval,
            supervise=args.supervise,
            faults=args.faults,
            replica_faults=args.replica_faults,
            store=args.store,
            checkpoint_interval=args.checkpoint_interval,
            retain_history_days=args.retain_history,
            retain_history_rows=args.retain_history_rows,
            retain_cache_days=args.retain_cache,
        )
    except ValueError as exc:
        print(f"bad cluster options: {exc}", flush=True)
        return 2
    return run(config)
