"""Sharded diagnosis cluster: a consistent-hash gateway over replicas.

``repro cluster --replicas N`` runs N ``repro serve`` subprocesses and
one :class:`ClusterGateway` front door speaking the same HTTP/JSON API.
Requests shard by job content hash (:class:`HashRing`), failures route
around dead replicas while the :class:`ReplicaManager` restarts them,
and learned experience circulates between replicas through the
gateway's :class:`ExperienceGossip` ledger.
"""

from repro.cluster.gateway import ClusterConfig, ClusterGateway, run
from repro.cluster.gossip import ExperienceGossip
from repro.cluster.replicas import (
    ReplicaConfig,
    ReplicaManager,
    ReplicaProcess,
    StaticFleet,
)
from repro.cluster.ring import HashRing

__all__ = [
    "ClusterConfig",
    "ClusterGateway",
    "ExperienceGossip",
    "HashRing",
    "ReplicaConfig",
    "ReplicaManager",
    "ReplicaProcess",
    "StaticFleet",
    "run",
]
