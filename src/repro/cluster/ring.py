"""Consistent-hash routing for the diagnosis cluster.

The gateway routes every request by its job's ``content_hash`` so that
one circuit/measurement content always lands on the same replica —
that replica's interned kernel environments, content-addressed
:class:`~repro.service.cache.ResultCache` and learned
:class:`~repro.core.learning.ExperienceBase` stay hot for *its shard*
of the traffic (the locality argument behind the fleet cache, scaled
out).  :class:`HashRing` is the routing function:

* each replica id owns ``vnodes`` points on a 64-bit ring (sha256 of
  ``"<id>#<v>"``), so load spreads evenly even with few replicas;
* a key routes to the first replica point clockwise from the key's own
  ring position; :meth:`preference` keeps walking and returns *all*
  replicas in ring order — the failover sequence;
* membership changes are **minimal**: removing a replica only moves
  the keys that replica owned (they shift to their next-clockwise
  neighbour); every other key keeps its route.  Replica *ids* are
  stable across restarts, so a replica that dies and comes back on a
  new port reclaims exactly its old shard.

Pure data structure — no I/O, no clocks — so routing decisions are
identical in every process that evaluates them.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]

_HEX_DIGITS = set("0123456789abcdef")


def _position(label: str) -> int:
    """A 64-bit ring position: the first 8 bytes of sha256(label)."""
    digest = hashlib.sha256(label.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _key_position(key: str) -> int:
    """Ring position of a routing key.

    Job content hashes are already sha256 hex — their leading 64 bits
    are uniform, so they map straight onto the ring; anything else is
    hashed first.
    """
    head = key[:16].lower()
    if len(head) == 16 and set(head) <= _HEX_DIGITS:
        return int(head, 16)
    return _position(key)


class HashRing:
    """A consistent-hash ring over replica ids, with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("need at least one virtual node per replica")
        self.vnodes = vnodes
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        self._points: List[int] = []  # sorted ring positions
        self._owners: List[str] = []  # owner of each position, same order
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert ``node`` (idempotent); only its own keys re-route."""
        if node in self._nodes:
            return
        positions = []
        for v in range(self.vnodes):
            point = _position(f"{node}#{v}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
            positions.append(point)
        self._nodes[node] = tuple(positions)

    def remove(self, node: str) -> None:
        """Drop ``node``; its keys shift to their next-clockwise owners."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, key: str) -> Optional[str]:
        """The primary replica for ``key`` (None on an empty ring)."""
        preferred = self.preference(key, count=1)
        return preferred[0] if preferred else None

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """Replicas for ``key`` in failover order, primary first.

        Walks the ring clockwise from the key's position, collecting
        each distinct replica the first time one of its virtual nodes
        appears; ``count`` truncates the list (default: every member).
        """
        if not self._points:
            return []
        limit = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect.bisect(self._points, _key_position(key)) % len(self._points)
        found: List[str] = []
        seen = set()
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) >= limit:
                    break
        return found

    def snapshot(self) -> Dict:
        """Ring shape for ``/metrics``: members and vnode count."""
        return {"nodes": self.nodes, "vnodes": self.vnodes, "points": len(self._points)}
