"""Replica lifecycle for the diagnosis cluster.

A replica is one ``repro serve`` process — its own GIL, its own
admission queue, its own warm caches.  :class:`ReplicaManager` owns a
fleet of them:

* **spawn** — each replica boots as a subprocess on an ephemeral port
  (``--port 0``); the manager scrapes the bound port from the server's
  structured ``"listening"`` log line, then keeps draining the pipe on
  a daemon thread so the child never blocks on a full pipe;
* **score** — every supervision tick probes ``/readyz`` and pulls
  ``/metrics?samples=1``; outcomes fold into the same
  :class:`~repro.resilience.supervisor.EwmaHealth` score the PR-5
  fleet supervisor applies to pool workers (request-path failures
  reported by the gateway count too);
* **evict + restart** — a dead process or a score below the floor gets
  the replica retired (its final telemetry snapshot is kept so fleet
  totals stay monotonic) and respawned on a fresh port under the *same
  replica id*, so it reclaims exactly its old hash-ring shard.  Each
  respawn bumps the replica's ``epoch``, which tells the gossip layer
  to re-seed it from scratch;
* **drain** — ``stop()`` cascades the gateway's SIGTERM: each child is
  signalled, given the grace window to finish in-flight work, then
  joined (killed only as a last resort).

Chaos: the supervision tick honours the ``cluster.replica_kill`` fault
point — a deterministic plan can hard-kill replica *k* at tick *t*, and
the ordinary eviction/restart path must recover.

:class:`StaticFleet` is the spawn-free variant: the same scoring and
endpoint surface over replicas somebody else runs (in-process servers
in the tests, or an externally managed fleet), with no restarts.
"""

from __future__ import annotations

import logging
import os
import re
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.resilience import faults
from repro.resilience.supervisor import EwmaHealth
from repro.server.client import ClientError, DiagnosisClient

__all__ = ["ReplicaConfig", "ReplicaProcess", "ReplicaManager", "StaticFleet"]

log = logging.getLogger("repro.cluster")

_PORT_RE = re.compile(r'"port": (\d+)')


class ReplicaConfig:
    """Per-replica ``repro serve`` settings the manager forwards."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 64,
        cache_size: int = 1024,
        timeout: float = 30.0,
        retries: int = 1,
        supervise: bool = False,
        faults_json: str = "",
        verify_kernel: bool = False,
        store_path: str = "",
        lifecycle: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("each replica needs at least one worker")
        self.workers = workers
        self.queue_size = queue_size
        self.cache_size = cache_size
        self.timeout = timeout
        self.retries = retries
        self.supervise = supervise
        self.faults_json = faults_json
        self.verify_kernel = verify_kernel
        # One shared store file for the whole fleet: sqlite WAL handles
        # the cross-process writers, and every respawn restores from it.
        self.store_path = store_path
        # False when the gateway runs the store maintenance loop itself
        # (one checkpointer per file, not one per replica).
        self.lifecycle = lifecycle

    def to_args(self) -> List[str]:
        args = [
            "--port", "0",
            "--workers", str(self.workers),
            "--queue-size", str(self.queue_size),
            "--cache-size", str(self.cache_size),
            "--timeout", str(self.timeout),
            "--retries", str(self.retries),
        ]
        if self.supervise:
            args.append("--supervise")
        if self.faults_json:
            args.extend(["--faults", self.faults_json])
        if self.verify_kernel:
            args.append("--verify-kernel")
        if self.store_path:
            args.extend(["--store", self.store_path])
            if not self.lifecycle:
                args.append("--no-lifecycle")
        return args


def _spawn_env() -> Dict[str, str]:
    """The child environment, with the repro package importable."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
    return env


class ReplicaProcess:
    """One managed ``repro serve`` subprocess and its health state."""

    def __init__(
        self,
        replica_id: str,
        config: ReplicaConfig,
        host: str = "127.0.0.1",
        health_decay: float = 0.7,
        health_floor: float = 0.3,
    ) -> None:
        self.replica_id = replica_id
        self.config = config
        self.host = host
        self.health = EwmaHealth(decay=health_decay, floor=health_floor)
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.epoch = 0  # bumps on every (re)spawn
        self.restarts = 0
        self.ready = False
        self.last_metrics: Dict = {}
        self._client: Optional[DiagnosisClient] = None
        self._tail: "deque[str]" = deque(maxlen=40)  # recent child output
        self._drainer: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def spawn(self, boot_timeout: float = 60.0) -> None:
        """Start the subprocess and wait for its bound port."""
        cmd = [sys.executable, "-m", "repro", "serve", *self.config.to_args()]
        self.process = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_spawn_env(),
        )
        self.epoch += 1
        self.ready = False
        self.port = self._scrape_port(boot_timeout)
        self._client = DiagnosisClient(
            host=self.host, port=self.port, retries=0, timeout=5.0
        )
        self._drainer = threading.Thread(
            target=self._drain_output,
            name=f"replica-{self.replica_id}-log",
            daemon=True,
        )
        self._drainer.start()
        self.ready = True
        log.info(
            '{"event": "replica_up", "replica": "%s", "port": %d, "epoch": %d}',
            self.replica_id, self.port, self.epoch,
        )

    def _scrape_port(self, boot_timeout: float) -> int:
        assert self.process is not None and self.process.stdout is not None
        deadline = time.monotonic() + boot_timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                break
            line = self.process.stdout.readline()
            if not line:
                continue
            self._tail.append(line.rstrip())
            match = _PORT_RE.search(line)
            if match:
                return int(match.group(1))
        raise RuntimeError(
            f"replica {self.replica_id} never reported a port; "
            f"recent output: {list(self._tail)}"
        )

    def _drain_output(self) -> None:
        process = self.process
        if process is None or process.stdout is None:
            return
        for line in process.stdout:
            self._tail.append(line.rstrip())

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def endpoint(self) -> Optional[str]:
        if self.ready and self.alive and self.port is not None:
            return f"{self.host}:{self.port}"
        return None

    def kill(self) -> None:
        """Hard-kill (SIGKILL) — the chaos path, not the drain path."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
        self.ready = False

    def terminate(self, grace: float = 10.0) -> Optional[int]:
        """Graceful stop: SIGTERM → drain grace → SIGKILL backstop."""
        self.ready = False
        process = self.process
        if process is None:
            return None
        if process.poll() is None:
            try:
                process.send_signal(signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass
            try:
                process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        if self._drainer is not None:
            self._drainer.join(timeout=2.0)
        if self._client is not None:
            self._client.close()
            self._client = None
        return process.returncode

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """One health poll: ``/readyz`` then ``/metrics?samples=1``.

        Returns True when the replica answered ready; stores the
        metrics payload for fleet aggregation either way it can.
        """
        if not self.alive or self._client is None:
            return False
        try:
            self._client.ready()
            self.last_metrics = self._client.metrics(samples=True)
            return True
        except ClientError:
            # Answering but not ready (draining) or shedding: reachable,
            # not routable.
            return False
        except Exception:
            return False

    def snapshot(self) -> Dict:
        return {
            "port": self.port,
            "alive": self.alive,
            "ready": self.ready,
            "health": round(self.health.score, 4),
            "epoch": self.epoch,
            "restarts": self.restarts,
        }


class ReplicaManager:
    """Spawn, score, evict and drain a fleet of server subprocesses."""

    def __init__(
        self,
        count: int,
        config: Optional[ReplicaConfig] = None,
        host: str = "127.0.0.1",
        health_decay: float = 0.7,
        health_floor: float = 0.3,
        boot_timeout: float = 60.0,
    ) -> None:
        if count < 1:
            raise ValueError("need at least one replica")
        self.config = config or ReplicaConfig()
        self.boot_timeout = boot_timeout
        self.replicas: Dict[str, ReplicaProcess] = {
            f"r{i}": ReplicaProcess(
                f"r{i}", self.config, host=host,
                health_decay=health_decay, health_floor=health_floor,
            )
            for i in range(count)
        }
        self._retired_metrics: List[Dict] = []  # final snapshots of evicted runs
        self.restarts_total = 0
        self.kills_injected = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    @property
    def replica_ids(self) -> List[str]:
        return sorted(self.replicas)

    def start(self) -> None:
        for replica in self.replicas.values():
            replica.spawn(self.boot_timeout)

    def stop(self, grace: float = 30.0) -> None:
        """Cascade the drain: SIGTERM every replica, then join them."""
        for replica in self.replicas.values():
            if replica.process is not None and replica.process.poll() is None:
                replica.ready = False
                try:
                    replica.process.send_signal(signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + grace
        for replica in self.replicas.values():
            remaining = max(0.5, deadline - time.monotonic())
            replica.terminate(grace=remaining)

    # ------------------------------------------------------------------
    # Routing surface
    # ------------------------------------------------------------------
    def endpoint_of(self, replica_id: str) -> Optional[str]:
        replica = self.replicas.get(replica_id)
        return replica.endpoint if replica is not None else None

    def ready_endpoints(self) -> Dict[str, str]:
        return {
            rid: replica.endpoint
            for rid, replica in self.replicas.items()
            if replica.endpoint is not None
        }

    def epoch(self, replica_id: str) -> int:
        replica = self.replicas.get(replica_id)
        return replica.epoch if replica is not None else 0

    def note_outcome(self, replica_id: str, ok: bool) -> None:
        """Fold a request-path outcome into the replica's health score."""
        replica = self.replicas.get(replica_id)
        if replica is not None:
            replica.health.record(ok)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def poll_once(self, tick: int = 0) -> Dict:
        """One supervision pass; returns what happened this tick.

        Probes every replica, folds the outcome into its EWMA score,
        fires the ``cluster.replica_kill`` chaos point, and evicts +
        respawns anything dead or scoring below the health floor.
        """
        events: Dict = {"restarted": [], "killed": []}
        for rid, replica in self.replicas.items():
            if replica.alive and faults.maybe_fire(
                "cluster.replica_kill", key=f"{rid}#{tick}"
            ):
                replica.kill()
                with self._lock:
                    self.kills_injected += 1
                events["killed"].append(rid)
                log.info('{"event": "chaos_replica_kill", "replica": "%s"}', rid)
            ok = replica.probe()
            replica.health.record(ok)
            if not replica.alive or replica.health.below_floor():
                self._restart(replica)
                events["restarted"].append(rid)
        return events

    def _restart(self, replica: ReplicaProcess) -> None:
        if replica.last_metrics:
            # Keep the dead run's final telemetry so fleet counters
            # aggregated at the gateway stay monotonic across restarts.
            with self._lock:
                self._retired_metrics.append(replica.last_metrics)
            replica.last_metrics = {}
        replica.terminate(grace=2.0)
        replica.spawn(self.boot_timeout)
        replica.health.reset()
        replica.restarts += 1
        with self._lock:
            self.restarts_total += 1
        log.info(
            '{"event": "replica_restarted", "replica": "%s", "port": %s}',
            replica.replica_id, replica.port,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def metrics_snapshots(self) -> List[Dict]:
        """Latest per-replica ``/metrics`` payloads plus retired runs."""
        with self._lock:
            snapshots = list(self._retired_metrics)
        snapshots.extend(
            replica.last_metrics
            for replica in self.replicas.values()
            if replica.last_metrics
        )
        return snapshots

    def snapshot(self) -> Dict:
        return {
            "replicas": {rid: r.snapshot() for rid, r in self.replicas.items()},
            "restarts_total": self.restarts_total,
            "kills_injected": self.kills_injected,
        }


class _AttachedReplica:
    """StaticFleet's per-endpoint record (no process to manage)."""

    def __init__(
        self, replica_id: str, endpoint: str,
        health_decay: float = 0.7, health_floor: float = 0.3,
    ) -> None:
        self.replica_id = replica_id
        host, _, port = endpoint.replace("http://", "").rstrip("/").rpartition(":")
        self.host = host
        self.port = int(port)
        self.health = EwmaHealth(decay=health_decay, floor=health_floor)
        self.epoch = 1
        self.restarts = 0
        self.ready = True
        self.last_metrics: Dict = {}
        self._client = DiagnosisClient(host=host, port=self.port, retries=0, timeout=5.0)

    @property
    def endpoint(self) -> Optional[str]:
        return f"{self.host}:{self.port}" if self.ready else None

    def probe(self) -> bool:
        try:
            self._client.ready()
            self.last_metrics = self._client.metrics(samples=True)
            return True
        except Exception:
            return False

    def snapshot(self) -> Dict:
        return {
            "port": self.port,
            "alive": self.ready,
            "ready": self.ready,
            "health": round(self.health.score, 4),
            "epoch": self.epoch,
            "restarts": 0,
        }


class StaticFleet:
    """A fixed fleet of externally-run replicas (tests, remote hosts).

    Same surface as :class:`ReplicaManager` minus spawning: probes
    score health, but nothing is evicted or restarted — a down replica
    is simply routed around until it answers again.
    """

    def __init__(
        self,
        endpoints: List[str],
        health_decay: float = 0.7,
        health_floor: float = 0.3,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.replicas: Dict[str, _AttachedReplica] = {
            f"r{i}": _AttachedReplica(
                f"r{i}", endpoint, health_decay=health_decay, health_floor=health_floor
            )
            for i, endpoint in enumerate(endpoints)
        }
        self.restarts_total = 0
        self.kills_injected = 0

    @property
    def replica_ids(self) -> List[str]:
        return sorted(self.replicas)

    def start(self) -> None:
        pass

    def stop(self, grace: float = 30.0) -> None:
        for replica in self.replicas.values():
            replica._client.close()

    def endpoint_of(self, replica_id: str) -> Optional[str]:
        replica = self.replicas.get(replica_id)
        return replica.endpoint if replica is not None else None

    def ready_endpoints(self) -> Dict[str, str]:
        return {
            rid: replica.endpoint
            for rid, replica in self.replicas.items()
            if replica.endpoint is not None
        }

    def epoch(self, replica_id: str) -> int:
        replica = self.replicas.get(replica_id)
        return replica.epoch if replica is not None else 0

    def note_outcome(self, replica_id: str, ok: bool) -> None:
        replica = self.replicas.get(replica_id)
        if replica is not None:
            replica.health.record(ok)

    def poll_once(self, tick: int = 0) -> Dict:
        for replica in self.replicas.values():
            replica.health.record(replica.probe())
        return {"restarted": [], "killed": []}

    def metrics_snapshots(self) -> List[Dict]:
        return [r.last_metrics for r in self.replicas.values() if r.last_metrics]

    def snapshot(self) -> Dict:
        return {
            "replicas": {rid: r.snapshot() for rid, r in self.replicas.items()},
            "restarts_total": 0,
            "kills_injected": 0,
        }
