"""Experiment drivers regenerating every paper table and figure.

Each module exposes a ``run_*`` function returning structured rows plus
a ``format_*`` helper that renders the paper-style table; the benchmark
harness under ``benchmarks/`` times and prints them.  See DESIGN.md §4
for the experiment index.
"""

from repro.experiments.runner import format_table
from repro.experiments.figure2 import run_figure2, run_figure2_masking, format_figure2
from repro.experiments.figure5 import run_figure5, format_figure5
from repro.experiments.figure7 import run_figure7, format_figure7, FIGURE7_SCENARIOS
from repro.experiments.scaling import run_scaling, format_scaling
from repro.experiments.strategy_eval import (
    run_strategy_eval,
    run_strategy_eval_ladder,
    format_strategy_eval,
)
from repro.experiments.learning_eval import run_learning_eval, format_learning_eval
from repro.experiments.multifault import run_multifault, format_multifault
from repro.experiments.dynamic_eval import run_dynamic_eval, format_dynamic_eval
from repro.experiments.atms_growth import run_atms_growth, format_atms_growth
from repro.experiments.dictionary_eval import run_dictionary_eval, format_dictionary_eval
from repro.experiments.ablations import (
    run_threshold_ablation,
    run_tnorm_ablation,
    run_entropy_form_ablation,
    run_granularity_ablation,
    run_envelope_validation,
)

__all__ = [
    "format_table",
    "run_figure2",
    "run_figure2_masking",
    "format_figure2",
    "run_figure5",
    "format_figure5",
    "run_figure7",
    "format_figure7",
    "FIGURE7_SCENARIOS",
    "run_scaling",
    "format_scaling",
    "run_strategy_eval",
    "run_strategy_eval_ladder",
    "format_strategy_eval",
    "run_learning_eval",
    "format_learning_eval",
    "run_multifault",
    "format_multifault",
    "run_dynamic_eval",
    "format_dynamic_eval",
    "run_atms_growth",
    "format_atms_growth",
    "run_dictionary_eval",
    "format_dictionary_eval",
    "run_threshold_ablation",
    "run_tnorm_ablation",
    "run_entropy_form_ablation",
    "run_granularity_ablation",
    "run_envelope_validation",
]
