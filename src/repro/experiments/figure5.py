"""Figure 5: the diode + two-resistor DIANA comparison example.

The paper measures ``Vr1 = 1.05 V``, ``Vd1 = 0.2 V``, ``Vr2 = 2 V`` and
shows the candidate computation twice: with crisp intervals (candidates
``[d1]`` or ``[r1, r2]``, all equally credible) and with fuzzy intervals
(nogoods ``{r1,d1}@0.5`` and ``{r2,d1}@1``, so the expert concentrates
on the serious one).  The driver runs both engines on the same evidence.

One honest deviation: our conflict-recognition engine also derives the
nogood ``{r1,r2}@1`` (Kirchhoff forces ``Ir1 = Ir2`` through the diode
regardless of the diode's health, and 105 uA != 200 uA), which the
paper's figure omits.  It is a sound conflict; EXPERIMENTS.md discusses
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.baselines.crisp_propagation import CrispDiagnoser
from repro.circuit.library import diode_resistor_circuit
from repro.circuit.measurements import Measurement
from repro.core.diagnosis import DiagnosisResult, Flames
from repro.experiments.runner import format_table
from repro.fuzzy import FuzzyInterval

__all__ = ["run_figure5", "format_figure5", "paper_measurements"]


def paper_measurements() -> List[Measurement]:
    """Node voltages implied by the published drops (Vr2, Vd1, Vr1)."""
    # Vr2 = V(n2) = 2.0; Vd1 = V(n1) - V(n2) = 0.2; Vr1 = Vin - V(n1) = 1.05.
    return [
        Measurement("V(vin)", FuzzyInterval.crisp(3.25)),
        Measurement("V(n1)", FuzzyInterval.crisp(2.2)),
        Measurement("V(n2)", FuzzyInterval.crisp(2.0)),
    ]


@dataclass
class Figure5Result:
    fuzzy: DiagnosisResult
    crisp: DiagnosisResult
    fuzzy_nogoods: List[Tuple[str, float]] = field(default_factory=list)
    crisp_nogoods: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.fuzzy_nogoods = [
            (",".join(sorted(a.datum for a in n.environment)), n.degree)
            for n in self.fuzzy.nogoods
        ]
        self.crisp_nogoods = [
            (",".join(sorted(a.datum for a in n.environment)), n.degree)
            for n in self.crisp.nogoods
        ]

    @property
    def fuzzy_suspicions(self) -> Dict[str, float]:
        return dict(self.fuzzy.suspicions)

    @property
    def paper_nogoods_found(self) -> bool:
        """Both published nogoods present at the published degrees."""
        found = dict(self.fuzzy_nogoods)
        return (
            abs(found.get("d1,r1", -1.0) - 0.5) < 0.05
            and abs(found.get("d1,r2", -1.0) - 1.0) < 1e-9
        )


def run_figure5() -> Figure5Result:
    measurements = paper_measurements()
    fuzzy = Flames(diode_resistor_circuit()).diagnose(measurements)
    crisp = CrispDiagnoser(diode_resistor_circuit()).diagnose(measurements)
    return Figure5Result(fuzzy, crisp)


def format_figure5() -> str:
    result = run_figure5()
    rows = []
    for comps, degree in result.fuzzy_nogoods:
        rows.append(("fuzzy", "{" + comps + "}", f"{degree:.2f}"))
    for comps, degree in result.crisp_nogoods:
        rows.append(("crisp", "{" + comps + "}", f"{degree:.2f} (no ordering)"))
    table = format_table(["engine", "nogood", "degree"], rows)
    suspicion_table = format_table(
        ["component", "fuzzy suspicion"],
        sorted(result.fuzzy_suspicions.items(), key=lambda kv: (-kv[1], kv[0])),
    )
    candidates = ", ".join(
        "[" + ",".join(d.components) + f"]@{d.degree:.2f}" for d in result.fuzzy.diagnoses
    )
    return (
        "figure 5 — candidates with fuzzy vs crisp intervals\n"
        + table
        + "\n\ncomponent suspicions (fuzzy ranking the crisp engine cannot give)\n"
        + suspicion_table
        + "\n\nminimal candidates: "
        + candidates
        + (
            "\npaper nogoods {r1,d1}@0.5 and {r2,d1}@1 reproduced: "
            + ("yes" if result.paper_nogoods_found else "NO")
        )
    )
