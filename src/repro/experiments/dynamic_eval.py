"""Dynamic-mode evaluation: faults only the step response reveals.

The paper notes FLAMES ran "either in dynamic mode or in static one"
without a table; the natural experiment is the one static diagnosis
cannot do at all.  On an RC low-pass ladder we inject capacitor faults
(open, drift) and resistor faults, then diagnose the same unit twice:

* **static** — DC probes into the ordinary engine (capacitors are open
  at the operating point, so their correctness is untestable);
* **dynamic** — five step-response samples per node into the
  envelope-based dynamic diagnoser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import rc_lowpass
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.circuit.transient import TransientSolver, step_waveform
from repro.core.diagnosis import Flames
from repro.core.dynamic import DynamicDiagnoser
from repro.experiments.runner import format_table

__all__ = ["DynamicRow", "run_dynamic_eval", "format_dynamic_eval", "DYNAMIC_FAULTS"]

#: The fault catalogue: two capacitor defects and one resistive control.
DYNAMIC_FAULTS: Tuple[Tuple[str, Fault], ...] = (
    ("C1 open", Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)),
    ("C2 drift +80%", Fault(FaultKind.PARAM, "C2", "capacitance", 1.8e-6)),
    ("R1 drift +50%", Fault(FaultKind.PARAM, "R1", "resistance", 1.5e3)),
)


@dataclass(frozen=True)
class DynamicRow:
    fault: str
    static_detects: bool
    dynamic_detects: bool
    dynamic_suspects: Tuple[str, ...]
    culprit_blamed: bool


def run_dynamic_eval(
    faults: Sequence[Tuple[str, Fault]] = DYNAMIC_FAULTS,
    stages: int = 2,
    dt: float = 5e-5,
    duration: float = 5e-3,
    imprecision: float = 0.01,
) -> List[DynamicRow]:
    golden = rc_lowpass(stages)
    waveforms = {"Vin": step_waveform(0.0, 5.0)}
    static_engine = Flames(golden)
    dynamic_engine = DynamicDiagnoser(golden, waveforms, dt=dt, duration=duration)
    dynamic_engine.predictions()  # build the envelopes once

    probes = [f"m{i}" for i in range(1, stages + 1)]
    rows: List[DynamicRow] = []
    for label, fault in faults:
        faulty = apply_fault(golden, fault)
        # Static: DC probes (the step settled long ago).
        op = DCSolver(faulty).solve()
        static = static_engine.diagnose(probe_all(op, probes, imprecision=imprecision))
        # Dynamic: the measured step response.
        measured = TransientSolver(
            faulty, waveforms=waveforms, dt=dt, initial="dc"
        ).run(duration)
        dynamic = dynamic_engine.diagnose(measured, nets=probes, imprecision=imprecision)
        suspects = tuple(
            name
            for name, _ in sorted(
                dynamic.suspicions.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        rows.append(
            DynamicRow(
                fault=label,
                static_detects=not static.is_consistent,
                dynamic_detects=not dynamic.is_consistent,
                dynamic_suspects=suspects,
                culprit_blamed=fault.component in suspects,
            )
        )
    return rows


def format_dynamic_eval(rows: Optional[List[DynamicRow]] = None) -> str:
    rows = rows if rows is not None else run_dynamic_eval()
    table = format_table(
        ["fault", "static detects", "dynamic detects", "dynamic suspects", "culprit blamed"],
        [
            (
                r.fault,
                "yes" if r.static_detects else "NO (blind)",
                "yes" if r.dynamic_detects else "no",
                ",".join(r.dynamic_suspects) or "-",
                "yes" if r.culprit_blamed else "no",
            )
            for r in rows
        ],
    )
    return "dynamic mode — step-response diagnosis of the RC ladder\n" + table
