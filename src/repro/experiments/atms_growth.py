"""ATMS growth study: why FLAMES reasons on nogoods, not interpretations.

"The ATMS is necessary because we entertain the possibility of multiple
faults where the space of potential candidates grows exponentially with
the number of faults under consideration" (§6).  This driver quantifies
that: over synthetic assumption sets with a fixed number of random
pairwise conflicts, it counts the *interpretations* (maximal consistent
environments — exponential in the assumption count) against the minimal
weighted nogoods and the bounded-size minimal diagnoses the engine
actually manipulates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.atms.assumptions import Assumption, Environment
from repro.atms.candidates import minimal_diagnoses
from repro.atms.interpretations import interpretations
from repro.atms.nogood import NogoodDatabase
from repro.experiments.runner import format_table

__all__ = ["GrowthRow", "run_atms_growth", "format_atms_growth"]


@dataclass(frozen=True)
class GrowthRow:
    assumptions: int
    conflicts: int
    nogoods: int
    interpretations: int
    diagnoses_all: int
    diagnoses_serious: int
    interp_seconds: float
    diagnosis_seconds: float


def _disjoint_nogoods(
    assumptions: Sequence[Assumption], count: int
) -> NogoodDatabase:
    """``count`` pairwise conflicts over disjoint component pairs.

    Disjoint conflicts are the worst case: every combination of per-pair
    choices is a distinct candidate, so the diagnosis space is exactly
    ``2^count``.  Degrees alternate 1.0 / 0.5 so degree-thresholding has
    something to cut.
    """
    db = NogoodDatabase()
    for k in range(count):
        pair = assumptions[2 * k : 2 * k + 2]
        db.add(Environment(frozenset(pair)), 1.0 if k % 2 == 0 else 0.5)
    return db


def run_atms_growth(
    conflict_counts: Sequence[int] = (2, 4, 6, 8, 10),
    assumptions_count: int = 16,
    interpretation_limit: int = 100_000,
) -> List[GrowthRow]:
    """Sweep the number of simultaneous conflicts under consideration."""
    rows: List[GrowthRow] = []
    for conflicts in conflict_counts:
        n = max(assumptions_count, 2 * conflicts)
        assumptions = [Assumption(f"c{i}", f"c{i}") for i in range(n)]
        db = _disjoint_nogoods(assumptions, conflicts)

        start = time.perf_counter()
        maximal = interpretations(assumptions, db, limit=interpretation_limit)
        interp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        all_diagnoses = minimal_diagnoses(db.minimal(), threshold=0.0)
        serious = minimal_diagnoses(db.minimal(), threshold=0.8)
        diagnosis_seconds = time.perf_counter() - start

        rows.append(
            GrowthRow(
                assumptions=n,
                conflicts=conflicts,
                nogoods=len(db),
                interpretations=len(maximal),
                diagnoses_all=len(all_diagnoses),
                diagnoses_serious=len(serious),
                interp_seconds=interp_seconds,
                diagnosis_seconds=diagnosis_seconds,
            )
        )
    return rows


def format_atms_growth(rows: Optional[List[GrowthRow]] = None) -> str:
    rows = rows if rows is not None else run_atms_growth()
    table = format_table(
        [
            "conflicts",
            "nogood list",
            "interpretations",
            "diagnoses (all)",
            "diagnoses (degree>=0.8)",
            "interp s",
            "diagnoses s",
        ],
        [
            (
                r.conflicts,
                r.nogoods,
                r.interpretations,
                r.diagnoses_all,
                r.diagnoses_serious,
                f"{r.interp_seconds:.3f}",
                f"{r.diagnosis_seconds:.4f}",
            )
            for r in rows
        ],
    )
    return (
        "ATMS growth — interpretations explode, weighted nogoods stay compact\n"
        + table
    )
