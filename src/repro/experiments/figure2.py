"""Figure 2: crisp vs fuzzy propagation through the amplifier cascade.

Two parts, both straight from §4.2:

* **Propagation table** — input A drives amp1 (gain 1) to produce B;
  amp2 (gain 2) and amp3 (gain 3) read B to produce C and D.  Case (1)
  starts from the crisp interval ``Va = [2.95, 3.05]``, case (2) from
  the fuzzy number ``Va = [3, 3, .05, .05]``.  The table reports the
  propagated ``Vb``, ``Vc``, ``Vd``.
* **Masking demonstration** — amp2 drifts to 1.8 and ``Vc`` is measured
  at 5.6: backward propagation with crisp intervals lands the inferred
  ``Va`` inside the measured input interval, masking the fault; with
  fuzzy intervals the same inference carries a low membership degree,
  exposing "that there is a problem".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.crisp_interval import Interval
from repro.experiments.runner import format_table
from repro.fuzzy import FuzzyInterval, consistency

__all__ = ["run_figure2", "run_figure2_masking", "format_figure2"]

#: The paper's amplifiers: gains 1/2/3, each with an absolute 0.05 spread.
GAINS = (1.0, 2.0, 3.0)
SPREAD = 0.05


@dataclass(frozen=True)
class PropagationRow:
    quantity: str
    crisp_case: FuzzyInterval
    fuzzy_case: FuzzyInterval


@dataclass(frozen=True)
class MaskingOutcome:
    """Backward inference of Va from a faulty measured Vc."""

    representation: str
    inferred_va: FuzzyInterval
    measured_va: FuzzyInterval
    consistency_degree: float
    fault_masked: bool


def _amps() -> List[FuzzyInterval]:
    return [FuzzyInterval.number(g, SPREAD) for g in GAINS]


def run_figure2() -> List[PropagationRow]:
    """The propagated Vb/Vc/Vd for both input representations."""
    amp1, amp2, amp3 = _amps()
    rows = []
    for label, va in (
        ("crisp", FuzzyInterval.crisp_interval(2.95, 3.05)),
        ("fuzzy", FuzzyInterval.number(3.0, SPREAD)),
    ):
        vb = va * amp1
        vc = vb * amp2
        vd = vb * amp3
        rows.append((label, vb, vc, vd))
    crisp, fuzzy = rows
    return [
        PropagationRow("Vb", crisp[1], fuzzy[1]),
        PropagationRow("Vc", crisp[2], fuzzy[2]),
        PropagationRow("Vd", crisp[3], fuzzy[3]),
    ]


def run_figure2_masking(
    faulty_gain: float = 1.8, measured_vc: float = 5.6
) -> List[MaskingOutcome]:
    """The crisp-masks / fuzzy-exposes comparison.

    Backward inference follows the paper: ``Vb = Vc / gain2``, ``Va =
    Vb / gain1`` (gains at their *faulty-case* values for Vb — the paper
    shows what the measurement implies — then tolerance bands for Va).
    """
    outcomes = []
    # Crisp representation: measured Vc is a point; amp gains are bands.
    vb_crisp = Interval.point(measured_vc) / Interval.point(faulty_gain)
    va_crisp = vb_crisp / Interval(GAINS[0] - SPREAD, GAINS[0] + SPREAD)
    measured_va_crisp = Interval(2.95, 3.05)
    masked = va_crisp.intersects(measured_va_crisp)
    outcomes.append(
        MaskingOutcome(
            "crisp",
            va_crisp.to_fuzzy(),
            measured_va_crisp.to_fuzzy(),
            1.0 if masked else 0.0,
            masked,
        )
    )
    # Fuzzy representation: the same chain with membership degrees.
    vb_fuzzy = FuzzyInterval.crisp(measured_vc) / FuzzyInterval.crisp(faulty_gain)
    va_fuzzy = vb_fuzzy / FuzzyInterval.number(GAINS[0], SPREAD)
    measured_va_fuzzy = FuzzyInterval.number(3.0, SPREAD)
    degree = consistency(measured_va_fuzzy, va_fuzzy).degree
    outcomes.append(
        MaskingOutcome(
            "fuzzy",
            va_fuzzy,
            measured_va_fuzzy,
            degree,
            degree >= 1.0,
        )
    )
    return outcomes


def format_figure2() -> str:
    rows = run_figure2()
    table = format_table(
        ["quantity", "crisp input [2.95,3.05]", "fuzzy input [3,3,.05,.05]"],
        [(r.quantity, repr(r.crisp_case), repr(r.fuzzy_case)) for r in rows],
    )
    masking = run_figure2_masking()
    masking_table = format_table(
        ["representation", "inferred Va", "measured Va", "consistency", "fault masked"],
        [
            (
                m.representation,
                repr(m.inferred_va),
                repr(m.measured_va),
                f"{m.consistency_degree:.2f}",
                "yes" if m.fault_masked else "NO — fault exposed",
            )
            for m in masking
        ],
    )
    return (
        "figure 2 — propagation through the cascade\n"
        + table
        + "\n\nfigure 2 — amp2=1.8 masking demonstration\n"
        + masking_table
    )
