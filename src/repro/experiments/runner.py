"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table (no external dependencies)."""
    materialised: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)
