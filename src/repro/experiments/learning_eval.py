"""Learning-from-experience evaluation (paper §7).

The unit has no table in the paper; the natural measurement is whether
induced symptom-failure rules actually help later diagnoses.  The driver
replays a catalogue of fault episodes twice: first with an empty
experience base (recording each confirmed diagnosis), then again with
the learned rules active, and reports the rank of the true culprit in
the candidate ordering before and after, plus the rule certainties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames
from repro.core.learning import ExperienceBase, SymptomSignature
from repro.experiments.runner import format_table

__all__ = ["LearningRow", "run_learning_eval", "format_learning_eval", "TRAINING_FAULTS"]

#: Episodes replayed by the evaluation (component, fault); each repeats
#: so reinforcement is visible.
TRAINING_FAULTS: Tuple[Tuple[str, Fault], ...] = (
    ("R2", Fault(FaultKind.SHORT, "R2")),
    ("R3", Fault(FaultKind.OPEN, "R3")),
    ("R6", Fault(FaultKind.OPEN, "R6")),
    ("R2", Fault(FaultKind.SHORT, "R2")),
    ("R3", Fault(FaultKind.OPEN, "R3")),
)


@dataclass(frozen=True)
class LearningRow:
    fault: str
    culprit: str
    rank_before: Optional[int]
    rank_after: Optional[int]
    rule_certainty: float


def _rank_of(suspicions: Dict[str, float], culprit: str) -> Optional[int]:
    ordered = sorted(suspicions.items(), key=lambda kv: (-kv[1], kv[0]))
    for index, (name, score) in enumerate(ordered, start=1):
        if name == culprit:
            return index if score > 0 else None
    return None


def run_learning_eval(
    episodes: Sequence[Tuple[str, Fault]] = TRAINING_FAULTS,
    imprecision: float = 0.02,
) -> List[LearningRow]:
    golden = three_stage_amplifier()
    engine = Flames(golden)
    experience = ExperienceBase()

    # Phase 1: diagnose and record each confirmed episode.
    results = []
    for culprit, fault in episodes:
        op = DCSolver(apply_fault(golden, fault)).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=imprecision)
        result = engine.diagnose(measurements)
        experience.record_result(result, culprit, fault.kind.value)
        results.append((culprit, fault, result))

    # Phase 2: replay with learned rules boosting suspicions.
    rows: List[LearningRow] = []
    for culprit, fault, result in results:
        signature = SymptomSignature.from_result(result)
        before = _rank_of(result.suspicions, culprit)
        boosted = experience.boost_suspicions(result.suspicions, signature)
        after = _rank_of(boosted, culprit)
        hits = experience.suggest(signature)
        certainty = max(
            (w for rule, w in hits if rule.component == culprit), default=0.0
        )
        rows.append(
            LearningRow(fault.describe(), culprit, before, after, certainty)
        )
    return rows


def format_learning_eval(rows: Optional[List[LearningRow]] = None) -> str:
    rows = rows if rows is not None else run_learning_eval()
    table = format_table(
        ["fault", "culprit", "rank before", "rank after", "rule certainty"],
        [
            (
                r.fault,
                r.culprit,
                r.rank_before if r.rank_before is not None else "-",
                r.rank_after if r.rank_after is not None else "-",
                f"{r.rule_certainty:.2f}",
            )
            for r in rows
        ],
    )
    return "learning from experience — symptom-failure rule replay\n" + table
