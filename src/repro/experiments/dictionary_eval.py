"""Fault dictionary vs model-based diagnosis (paper §2 and §7).

The paper dismisses fault dictionaries in one line; this driver measures
why.  Four defect classes on the three-stage amplifier (plus a double
fault on the cascade):

* a **tabulated** hard fault — both approaches succeed;
* a **novel drift magnitude** — the dictionary names its nearest
  tabulated entry with no confidence signal, FLAMES reports graded
  candidates containing the culprit;
* an **untabulated fault class** (a wiring open) — the dictionary has no
  entry to be right with, FLAMES implicates the correct neighbourhood;
* a **double fault** — the dictionary can only ever answer with one
  label; the hitting sets name the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.fault_dictionary import FaultDictionary
from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import amplifier_cascade, three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.experiments.runner import format_table

__all__ = ["DictionaryRow", "run_dictionary_eval", "format_dictionary_eval"]

_PROBES = ["vs", "v2", "v1"]


@dataclass(frozen=True)
class DictionaryRow:
    label: str
    culprits: Tuple[str, ...]
    dictionary_verdict: str
    dictionary_correct: bool
    flames_candidates: Tuple[str, ...]
    flames_covers: bool


def _flames_candidates(result) -> Tuple[str, ...]:
    return tuple(name for name, _ in result.ranked_components())


def run_dictionary_eval(imprecision: float = 0.02) -> List[DictionaryRow]:
    golden = three_stage_amplifier()
    dictionary = FaultDictionary(golden, _PROBES)
    engine = Flames(golden)
    rows: List[DictionaryRow] = []

    cases: Sequence[Tuple[str, Tuple[str, ...], Sequence[Fault]]] = (
        ("tabulated: short R2", ("R2",), [Fault(FaultKind.SHORT, "R2")]),
        (
            "novel drift: R3 +37%",
            ("R3",),
            [Fault(FaultKind.PARAM, "R3", value=33e3)],
        ),
        (
            "untabulated class: open node N1",
            ("T1", "R1", "R3"),  # the stage-1 wiring neighbourhood
            [Fault(FaultKind.NODE_OPEN, "T1", pin="b")],
        ),
    )
    for label, culprits, faults in cases:
        faulty = golden
        for fault in faults:
            faulty = apply_fault(faulty, fault)
        op = DCSolver(faulty).solve()
        match = dictionary.lookup_op(op)
        verdict = (
            "healthy" if match.is_healthy else f"{match.component}:{match.mode}"
        )
        result = engine.diagnose(probe_all(op, _PROBES, imprecision=imprecision))
        candidates = _flames_candidates(result)
        rows.append(
            DictionaryRow(
                label,
                culprits,
                verdict,
                match.component in culprits,
                candidates,
                any(c in candidates for c in culprits),
            )
        )

    # The double fault runs on the cascade (parallel branches).
    cascade = amplifier_cascade()
    cascade_probes = ["b", "c", "d"]
    cascade_dictionary = FaultDictionary(cascade, cascade_probes)
    cascade_engine = Flames(cascade, FlamesConfig(max_candidate_size=2))
    faulty = apply_fault(
        apply_fault(cascade, Fault(FaultKind.PARAM, "amp2", "gain", 1.4)),
        Fault(FaultKind.PARAM, "amp3", "gain", 4.0),
    )
    op = DCSolver(faulty).solve()
    match = cascade_dictionary.lookup_op(op)
    result = cascade_engine.diagnose(
        probe_all(op, cascade_probes, imprecision=imprecision)
    )
    pair_named = any(
        set(d.components) == {"amp2", "amp3"} for d in result.diagnoses
    )
    rows.append(
        DictionaryRow(
            "double fault: amp2 low + amp3 high",
            ("amp2", "amp3"),
            f"{match.component}:{match.mode}" if not match.is_healthy else "healthy",
            False,  # one label can never name two culprits
            tuple(
                "{" + ",".join(d.components) + "}" for d in result.diagnoses[:3]
            ),
            pair_named,
        )
    )
    return rows


def format_dictionary_eval(rows: Optional[List[DictionaryRow]] = None) -> str:
    rows = rows if rows is not None else run_dictionary_eval()
    table = format_table(
        [
            "defect",
            "true culprit(s)",
            "dictionary says",
            "dict ok",
            "FLAMES candidates",
            "FLAMES ok",
        ],
        [
            (
                r.label,
                ",".join(r.culprits),
                r.dictionary_verdict,
                "yes" if r.dictionary_correct else "NO",
                ",".join(r.flames_candidates[:6]),
                "yes" if r.flames_covers else "NO",
            )
            for r in rows
        ],
    )
    return "fault dictionary vs model-based diagnosis\n" + table
