"""Multiple simultaneous faults (paper §6: "we entertain the possibility
of multiple faults where the space of potential candidates grows
exponentially with the number of faults under consideration").

The three-amplifier cascade (figure 2's circuit) has two parallel
branches off node B, so two defects — one per branch — produce two
*disjoint* minimal nogoods once B is measured healthy, and the minimal
hitting sets must pair components across branches.  The driver verifies
the candidate structure and measures how the candidate count grows with
the fault-cardinality bound — the exponential growth the ATMS is there
to manage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import amplifier_cascade
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import DiagnosisResult, Flames, FlamesConfig
from repro.experiments.runner import format_table

__all__ = ["MultiFaultOutcome", "run_multifault", "format_multifault"]

#: The double defect: amp2's gain sags, amp3's gain rises.
DOUBLE_FAULT: Tuple[Fault, Fault] = (
    Fault(FaultKind.PARAM, "amp2", "gain", 1.4),
    Fault(FaultKind.PARAM, "amp3", "gain", 4.0),
)


@dataclass
class MultiFaultOutcome:
    result: DiagnosisResult
    max_size: int

    @property
    def candidate_sets(self) -> List[Tuple[str, ...]]:
        return [d.components for d in self.result.diagnoses]

    @property
    def pair_found(self) -> bool:
        return ("amp2", "amp3") in self.candidate_sets

    @property
    def single_fault_explains(self) -> bool:
        return any(len(c) == 1 for c in self.candidate_sets)


def run_multifault(
    faults: Sequence[Fault] = DOUBLE_FAULT,
    max_sizes: Sequence[int] = (1, 2, 3),
    imprecision: float = 0.02,
) -> List[MultiFaultOutcome]:
    """Diagnose the double defect under different cardinality bounds."""
    golden = amplifier_cascade()
    faulty = golden
    for fault in faults:
        faulty = apply_fault(faulty, fault)
    op = DCSolver(faulty).solve()
    measurements = probe_all(op, ["b", "c", "d"], imprecision=imprecision)
    outcomes = []
    for max_size in max_sizes:
        engine = Flames(golden, FlamesConfig(max_candidate_size=max_size))
        outcomes.append(
            MultiFaultOutcome(engine.diagnose(measurements), max_size)
        )
    return outcomes


def format_multifault(outcomes: Optional[List[MultiFaultOutcome]] = None) -> str:
    outcomes = outcomes if outcomes is not None else run_multifault()
    rows = []
    for o in outcomes:
        rows.append(
            (
                o.max_size,
                len(o.result.diagnoses),
                "yes" if o.pair_found else "no",
                "; ".join(",".join(c) for c in o.candidate_sets[:4]) or "-",
            )
        )
    table = format_table(
        ["max faults", "candidates", "{amp2,amp3} found", "top candidate sets"],
        rows,
    )
    return (
        "multiple faults — double gain defect on the figure-2 cascade\n" + table
    )
