"""Figure 7: the five defect scenarios on the three-stage amplifier.

The paper's table reports, per defect: the initial candidate set, the
refined candidates with degrees, and the per-probe Dc values that drove
the refinement.  Our circuit is a *reconstruction* of the partially
legible figure-6 schematic (see DESIGN.md), so two soft-fault scenarios
are re-parameterised to remain observable in the reconstructed topology
(the published drifts act on quantities our topology is first-order
insensitive to); the qualitative shape of each row — what is detected,
how Dc behaves, which stage the candidates collapse to — is what is
being reproduced:

1. **hard short in stage 1** (short R2)  — total conflicts; propagation
   of V1/V2 confines candidates to the stage-1 set; fault modes pick the
   short.
2. **stage-1 soft drift** (R3 high; paper: R2 = 12.18k) — partial
   conflicts on every probe ("thanks to Dc").
3. **stage-2 soft drift** (T2 Vbe high; paper: beta2 = 194) — V1 fully
   consistent, V2/Vs partially off, candidates shift to stage 2.
4. **open R3** — total conflicts whose *signs* are decisive ("R3 very
   high or R1 very low"; the paper's signs mirror ours because its V1 is
   an inverting collector output while ours follows the emitter).
5. **open circuit in node N1** (T1's base floats) — measuring V1 is
   decisive thanks to the transistor model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import DiagnosisResult, Flames
from repro.core.knowledge import KnowledgeBase, ModeMatch
from repro.experiments.runner import format_table

__all__ = ["Figure7Scenario", "Figure7Row", "FIGURE7_SCENARIOS", "run_figure7", "format_figure7"]

#: Probe points of the figure-7 table (output first, as the paper probes).
PROBES = ("V(vs)", "V(v2)", "V(v1)")


@dataclass(frozen=True)
class Figure7Scenario:
    """One defect row of the table."""

    label: str
    paper_defect: str
    fault: Fault
    expected_stage: Tuple[str, ...]  # components the row should implicate
    note: str = ""


FIGURE7_SCENARIOS: Tuple[Figure7Scenario, ...] = (
    Figure7Scenario(
        "short-R2",
        "Short circuit on R2",
        Fault(FaultKind.SHORT, "R2"),
        ("R1", "R2", "R3", "T1"),
    ),
    Figure7Scenario(
        "soft-stage1",
        "R2 slightly high (12.18k)",
        Fault(FaultKind.PARAM, "R3", value=26.4e3),
        ("R1", "R2", "R3", "T1"),
        note=(
            "re-parameterised to R3 +10%: in the reconstructed topology V1 "
            "follows the R1/R3 divider and is first-order insensitive to R2"
        ),
    ),
    Figure7Scenario(
        "soft-stage2",
        "Beta2 slightly low (194)",
        Fault(FaultKind.PARAM, "T2", "vbe_on", 0.82),
        ("T2", "R4", "R5"),
        note=(
            "re-parameterised to T2 Vbe +17%: emitter degeneration makes the "
            "reconstructed stage 2 first-order insensitive to beta2"
        ),
    ),
    Figure7Scenario(
        "open-R3",
        "Open circuit on R3",
        Fault(FaultKind.OPEN, "R3"),
        ("R1", "R3"),
        note="sign of Dc decisive; signs mirror the paper's inverting stage",
    ),
    Figure7Scenario(
        "open-N1",
        "Open circuit in N1",
        Fault(FaultKind.NODE_OPEN, "T1", pin="b"),
        ("R1", "R2", "R3", "T1"),
        note="measuring V1 is decisive thanks to the transistor model",
    ),
)


@dataclass
class Figure7Row:
    scenario: Figure7Scenario
    result: DiagnosisResult
    refinements: List[ModeMatch] = field(default_factory=list)

    @property
    def dc_cells(self) -> Dict[str, str]:
        cells = {}
        for point in PROBES:
            cons = self.result.consistencies.get(point)
            if cons is None:
                cells[point] = "-"
            else:
                arrow = {1: "^", -1: "v", 0: ""}[cons.direction]
                cells[point] = f"{cons.degree:.2f}{arrow}"
        return cells

    @property
    def initial_suspects(self) -> Tuple[str, ...]:
        return tuple(sorted(self.result.initial_suspects("V(vs)")))

    @property
    def candidates(self) -> Tuple[str, ...]:
        """Single-fault candidates, best first (suspicion order)."""
        return tuple(name for name, _ in self.result.ranked_components())

    @property
    def refined(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for match in self.refinements:
            if match.degree <= 0.0:
                continue
            if match.component not in seen:
                seen.append(match.component)
        return tuple(seen)

    @property
    def detected(self) -> bool:
        return not self.result.is_consistent

    @property
    def stage_localised(self) -> bool:
        """The injected component appears among the candidates."""
        return self.scenario.fault.component in self.candidates


def run_figure7(
    scenarios: Sequence[Figure7Scenario] = FIGURE7_SCENARIOS,
    imprecision: float = 0.02,
    refine_top_k: int = 5,
) -> List[Figure7Row]:
    golden = three_stage_amplifier()
    engine = Flames(golden)
    knowledge = KnowledgeBase(golden)
    rows: List[Figure7Row] = []
    for scenario in scenarios:
        faulty = apply_fault(golden, scenario.fault)
        op = DCSolver(faulty).solve()
        measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=imprecision)
        result = engine.diagnose(measurements)
        refinements = knowledge.refine(
            result.suspicions, measurements, top_k=refine_top_k
        )
        rows.append(Figure7Row(scenario, result, refinements))
    return rows


def format_figure7(rows: Optional[List[Figure7Row]] = None) -> str:
    rows = rows if rows is not None else run_figure7()
    table_rows = []
    for row in rows:
        dc = row.dc_cells
        table_rows.append(
            (
                row.scenario.paper_defect,
                dc["V(vs)"],
                dc["V(v2)"],
                dc["V(v1)"],
                ",".join(row.candidates[:6]) or "-",
                ",".join(row.refined[:3]) or "-",
            )
        )
    table = format_table(
        ["defect (paper row)", "Dc(Vs)", "Dc(V2)", "Dc(V1)", "candidates", "refined (fault modes)"],
        table_rows,
    )
    notes = [
        f"  [{row.scenario.label}] {row.scenario.note}"
        for row in rows
        if row.scenario.note
    ]
    legend = "Dc cells: degree with ^ = measured high, v = measured low"
    return (
        "figure 7 — defect scenarios on the three-stage amplifier\n"
        + table
        + "\n"
        + legend
        + ("\nnotes:\n" + "\n".join(notes) if notes else "")
    )
